//! E22 — gray-failure resilience: fail-slow and wire corruption vs the
//! serve-side defenses.
//!
//! PR 7's E17 covers *fail-stop* faults: the stick vanishes, the host
//! sees an error, the breaker opens. Gray failures are nastier — the
//! stick keeps answering, just slowly (fail-slow) or wrongly (bit-flips,
//! duplicated or dropped completions at the USB boundary), and nothing
//! errors. This experiment injects those faults on one worker of a
//! 4-VPU fleet and compares three arms per scenario:
//!
//! * **baseline** — no faults, defenses off (the PR 7 behavior);
//! * **defenseless** — faults injected, defenses off: the gray worker
//!   silently drags the tail, corrupted results reach the client;
//! * **defended** — faults injected, [`GrayConfig::defended`] on:
//!   verify-on-complete catches corruption, latency-outlier quarantine
//!   benches the fail-slow stick, hedged dispatch races the straggler.
//!
//! The headline number is the fraction of the fail-slow p99 degradation
//! the defenses claw back — the acceptance gate requires at least half —
//! next to what hedging cost in duplicated (wasted) energy, reported in
//! exact integer picojoules. The paper has no such figure; this extends
//! its redundancy pitch (§V) to failures the host is never told about.

use crate::report;
use crate::scale::Scale;
use desim::Duration;
use ncsw::ModelBundle;
use ncsw_faults::{FaultEvent, FaultPlan};
use ncsw_serve::{serve, ArrivalProcess, FleetSpec, GrayConfig, ServeConfig, ServeReport};
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

/// Same redundant fleet and load point as E17 (`fault_bench`), so the
/// fail-stop and gray-failure sweeps are directly comparable.
pub const GRAY_FLEET: &str = "vpu+vpu+vpu+vpu";
pub const GRAY_LOAD_FRACTION: f64 = 0.7;

/// Fail-slow service-time inflation factors the sweep injects.
pub const FAILSLOW_FACTORS: [f64; 2] = [3.0, 6.0];

/// Per-image wire corruption probabilities the sweep injects.
pub const CORRUPT_PROBS: [f64; 2] = [0.02, 0.08];

/// One arm of a scenario (baseline / defenseless / defended).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrayCell {
    pub arm: String,
    /// Fraction of *generated* requests completed within the SLO.
    pub slo_attainment: f64,
    pub report: ServeReport,
}

/// One injected gray-failure scenario with its three arms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrayScenario {
    pub label: String,
    /// The `--faults` spec that reproduces the injection.
    pub spec: String,
    pub baseline: GrayCell,
    pub defenseless: GrayCell,
    pub defended: GrayCell,
    /// Fraction of the p99 degradation (defenseless − baseline) that
    /// the defenses recovered; 1.0 when there was nothing to recover.
    pub p99_recovered_frac: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrayExp {
    pub scale: Scale,
    pub fleet: String,
    pub requests: usize,
    pub offered_rps: f64,
    pub slo_ms: f64,
    pub scenarios: Vec<GrayScenario>,
}

fn requests(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 200,
        Scale::Small => 1_200,
        Scale::Paper => 6_000,
    }
}

/// A sustained fail-slow window on worker 0: 15% into the expected
/// horizon the stick starts serving `factor`× slow, silently, for 60%
/// of the horizon — long enough that quarantine, probation re-entry and
/// hedging all engage.
pub fn failslow_plan(factor: f64, horizon_secs: f64) -> FaultPlan {
    let mut plan = FaultPlan::empty();
    plan.push(
        Some(0),
        FaultEvent::FailSlow {
            at: Duration::from_secs(horizon_secs * 0.15),
            duration: Duration::from_secs(horizon_secs * 0.60),
            factor,
        },
    );
    plan
}

/// Wire corruption on worker 0 for the whole run.
pub fn corrupt_plan(per_image_prob: f64) -> FaultPlan {
    let mut plan = FaultPlan::empty();
    plan.push(Some(0), FaultEvent::ResultCorrupt { per_image_prob });
    plan
}

/// Duplicated and dropped completions on worker 0 — the exactly-once
/// and sequence-gap scenario.
pub fn wire_plan(per_image_prob: f64) -> FaultPlan {
    let mut plan = FaultPlan::empty();
    plan.push(Some(0), FaultEvent::DuplicateCompletion { per_image_prob });
    plan.push(Some(0), FaultEvent::DroppedCompletion { per_image_prob });
    plan
}

pub fn gray_exp(scale: Scale) -> GrayExp {
    gray_exp_with(scale, Duration::from_millis(500.0))
}

pub fn gray_exp_with(scale: Scale, slo: Duration) -> GrayExp {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let n = requests(scale);
    let spec = FleetSpec::parse(GRAY_FLEET).expect("valid fleet spec");
    let probe = spec.build(&model);
    let capacity_rps = spec.capacity_rps(&probe);
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);
    let rate = capacity_rps * GRAY_LOAD_FRACTION;
    let horizon_secs = n as f64 / rate;

    let run_cell = |arm: &str, plan: Option<&FaultPlan>, gray: GrayConfig| -> GrayCell {
        let cfg = ServeConfig { max_batch, slo, gray, ..ServeConfig::default() };
        let mut workers = spec.build(&model);
        if let Some(plan) = plan {
            workers = plan.apply(workers, cfg.seed);
        }
        let load = ArrivalProcess::Poisson { rate_per_sec: rate };
        let outcome = serve(&mut workers, &cfg, &load, n);
        let good = outcome.completed.iter().filter(|r| r.latency() <= slo).count();
        GrayCell {
            arm: arm.to_string(),
            slo_attainment: good as f64 / n.max(1) as f64,
            report: ServeReport::of(&outcome, &cfg),
        }
    };

    // One faultless baseline serves every scenario: its seed and load
    // stream are identical across arms, so p99 deltas are pure fault
    // plus defense effects.
    let baseline = run_cell("baseline", None, GrayConfig::default());

    let mut scenarios = Vec::new();
    let mut scenario = |label: String, spec_str: String, plan: FaultPlan| {
        let defenseless = run_cell("defenseless", Some(&plan), GrayConfig::default());
        let defended = run_cell("defended", Some(&plan), GrayConfig::defended());
        let degraded = defenseless.report.latency.p99_ms - baseline.report.latency.p99_ms;
        let recovered = defenseless.report.latency.p99_ms - defended.report.latency.p99_ms;
        let p99_recovered_frac = if degraded > 1e-9 { recovered / degraded } else { 1.0 };
        scenarios.push(GrayScenario {
            label,
            spec: spec_str,
            baseline: baseline.clone(),
            defenseless,
            defended,
            p99_recovered_frac,
        });
    };

    for &factor in &FAILSLOW_FACTORS {
        let plan = failslow_plan(factor, horizon_secs);
        scenario(format!("fail-slow x{factor}"), plan.to_spec(), plan);
    }
    for &p in &CORRUPT_PROBS {
        let plan = corrupt_plan(p);
        scenario(format!("corrupt p={p}"), plan.to_spec(), plan);
    }
    let plan = wire_plan(0.05);
    scenario("dup+drop p=0.05".to_string(), plan.to_spec(), plan);

    GrayExp {
        scale,
        fleet: GRAY_FLEET.to_string(),
        requests: n,
        offered_rps: rate,
        slo_ms: slo.as_millis(),
        scenarios,
    }
}

impl GrayExp {
    /// Worst (lowest) recovered fraction across the fail-slow
    /// scenarios — the number the acceptance gate checks.
    pub fn worst_failslow_recovery(&self) -> f64 {
        self.scenarios
            .iter()
            .filter(|s| s.label.starts_with("fail-slow"))
            .map(|s| s.p99_recovered_frac)
            .fold(f64::INFINITY, f64::min)
    }

    pub fn print(&self) {
        report::header(&format!(
            "E22 — gray-failure sweep (fleet {}, {} req at {:.1} req/s, p99 SLO {} ms, scale {})",
            self.fleet,
            self.requests,
            self.offered_rps,
            self.slo_ms,
            self.scale.name()
        ));
        println!(
            "{:>16} {:>12} {:>8} {:>8} {:>7} {:>7} {:>6} {:>6} {:>10} {:>12}",
            "scenario",
            "arm",
            "p99 ms",
            "attain%",
            "integ",
            "surf",
            "hedge",
            "quar",
            "waste J",
            "waste pJ"
        );
        for s in &self.scenarios {
            for cell in [&s.baseline, &s.defenseless, &s.defended] {
                let g = &cell.report.gray;
                println!(
                    "{:>16} {:>12} {:>8.1} {:>8.1} {:>7} {:>7} {:>6} {:>6} {:>10.4} {:>12}",
                    s.label,
                    cell.arm,
                    cell.report.latency.p99_ms,
                    cell.slo_attainment * 100.0,
                    g.stats.integrity_fails,
                    g.stats.corrupt_surfaced + g.stats.drops_surfaced,
                    g.stats.hedges,
                    g.stats.quarantines,
                    g.hedge_wasted_j,
                    g.stats.hedge_wasted_pj
                );
            }
            println!("{:>16} p99 degradation recovered: {:.0}%", "", s.p99_recovered_frac * 100.0);
        }
        println!(
            "\nworst fail-slow p99 recovery: {:.0}% (gate: >= 50%)",
            self.worst_failslow_recovery() * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_gray_sweep_defends_against_gray_failures() {
        let e = gray_exp(Scale::Tiny);
        assert_eq!(e.scenarios.len(), FAILSLOW_FACTORS.len() + CORRUPT_PROBS.len() + 1);
        for s in &e.scenarios {
            for cell in [&s.baseline, &s.defenseless, &s.defended] {
                let r = &cell.report;
                assert_eq!(r.completed + r.shed, e.requests, "{}: {}", s.label, cell.arm);
            }
            // The baseline arm must never touch the gray machinery.
            let b = &s.baseline.report.gray.stats;
            assert_eq!((b.hedges, b.quarantines, b.integrity_fails), (0, 0, 0), "{}", s.label);
            // With defenses on, nothing corrupted or dropped may reach
            // the client.
            let d = &s.defended.report.gray.stats;
            assert_eq!(d.corrupt_surfaced, 0, "{}", s.label);
            assert_eq!(d.drops_surfaced, 0, "{}", s.label);
        }
        // Defenseless corruption must actually surface bad results —
        // otherwise the defended arm's zero is vacuous.
        let c = e.scenarios.iter().find(|s| s.label.starts_with("corrupt")).unwrap();
        assert!(
            c.defenseless.report.gray.stats.corrupt_surfaced > 0,
            "defenseless corruption surfaced nothing: {c:?}"
        );
        // Every integrity rejection was retried or shed, never served.
        let d = &c.defended.report.gray.stats;
        assert!(d.integrity_fails > 0, "{d:?}");
        // Fail-slow: quarantine + hedging engage and recover at least
        // half of the p99 degradation (the E22 acceptance gate).
        for s in e.scenarios.iter().filter(|s| s.label.starts_with("fail-slow")) {
            let d = &s.defended.report.gray.stats;
            assert!(d.hedges > 0 || d.quarantines > 0, "{}: defenses idle: {d:?}", s.label);
            assert!(
                s.p99_recovered_frac >= 0.5,
                "{}: recovered only {:.0}% of p99 degradation",
                s.label,
                s.p99_recovered_frac * 100.0
            );
        }
        // Hedge energy is accounted exactly: wasted joules follow the
        // integer picojoule ledger.
        for s in &e.scenarios {
            let g = &s.defended.report.gray;
            assert!(
                (g.hedge_wasted_j - g.stats.hedge_wasted_pj as f64 * 1e-12).abs() < 1e-15,
                "{g:?}"
            );
        }
    }
}
