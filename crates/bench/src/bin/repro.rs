//! Experiment CLI: regenerate any figure of the paper.
//!
//! ```text
//! cargo run -p vpu-bench --release -- <experiment> [--scale tiny|small|paper] [--json]
//!
//! experiments:
//!   fig6a fig6b fig7a fig7b fig8a fig8b   the paper's result figures
//!   anchors                               §IV/§V scalar anchors
//!   timeline                              Fig. 4 execution timeline
//!   ablation-accum ablation-usb ablation-shave
//!   all                                   everything above
//! ```

use std::process::ExitCode;
use vpu_bench::{ablations, anchors, fig6, fig7, fig8, timeline, Scale};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <fig6a|fig6b|fig7a|fig7b|fig8a|fig8b|anchors|timeline|\
         ablation-accum|ablation-usb|ablation-shave|ablation-faults|ablation-prefetch|ablation-blob|mdk-gemm|layers|zoo|stream|power|future-work|all> [--scale tiny|small|paper] [--json] [--csv DIR]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut scale = Scale::Small;
    let mut json = false;
    let mut csv_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let Some(v) = it.next() else { return usage() };
                let Some(s) = Scale::parse(v) else {
                    eprintln!("unknown scale '{v}'");
                    return usage();
                };
                scale = s;
            }
            "--json" => json = true,
            "--csv" => {
                let Some(v) = it.next() else { return usage() };
                csv_dir = Some(v.clone());
            }
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_string());
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                return usage();
            }
        }
    }
    let Some(exp) = experiment else { return usage() };

    macro_rules! emit {
        ($result:expr) => {{
            let r = $result;
            if json {
                println!("{}", serde_json::to_string_pretty(&r).expect("serialize"));
            } else {
                r.print();
            }
        }};
    }

    let write_csv = |name: &str, content: String| {
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, content).expect("write csv");
            eprintln!("wrote {path}");
        }
    };
    let run = |name: &str, json: bool| {
        match name {
            "fig6a" => {
                let r = fig6::fig6a(scale);
                write_csv("fig6a", vpu_bench::csv::fig6a_csv(&r));
                emit!(r);
            }
            "fig6b" => {
                let r = fig6::fig6b(scale);
                write_csv("fig6b", vpu_bench::csv::fig6b_csv(&r));
                emit!(r);
            }
            "fig7a" | "fig7b" | "fig7" => {
                let r = fig7::fig7(scale);
                write_csv("fig7", vpu_bench::csv::fig7_csv(&r));
                if json {
                    println!("{}", serde_json::to_string_pretty(&r).expect("serialize"));
                } else {
                    r.print();
                }
            }
            "fig8a" => {
                let r = fig8::fig8a(scale);
                write_csv("fig8a", vpu_bench::csv::fig8a_csv(&r));
                emit!(r);
            }
            "fig8b" => {
                let r = fig8::fig8b(scale);
                write_csv("fig8b", vpu_bench::csv::fig8b_csv(&r));
                emit!(r);
            }
            "anchors" => emit!(anchors::anchors(scale)),
            "timeline" => emit!(timeline::timeline()),
            "ablation-accum" => emit!(ablations::ablation_accum(scale)),
            "ablation-usb" => emit!(ablations::ablation_usb(scale)),
            "ablation-shave" => emit!(ablations::ablation_shave()),
            "mdk-gemm" => emit!(vpu_bench::mdk_gemm::mdk_gemm()),
            "ablation-faults" => emit!(ablations::ablation_faults(scale)),
            "ablation-prefetch" => emit!(ablations::ablation_prefetch()),
            "ablation-blob" => emit!(ablations::ablation_blob_batch()),
            "layers" => emit!(vpu_bench::layers::layers()),
            "zoo" => emit!(vpu_bench::zoo_bench::zoo_bench()),
            "stream" => emit!(vpu_bench::stream_bench::stream_bench()),
            "power" => emit!(vpu_bench::power_bench::power_bench(scale)),
            "future-work" => emit!(vpu_bench::future_work::future_work(scale)),
            other => {
                eprintln!("unknown experiment '{other}'");
                std::process::exit(2);
            }
        }
        true
    };

    if exp == "all" {
        for name in [
            "fig6a", "fig6b", "fig7", "fig8a", "fig8b", "anchors", "timeline",
            "ablation-accum", "ablation-usb", "ablation-shave", "ablation-faults",
            "ablation-prefetch", "ablation-blob",
            "mdk-gemm", "layers", "zoo", "stream", "power", "future-work",
        ] {
            run(name, json);
        }
    } else {
        run(&exp, json);
    }
    ExitCode::SUCCESS
}
