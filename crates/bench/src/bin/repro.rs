//! Experiment CLI: regenerate any figure of the paper.
//!
//! ```text
//! cargo run -p vpu-bench --release -- <experiment> [--scale tiny|small|paper] [--json [PATH]] [--csv DIR]
//!
//! experiments:
//!   fig6a fig6b fig7a fig7b fig8a fig8b   the paper's result figures
//!   anchors                               §IV/§V scalar anchors
//!   timeline                              Fig. 4 execution timeline
//!   ablation-accum ablation-usb ablation-shave
//!   serve                                 E15 online-serving load sweep
//!   energy                                E19 online img/W vs offline Eq. 1
//!   autoscale                             E20 closed-loop fleet scaling vs static
//!   bench-sim                             E21 sim-throughput matrix (BENCH_sim.json)
//!   gray                                  E22 gray-failure resilience sweep
//!   chaos                                 seeded chaos campaigns (exit 1 on violation)
//!   bench-diff BASE CAND                  gated events/sec comparison of two BENCH_sim.json
//!   validate-trace PATH                   check an exported Chrome trace
//!   explain TRACE ID                      one request's causal timeline from a trace
//!   sample-sweep                          E23 tail-sampling cost/fidelity curve
//!   whatif                                E24 causal what-if profiling (exit 1 on gate violation)
//!   all                                   everything above
//! ```
//!
//! `--json` alone prints the result as JSON to stdout; `--json PATH`
//! writes the JSON to PATH (and keeps the human-readable report on
//! stdout) so perf trajectories can be tracked as `BENCH_*.json` files.
//!
//! With `--trace PATH` and/or `--metrics-csv PATH`, `serve` runs one
//! fully observed run (instead of the sweep) and writes the Chrome
//! trace-event JSON / sampled time-series CSV; `--sample-ms` sets the
//! sampling interval. Load the trace at <https://ui.perfetto.dev>.

use serde::Serialize;
use std::process::ExitCode;
use vpu_bench::{ablations, anchors, fig6, fig7, fig8, serve_bench, timeline, Scale};

/// The machine-readable shape of `repro analyze --json`.
#[derive(Serialize)]
struct AnalyzeJson {
    table: ncsw_analyze::AttributionTable,
    e2e: ncsw_analyze::E2e,
    shed: ncsw_analyze::ShedCounts,
    outages: usize,
    p99_during_outage_ms: f64,
    slo_alert_windows: usize,
    /// Energy attribution; absent for traces without power lanes.
    energy: Option<EnergyJson>,
}

/// Energy block of `repro analyze --json`. The picojoule fields are
/// exact integers so CI can compare them against the server's own
/// counters with string equality.
#[derive(Serialize)]
struct EnergyJson {
    fleet_pj: u64,
    active_pj: u64,
    wasted_pj: u64,
    idle_pj: u64,
    attributed_pj: u64,
    fleet_j: f64,
    /// Attributed joules per latency segment, in [`Segment::ALL`] order.
    segment_j: Vec<(String, f64)>,
}

impl EnergyJson {
    fn of(e: &ncsw_analyze::EnergyAnalysis) -> EnergyJson {
        EnergyJson {
            fleet_pj: e.fleet_pj,
            active_pj: e.active_pj,
            wasted_pj: e.wasted_pj,
            idle_pj: e.idle_pj,
            attributed_pj: e.attributed_pj,
            fleet_j: ncsw_obs::joules(e.fleet_pj),
            segment_j: ncsw_analyze::Segment::ALL
                .iter()
                .zip(e.segment_pj())
                .map(|(s, pj)| (s.name().to_string(), ncsw_obs::joules(pj)))
                .collect(),
        }
    }
}

/// Comma-separated positive floats (`0.9,0.75,0.5`).
fn parse_f64_list(s: &str) -> Option<Vec<f64>> {
    let vals: Vec<f64> = s.split(',').map(|v| v.parse::<f64>()).collect::<Result<_, _>>().ok()?;
    (!vals.is_empty() && vals.iter().all(|&v| v > 0.0)).then_some(vals)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <fig6a|fig6b|fig7a|fig7b|fig8a|fig8b|anchors|timeline|\
         ablation-accum|ablation-usb|ablation-shave|ablation-faults|ablation-prefetch|ablation-blob|mdk-gemm|layers|zoo|stream|power|energy|future-work|serve|failover|autoscale|bench-sim|gray|chaos|abdiff|sample-sweep|whatif|all> \
         [--scale tiny|small|paper] [--json [PATH]] [--csv DIR] [--slo-ms MS] [--policy round-robin|least-outstanding|cost-aware] \
         [--trace PATH] [--metrics-csv PATH] [--sample-ms MS] [--sample all|1-in-N[+topK]] [--incidents DIR] [--faults SPEC] [--gray] [--ctrl reactive|predictive|oracle] [--prof]\n\
         \x20      repro chaos [--campaigns N] [--seed S]\n\
         \x20      repro validate-trace PATH\n\
         \x20      repro explain TRACE REQUEST_ID [--json [PATH]]\n\
         \x20      repro analyze TRACE [--flame PATH] [--flame-energy PATH] [--json [PATH]] [--prof]\n\
         \x20      repro diff BASELINE_TRACE CANDIDATE_TRACE [--abs-ms MS] [--rel-pct PCT] [--json [PATH]]\n\
         \x20      repro bench-diff BASE_SIM_JSON CAND_SIM_JSON [--tol-pct PCT] [--json [PATH]]\n\
         \x20      --faults SPEC: comma-separated faults, e.g. 'unplug@2s:reconnect@4s', \
         'w0:throttle@1s:for@2s:slow@3', 'usb@0s:for@5s:factor@2', 'execerr@0.05', \
         'failslow@1s:for@4s:slow@6', 'corrupt@0.02', 'dup@0.02', 'drop@0.02'\n\
         \x20      --gray turns every gray-failure defense on for a traced serve run \
         (verify-on-complete, fail-slow quarantine, hedged dispatch)\n\
         \x20      gray sweeps fail-slow/corruption intensity vs defenses (E22); chaos runs \
         --campaigns randomized fault cocktails from --seed and exits 1 on any invariant \
         violation, printing the failing campaign's seed and spec\n\
         \x20      abdiff pairs --baseline-policy (default round-robin) against --policy; \
         diff exits 1 when a gated metric regressed\n\
         \x20      autoscale sweeps static vs all scaling policies; with --trace/--metrics-csv \
         it runs one observed run under --ctrl (default reactive)\n\
         \x20      bench-sim measures sim throughput (events/sec, req/sec, recorder overhead); \
         bench-diff exits 1 when events/sec regressed beyond --tol-pct (default 50)\n\
         \x20      --prof profiles the simulator's own hot loops (wall clock) and prints the \
         scope tree; the simulated outcome is bit-identical either way\n\
         \x20      --sample turns on tail-based trace sampling for a traced serve/autoscale \
         run: anomalous requests (shed, SLO-violating, faulted, hedged, quarantined) always \
         keep their full chains, plus the K slowest and a uniform 1-in-N; 'all' keeps \
         everything (byte-identical to the unsampled trace)\n\
         \x20      --incidents DIR writes each flight-recorder incident bundle (circuit-open, \
         integrity-fail, burn-rate) as DIR/incident_<n>.json with its trace window and a \
         one-line deterministic replay command\n\
         \x20      whatif sweeps --components (comma list of usb-write,usb-read,exec,\
         batch-wait,dispatch,host) x --factors (e.g. 0.9,0.75,0.5) x --loads (capacity \
         fractions), validating each analytic counterfactual against an actually-rescaled \
         re-simulation; --tol-pct sets the agreement tolerance (default 10), --trace PATH \
         writes the baseline Chrome trace plus PATH.identity.json from the f=1.0 arm \
         (byte-identical by construction), exit 1 when the E24 gate is violated"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut scale = Scale::Small;
    let mut json = false;
    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut slo_ms = 500.0f64;
    let mut policy = ncsw_serve::DispatchPolicy::CostAware;
    let mut trace_path: Option<String> = None;
    let mut metrics_csv: Option<String> = None;
    let mut sample_ms = 10.0f64;
    let mut faults: Option<ncsw_faults::FaultPlan> = None;
    let mut sample: Option<ncsw_obs::SamplePolicy> = None;
    let mut incidents_dir: Option<String> = None;
    let mut ctrl_policy = String::from("reactive");
    let mut flame_path: Option<String> = None;
    let mut flame_energy_path: Option<String> = None;
    let mut abs_ms = 0.5f64;
    let mut rel_pct = 5.0f64;
    // `None` = flag absent: bench-diff defaults to 50, whatif to its
    // own gate tolerance.
    let mut tol_pct: Option<f64> = None;
    let mut prof_on = false;
    let mut gray_on = false;
    let mut campaigns = 25usize;
    let mut seed = vpu_num::rng::DEFAULT_SEED;
    let mut baseline_policy = ncsw_serve::DispatchPolicy::RoundRobin;
    let mut whatif_components: Option<Vec<ncsw::ScaleComponent>> = None;
    let mut whatif_factors: Option<Vec<f64>> = None;
    let mut whatif_loads: Option<Vec<f64>> = None;
    let mut operands: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let Some(v) = it.next() else { return usage() };
                let Some(s) = Scale::parse(v) else {
                    eprintln!("unknown scale '{v}'");
                    return usage();
                };
                scale = s;
            }
            "--json" => {
                json = true;
                // Optional operand: `--json results.json` writes to a file.
                if let Some(v) = it.peek() {
                    if !v.starts_with('-') && experiment.is_some() {
                        json_path = Some(it.next().unwrap().clone());
                    }
                }
            }
            "--csv" => {
                let Some(v) = it.next() else { return usage() };
                csv_dir = Some(v.clone());
            }
            "--slo-ms" => {
                let Some(v) = it.next() else { return usage() };
                let Ok(ms) = v.parse::<f64>() else {
                    eprintln!("bad --slo-ms '{v}'");
                    return usage();
                };
                slo_ms = ms;
            }
            "--policy" => {
                let Some(v) = it.next() else { return usage() };
                let Some(p) = ncsw_serve::DispatchPolicy::parse(v) else {
                    eprintln!("unknown policy '{v}'");
                    return usage();
                };
                policy = p;
            }
            "--trace" => {
                let Some(v) = it.next() else { return usage() };
                trace_path = Some(v.clone());
            }
            "--metrics-csv" => {
                let Some(v) = it.next() else { return usage() };
                metrics_csv = Some(v.clone());
            }
            "--sample-ms" => {
                let Some(v) = it.next() else { return usage() };
                let Ok(ms) = v.parse::<f64>() else {
                    eprintln!("bad --sample-ms '{v}'");
                    return usage();
                };
                sample_ms = ms;
            }
            "--flame" => {
                let Some(v) = it.next() else { return usage() };
                flame_path = Some(v.clone());
            }
            "--flame-energy" => {
                let Some(v) = it.next() else { return usage() };
                flame_energy_path = Some(v.clone());
            }
            "--abs-ms" => {
                let Some(v) = it.next() else { return usage() };
                let Ok(ms) = v.parse::<f64>() else {
                    eprintln!("bad --abs-ms '{v}'");
                    return usage();
                };
                abs_ms = ms;
            }
            "--rel-pct" => {
                let Some(v) = it.next() else { return usage() };
                let Ok(p) = v.parse::<f64>() else {
                    eprintln!("bad --rel-pct '{v}'");
                    return usage();
                };
                rel_pct = p;
            }
            "--tol-pct" => {
                let Some(v) = it.next() else { return usage() };
                let Ok(p) = v.parse::<f64>() else {
                    eprintln!("bad --tol-pct '{v}'");
                    return usage();
                };
                tol_pct = Some(p);
            }
            "--components" => {
                let Some(v) = it.next() else { return usage() };
                let mut parsed = Vec::new();
                for name in v.split(',') {
                    let Some(c) = ncsw::ScaleComponent::parse(name) else {
                        eprintln!("unknown component '{name}'");
                        return usage();
                    };
                    parsed.push(c);
                }
                whatif_components = Some(parsed);
            }
            "--factors" => {
                let Some(v) = it.next() else { return usage() };
                match parse_f64_list(v) {
                    Some(l) => whatif_factors = Some(l),
                    None => {
                        eprintln!("bad --factors '{v}' (comma-separated positive numbers)");
                        return usage();
                    }
                }
            }
            "--loads" => {
                let Some(v) = it.next() else { return usage() };
                match parse_f64_list(v) {
                    Some(l) => whatif_loads = Some(l),
                    None => {
                        eprintln!("bad --loads '{v}' (comma-separated positive numbers)");
                        return usage();
                    }
                }
            }
            "--prof" => prof_on = true,
            "--gray" => gray_on = true,
            "--campaigns" => {
                let Some(v) = it.next() else { return usage() };
                let Ok(n) = v.parse::<usize>() else {
                    eprintln!("bad --campaigns '{v}'");
                    return usage();
                };
                campaigns = n;
            }
            "--seed" => {
                let Some(v) = it.next() else { return usage() };
                let Ok(s) = v.parse::<u64>() else {
                    eprintln!("bad --seed '{v}'");
                    return usage();
                };
                seed = s;
            }
            "--baseline-policy" => {
                let Some(v) = it.next() else { return usage() };
                let Some(p) = ncsw_serve::DispatchPolicy::parse(v) else {
                    eprintln!("unknown policy '{v}'");
                    return usage();
                };
                baseline_policy = p;
            }
            "--ctrl" => {
                let Some(v) = it.next() else { return usage() };
                if !ncsw_ctrl::POLICY_NAMES.contains(&v.as_str()) {
                    eprintln!("unknown scaling policy '{v}'");
                    return usage();
                }
                ctrl_policy = v.clone();
            }
            "--faults" => {
                let Some(v) = it.next() else { return usage() };
                match ncsw_faults::FaultPlan::parse(v) {
                    Ok(plan) => faults = Some(plan),
                    Err(e) => {
                        eprintln!("bad --faults '{v}': {e}");
                        return usage();
                    }
                }
            }
            "--sample" => {
                let Some(v) = it.next() else { return usage() };
                match ncsw_obs::SamplePolicy::parse(v) {
                    Ok(p) => sample = Some(p),
                    Err(e) => {
                        eprintln!("bad --sample: {e}");
                        return usage();
                    }
                }
            }
            "--incidents" => {
                let Some(v) = it.next() else { return usage() };
                incidents_dir = Some(v.clone());
            }
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_string());
            }
            other
                if !other.starts_with('-')
                    && match experiment.as_deref() {
                        Some("validate-trace") | Some("analyze") => operands.is_empty(),
                        Some("diff") | Some("bench-diff") | Some("explain") => operands.len() < 2,
                        _ => false,
                    } =>
            {
                operands.push(other.to_string());
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                return usage();
            }
        }
    }
    let Some(exp) = experiment else { return usage() };

    macro_rules! emit {
        ($result:expr) => {{
            let r = $result;
            if let Some(path) = &json_path {
                vpu_bench::report::write_json(path, &r);
                r.print();
            } else if json {
                println!("{}", serde_json::to_string_pretty(&r).expect("serialize"));
            } else {
                r.print();
            }
        }};
    }

    // `--prof` wraps a run in the wall-clock profiler and prints the
    // scope tree afterwards; the simulated outcome is bit-identical.
    macro_rules! profiled {
        ($run:expr) => {{
            if prof_on {
                ncsw_obs::prof::start();
                let r = $run;
                let report = ncsw_obs::prof::stop();
                eprint!("{}", report.render());
                r
            } else {
                $run
            }
        }};
    }

    fn read_file(path: &str) -> String {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let write_csv = |name: &str, content: String| {
        if let Some(dir) = &csv_dir {
            vpu_bench::report::write_csv_in(dir, name, &content);
        }
    };
    let write_incidents = |bundles: &[vpu_bench::serve_bench::IncidentBundle]| {
        if let Some(dir) = &incidents_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {dir}: {e}");
                std::process::exit(2);
            }
            if bundles.is_empty() {
                eprintln!("{dir}: no incident fired during the run; nothing written");
            }
            for b in bundles {
                vpu_bench::report::write_json(&format!("{dir}/incident_{}.json", b.n), b);
            }
        }
    };
    let run = |name: &str, json: bool| {
        match name {
            "fig6a" => {
                let r = fig6::fig6a(scale);
                write_csv("fig6a", vpu_bench::csv::fig6a_csv(&r));
                emit!(r);
            }
            "fig6b" => {
                let r = fig6::fig6b(scale);
                write_csv("fig6b", vpu_bench::csv::fig6b_csv(&r));
                emit!(r);
            }
            "fig7a" | "fig7b" | "fig7" => {
                let r = fig7::fig7(scale);
                write_csv("fig7", vpu_bench::csv::fig7_csv(&r));
                if json {
                    println!("{}", serde_json::to_string_pretty(&r).expect("serialize"));
                } else {
                    r.print();
                }
            }
            "fig8a" => {
                let r = fig8::fig8a(scale);
                write_csv("fig8a", vpu_bench::csv::fig8a_csv(&r));
                emit!(r);
            }
            "fig8b" => {
                let r = fig8::fig8b(scale);
                write_csv("fig8b", vpu_bench::csv::fig8b_csv(&r));
                emit!(r);
            }
            "anchors" => emit!(anchors::anchors(scale)),
            "timeline" => emit!(timeline::timeline()),
            "ablation-accum" => emit!(ablations::ablation_accum(scale)),
            "ablation-usb" => emit!(ablations::ablation_usb(scale)),
            "ablation-shave" => emit!(ablations::ablation_shave()),
            "mdk-gemm" => emit!(vpu_bench::mdk_gemm::mdk_gemm()),
            "ablation-faults" => emit!(ablations::ablation_faults(scale)),
            "ablation-prefetch" => emit!(ablations::ablation_prefetch()),
            "ablation-blob" => emit!(ablations::ablation_blob_batch()),
            "layers" => emit!(vpu_bench::layers::layers()),
            "zoo" => emit!(vpu_bench::zoo_bench::zoo_bench()),
            "stream" => emit!(vpu_bench::stream_bench::stream_bench()),
            "power" => emit!(vpu_bench::power_bench::power_bench(scale)),
            "energy" => {
                emit!(vpu_bench::energy_bench::energy_exp_with(
                    scale,
                    desim::Duration::from_millis(slo_ms),
                ));
            }
            "future-work" => emit!(vpu_bench::future_work::future_work(scale)),
            "serve"
                if trace_path.is_some()
                    || metrics_csv.is_some()
                    || faults.is_some()
                    || sample.is_some()
                    || incidents_dir.is_some()
                    || gray_on
                    || prof_on =>
            {
                if let Some(plan) = &faults {
                    let fleet = ncsw_serve::FleetSpec::parse(serve_bench::TRACED_FLEET)
                        .expect("valid fleet spec");
                    if let Err(e) = plan.validate_pins(fleet.0.len()) {
                        eprintln!("bad --faults for fleet {}: {e}", serve_bench::TRACED_FLEET);
                        std::process::exit(2);
                    }
                }
                let gray = if gray_on {
                    ncsw_serve::GrayConfig::defended()
                } else {
                    ncsw_serve::GrayConfig::default()
                };
                let r = profiled!(serve_bench::traced_serve_sampled(
                    scale,
                    desim::Duration::from_millis(slo_ms),
                    policy,
                    desim::Duration::from_millis(sample_ms),
                    faults.as_ref(),
                    gray,
                    sample.clone(),
                ));
                vpu_bench::report::write_artifact_opt(&trace_path, &r.chrome_json);
                vpu_bench::report::write_artifact_opt(&metrics_csv, &r.series_csv);
                write_incidents(&r.incidents);
                emit!(r);
            }
            "autoscale"
                if trace_path.is_some()
                    || metrics_csv.is_some()
                    || sample.is_some()
                    || incidents_dir.is_some()
                    || prof_on =>
            {
                let r = profiled!(vpu_bench::autoscale_bench::traced_autoscale_sampled(
                    scale,
                    &ctrl_policy,
                    desim::Duration::from_millis(sample_ms),
                    sample.clone(),
                ));
                vpu_bench::report::write_artifact_opt(&trace_path, &r.chrome_json);
                vpu_bench::report::write_artifact_opt(&metrics_csv, &r.series_csv);
                write_incidents(&r.incidents);
                emit!(r);
            }
            "bench-sim" => emit!(vpu_bench::sim_bench::sim_bench(scale)),
            "gray" => {
                emit!(vpu_bench::gray_bench::gray_exp_with(
                    scale,
                    desim::Duration::from_millis(slo_ms),
                ));
            }
            "chaos" => {
                let r = vpu_bench::chaos_bench::chaos(campaigns, seed);
                emit!(r.clone());
                if !r.passed() {
                    std::process::exit(1);
                }
            }
            "bench-diff" => {
                let [a_path, b_path] = operands.as_slice() else {
                    eprintln!("bench-diff needs BASE and CANDIDATE BENCH_sim.json paths");
                    std::process::exit(2);
                };
                let load = |path: &String| -> vpu_bench::sim_bench::SimBench {
                    match serde_json::from_str(&read_file(path)) {
                        Ok(b) => b,
                        Err(e) => {
                            eprintln!("{path}: not a BENCH_sim.json: {e}");
                            std::process::exit(2);
                        }
                    }
                };
                let d = vpu_bench::sim_bench::sim_bench_diff(
                    &load(a_path),
                    &load(b_path),
                    tol_pct.unwrap_or(50.0),
                );
                if let Some(p) = &json_path {
                    vpu_bench::report::write_json(p, &d);
                    print!("{}", d.render());
                } else if json {
                    println!("{}", serde_json::to_string_pretty(&d).expect("serialize"));
                } else {
                    print!("{}", d.render());
                }
                if d.regression {
                    std::process::exit(1);
                }
            }
            "autoscale" => emit!(vpu_bench::autoscale_bench::autoscale_exp(scale)),
            "failover" => {
                emit!(vpu_bench::fault_bench::failover_exp_with(
                    scale,
                    desim::Duration::from_millis(slo_ms),
                ));
            }
            "serve" => {
                let r = serve_bench::serve_exp_with(
                    scale,
                    desim::Duration::from_millis(slo_ms),
                    policy,
                );
                write_csv("serve", vpu_bench::csv::serve_csv(&r));
                emit!(r);
            }
            "validate-trace" => {
                let Some(path) = operands.first() else {
                    eprintln!("validate-trace needs a PATH");
                    std::process::exit(2);
                };
                let json = read_file(path);
                // Validation cost is part of the observability ledger:
                // time the parse+check pass and report its throughput.
                let t = std::time::Instant::now();
                match vpu_bench::trace_check::validate(&json) {
                    Ok(check) => {
                        let wall_s = t.elapsed().as_secs_f64();
                        let mb = json.len() as f64 / 1e6;
                        println!(
                            "{path}: ok — {} events, {} tracks, {} requests ({} fully chained), \
                             {} failovers, {} outage windows, {} sheds, {} power samples, \
                             {} drains / {} scale-downs / {} scale-ups, \
                             {} hedges ({} won), {} quarantines, {} integrity fails",
                            check.events,
                            check.tracks,
                            check.requests,
                            check.chained,
                            check.failovers,
                            check.outage_windows,
                            check.sheds,
                            check.power_samples,
                            check.drains,
                            check.scale_downs,
                            check.scale_ups,
                            check.hedges,
                            check.hedge_wins,
                            check.quarantines,
                            check.integrity_fails
                        );
                        if let Some(s) = &check.sampling {
                            println!("{path}: {}", s.render());
                        }
                        println!(
                            "{path}: parsed {:.2} MB in {:.1} ms ({:.1} MB/s)",
                            mb,
                            wall_s * 1e3,
                            if wall_s > 0.0 { mb / wall_s } else { 0.0 }
                        );
                    }
                    Err(e) => {
                        eprintln!("{path}: INVALID trace: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "explain" => {
                let [path, id] = operands.as_slice() else {
                    eprintln!("explain needs a TRACE path and a REQUEST_ID");
                    std::process::exit(2);
                };
                let Ok(id) = id.parse::<u64>() else {
                    eprintln!("bad request id '{id}'");
                    std::process::exit(2);
                };
                match ncsw_analyze::explain_chrome_json(&read_file(path), id) {
                    Ok(e) => {
                        if let Some(p) = &json_path {
                            vpu_bench::report::write_json(p, &e);
                            print!("{}", e.render());
                        } else if json {
                            println!("{}", serde_json::to_string_pretty(&e).expect("serialize"));
                        } else {
                            print!("{}", e.render());
                        }
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "sample-sweep" => emit!(vpu_bench::sample_bench::sample_exp(scale)),
            "whatif" => {
                use vpu_bench::whatif_bench::{self, WhatIfConfig};
                let defaults = WhatIfConfig::default();
                let grid = WhatIfConfig {
                    components: whatif_components.clone().unwrap_or(defaults.components),
                    factors: whatif_factors.clone().unwrap_or(defaults.factors),
                    loads: whatif_loads.clone().unwrap_or(defaults.loads),
                    tolerance_pct: tol_pct.unwrap_or(whatif_bench::TOLERANCE_PCT),
                };
                let out = whatif_bench::whatif_run(scale, &grid);
                // --trace writes the baseline trace plus the f=1.0
                // arm's as PATH.identity.json, so CI can `cmp` the
                // passivity claim byte-for-byte.
                vpu_bench::report::write_artifact_opt(&trace_path, &out.baseline_trace);
                if let Some(p) = &trace_path {
                    vpu_bench::report::write_artifact(
                        &format!("{p}.identity.json"),
                        &out.identity_trace,
                    );
                }
                write_csv("whatif", vpu_bench::whatif_bench::whatif_csv(&out.exp));
                let ok = out.exp.whatif_ok;
                emit!(out.exp);
                if !ok {
                    std::process::exit(1);
                }
            }
            "analyze" => {
                let Some(path) = operands.first() else {
                    eprintln!("analyze needs a TRACE path");
                    std::process::exit(2);
                };
                let analysis =
                    profiled!(match ncsw_analyze::Analysis::from_chrome(&read_file(path)) {
                        Ok(a) => a,
                        Err(e) => {
                            eprintln!("{path}: cannot analyze: {e}");
                            std::process::exit(1);
                        }
                    });
                if let Some(fp) = &flame_path {
                    vpu_bench::report::write_artifact(fp, &ncsw_analyze::folded(&analysis));
                }
                if let Some(fp) = &flame_energy_path {
                    vpu_bench::report::write_artifact(fp, &ncsw_analyze::folded_energy(&analysis));
                }
                let out = AnalyzeJson {
                    table: analysis.table.clone(),
                    e2e: analysis.e2e,
                    shed: analysis.shed,
                    outages: analysis.forest.outages.len(),
                    p99_during_outage_ms: analysis.p99_during_outages_ms(),
                    slo_alert_windows: analysis.forest.alerts.len(),
                    energy: analysis.energy.as_ref().map(EnergyJson::of),
                };
                if let Some(p) = &json_path {
                    vpu_bench::report::write_json(p, &out);
                    print!("{}", analysis.render());
                } else if json {
                    println!("{}", serde_json::to_string_pretty(&out).expect("serialize"));
                } else {
                    print!("{}", analysis.render());
                }
            }
            "diff" => {
                let [a_path, b_path] = operands.as_slice() else {
                    eprintln!("diff needs BASELINE_TRACE and CANDIDATE_TRACE paths");
                    std::process::exit(2);
                };
                let load =
                    |path: &String| match ncsw_analyze::Analysis::from_chrome(&read_file(path)) {
                        Ok(a) => a,
                        Err(e) => {
                            eprintln!("{path}: cannot analyze: {e}");
                            std::process::exit(1);
                        }
                    };
                let a = load(a_path);
                let b = load(b_path);
                let cfg = ncsw_analyze::DiffConfig { abs_floor: abs_ms, rel_pct };
                let d = ncsw_analyze::diff(&a, &b, &cfg);
                if let Some(p) = &json_path {
                    vpu_bench::report::write_json(p, &d);
                    print!("{}", d.render());
                } else if json {
                    println!("{}", serde_json::to_string_pretty(&d).expect("serialize"));
                } else {
                    print!("{}", d.render());
                }
                if d.regression {
                    std::process::exit(1);
                }
            }
            "abdiff" => {
                let r = vpu_bench::ab_bench::ab_exp_with(
                    scale,
                    desim::Duration::from_millis(slo_ms),
                    baseline_policy,
                    policy,
                );
                emit!(r);
            }
            other => {
                eprintln!("unknown experiment '{other}'");
                std::process::exit(2);
            }
        }
        true
    };

    if exp == "all" {
        for name in [
            "fig6a",
            "fig6b",
            "fig7",
            "fig8a",
            "fig8b",
            "anchors",
            "timeline",
            "ablation-accum",
            "ablation-usb",
            "ablation-shave",
            "ablation-faults",
            "ablation-prefetch",
            "ablation-blob",
            "mdk-gemm",
            "layers",
            "zoo",
            "stream",
            "power",
            "energy",
            "future-work",
            "serve",
            "failover",
            "autoscale",
            "bench-sim",
            "gray",
            "sample-sweep",
            "whatif",
        ] {
            run(name, json);
        }
    } else {
        run(&exp, json);
    }
    ExitCode::SUCCESS
}
