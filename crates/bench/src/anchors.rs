//! E7 — the scalar anchors quoted in the paper's text (§IV–§V),
//! measured from the simulation and compared side by side.

use crate::report;
use crate::scale::Scale;
use ncsw::runner::latency_curve;
use ncsw::{IntelCpu, IntelVpu, ModelBundle, NvGpu};
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

/// One anchor comparison row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Anchor {
    pub what: String,
    pub paper: f64,
    pub measured: f64,
}

impl Anchor {
    pub fn rel_dev(&self) -> f64 {
        if self.paper == 0.0 {
            0.0
        } else {
            (self.measured - self.paper) / self.paper
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Anchors {
    pub rows: Vec<Anchor>,
}

/// Measure every scalar the paper quotes in its running text.
pub fn anchors(scale: Scale) -> Anchors {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let images = scale.sweep_images();
    let b18 = [1usize, 8];
    let cpu = latency_curve(|_| Box::new(IntelCpu::new(model.clone())), &b18, images);
    let gpu = latency_curve(|_| Box::new(NvGpu::new(model.clone())), &b18, images);
    let vpu = latency_curve(|b| Box::new(IntelVpu::new(model.clone(), b)), &b18, images);

    let mut rows = Vec::new();
    let mut push = |what: &str, paper: f64, measured: f64| {
        rows.push(Anchor { what: what.into(), paper, measured });
    };
    push("CPU batch-1 latency (ms)", 26.0, cpu[0].1);
    push("GPU batch-1 latency (ms)", 25.9, gpu[0].1);
    push("VPU single-stick latency (ms)", 100.7, vpu[0].1);
    push("CPU batch-8 per-inference (ms)", 22.7, cpu[1].1);
    push("GPU batch-8 per-inference (ms)", 13.5, gpu[1].1);
    push("8xVPU per-inference (ms)", 12.9, vpu[1].1);
    push("CPU batch-8 throughput (img/s)", 44.0, 1000.0 / cpu[1].1);
    push("GPU batch-8 throughput (img/s)", 74.2, 1000.0 / gpu[1].1);
    push("8xVPU throughput (img/s)", 77.2, 1000.0 / vpu[1].1);
    push("single VPU vs CPU slowdown (x)", 4.0, vpu[0].1 / cpu[0].1);
    push("VPU img/W at batch 1 (Eq. 1)", 3.97, 1000.0 / vpu[0].1 / 2.5);
    push("CPU img/W at batch 8", 0.55, 1000.0 / cpu[1].1 / 80.0);
    push("GPU img/W at batch 8", 0.93, 1000.0 / gpu[1].1 / 80.0);
    push("CPU-to-8-chip TDP ratio (x)", 11.1, 80.0 / (8.0 * 0.9));
    Anchors { rows }
}

impl Anchors {
    pub fn print(&self) {
        report::header("E7 — paper text anchors, measured vs reported");
        println!("{:<38} {:>9} {:>9} {:>7}", "anchor", "paper", "measured", "dev");
        for a in &self.rows {
            println!(
                "{:<38} {:>9.2} {:>9.2} {:>6.1}%",
                a.what,
                a.paper,
                a.measured,
                a.rel_dev() * 100.0
            );
        }
    }

    pub fn worst_deviation(&self) -> f64 {
        self.rows.iter().map(|a| a.rel_dev().abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_anchors_within_tolerance() {
        let a = anchors(Scale::Tiny);
        assert_eq!(a.rows.len(), 14);
        for row in &a.rows {
            assert!(
                row.rel_dev().abs() < 0.08,
                "{}: paper {} vs measured {} ({:+.1}%)",
                row.what,
                row.paper,
                row.measured,
                row.rel_dev() * 100.0
            );
        }
    }
}
