//! Fig. 7a — top-1 inference error per subset (CPU FP32 vs VPU FP16),
//! and Fig. 7b — absolute confidence difference after filtering the
//! top-1 miss-predictions.
//!
//! These are the *real-numerics* experiments: the dataset is calibrated
//! to the paper's ~32 % operating point, then every validation image is
//! classified twice — once in IEEE f32 (the Caffe-MKL path) and once in
//! software binary16 with per-operation rounding (the NCS path). The
//! FP32/FP16 deltas are genuine rounding effects, not injected noise.

use crate::report;
use crate::scale::Scale;
use ilsvrc_sim::calibrate::{calibrated_set, Calibration};
use ilsvrc_sim::DatasetConfig;
use ncsw::metrics::{confidence_diff, ConfidenceDiffReport};
use ncsw::runner::{predictions_fp16, predictions_fp32};
use ncsw::{AccuracyReport, ImageFolder, ModelBundle};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vpu_num::stats;

/// Paper values: top-1 error 32.01 % (CPU) vs 31.92 % (VPU); mean
/// absolute confidence difference 0.44 %.
pub const PAPER_CPU_ERROR: f64 = 0.3201;
pub const PAPER_VPU_ERROR: f64 = 0.3192;
pub const PAPER_CONF_DIFF: f64 = 0.0044;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    pub scale: Scale,
    pub calibration: Calibration,
    /// Per-subset FP32 accuracy (Fig. 7a, CPU bars).
    pub cpu_fp32: Vec<AccuracyReport>,
    /// Per-subset FP16 accuracy (Fig. 7a, VPU bars).
    pub vpu_fp16: Vec<AccuracyReport>,
    /// Per-subset confidence agreement (Fig. 7b).
    pub conf_diff: Vec<ConfidenceDiffReport>,
}

/// Run both Fig. 7 panels.
pub fn fig7(scale: Scale) -> Fig7 {
    let variant = scale.accuracy_variant();
    let spec = Arc::new(variant.build_with_classes(scale.accuracy_classes()));
    let per_subset = scale.accuracy_images_per_subset();
    let mut cfg = DatasetConfig::ilsvrc_like(
        scale.accuracy_classes(),
        per_subset * 5,
        variant.input_shape(),
        vpu_num::rng::DEFAULT_SEED,
    );
    // Milder distractor blending: difficulty comes mostly from σ, which
    // the calibrator controls.
    cfg.distractor_mix = 0.10;
    let (set, weights, calibration) =
        calibrated_set(&spec, cfg, PAPER_VPU_ERROR, scale.calibration_probe());
    let model = ModelBundle::deploy(spec, weights);
    let set = Arc::new(set);
    let folders = ImageFolder::all_subsets(set);

    let mut cpu_fp32 = Vec::new();
    let mut vpu_fp16 = Vec::new();
    let mut conf = Vec::new();
    for f in &folders {
        let p32 = predictions_fp32(&model, f);
        let p16 = predictions_fp16(&model, f);
        conf.push(confidence_diff(&p32, &p16));
        cpu_fp32.push(ncsw::metrics::accuracy_report("cpu-fp32", &p32));
        vpu_fp16.push(ncsw::metrics::accuracy_report("vpu-fp16", &p16));
    }
    Fig7 { scale, calibration, cpu_fp32, vpu_fp16, conf_diff: conf }
}

impl Fig7 {
    pub fn mean_cpu_error(&self) -> f64 {
        stats::mean(&self.cpu_fp32.iter().map(|r| r.top1_error()).collect::<Vec<_>>())
    }

    pub fn mean_vpu_error(&self) -> f64 {
        stats::mean(&self.vpu_fp16.iter().map(|r| r.top1_error()).collect::<Vec<_>>())
    }

    pub fn mean_conf_diff(&self) -> f64 {
        stats::mean(&self.conf_diff.iter().map(|r| r.mean_abs_diff).collect::<Vec<_>>())
    }

    pub fn print(&self) {
        report::header(&format!(
            "Fig. 7a — top-1 inference error per subset (scale {}, σ={:.3} calibrated over {} probe imgs)",
            self.scale.name(),
            self.calibration.sigma,
            self.calibration.probe_images
        ));
        println!("{:<10} set-1   set-2   set-3   set-4   set-5   mean (vs paper)", "impl");
        for (name, rows, paper) in [
            ("cpu/fp32", &self.cpu_fp32, PAPER_CPU_ERROR),
            ("vpu/fp16", &self.vpu_fp16, PAPER_VPU_ERROR),
        ] {
            let cells: Vec<String> =
                rows.iter().map(|r| format!("{:>5.3}", r.top1_error())).collect();
            let mean = stats::mean(&rows.iter().map(|r| r.top1_error()).collect::<Vec<_>>());
            println!("{name:<10} {}   {}", cells.join("   "), report::vs_paper(mean, paper, 3));
        }
        let delta = (self.mean_cpu_error() - self.mean_vpu_error()).abs();
        println!("|fp32 − fp16| top-1 gap: {delta:.4} (paper 0.0009)");

        report::header(
            "Fig. 7b — absolute confidence difference per subset (top-1 misses filtered)",
        );
        println!("{:<10} set-1    set-2    set-3    set-4    set-5    mean (vs paper)", "pair");
        let cells: Vec<String> =
            self.conf_diff.iter().map(|r| format!("{:>7.4}", r.mean_abs_diff)).collect();
        println!(
            "{:<10} {}  {}",
            "cpu-vpu",
            cells.join("  "),
            report::vs_paper(self.mean_conf_diff(), PAPER_CONF_DIFF, 4)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_holds_at_tiny_scale() {
        let r = fig7(Scale::Tiny);
        assert_eq!(r.cpu_fp32.len(), 5);
        assert_eq!(r.vpu_fp16.len(), 5);
        // Both precisions land near the calibrated operating point
        // (tiny probe ⇒ generous tolerance).
        let ce = r.mean_cpu_error();
        let ve = r.mean_vpu_error();
        assert!((0.1..0.6).contains(&ce), "cpu error {ce}");
        assert!((0.1..0.6).contains(&ve), "vpu error {ve}");
        // FP16 is within a whisker of FP32 — the paper's core claim.
        assert!((ce - ve).abs() < 0.05, "precision gap too large: {ce} vs {ve}");
        // Confidence differences are non-zero but tiny.
        let cd = r.mean_conf_diff();
        assert!(cd > 0.0, "fp16 must differ");
        assert!(cd < 0.02, "confidence drift {cd} too large");
    }

    #[test]
    fn fig7_subsets_are_consistent() {
        let r = fig7(Scale::Tiny);
        // Subset errors scatter around the mean, not wildly.
        let errs: Vec<f64> = r.vpu_fp16.iter().map(|x| x.top1_error()).collect();
        let sd = vpu_num::stats::stddev(&errs);
        assert!(sd < 0.2, "subset errors too dispersed: {errs:?}");
        for c in &r.conf_diff {
            assert!(c.images_compared > 0, "no overlap of correct predictions");
        }
    }
}
