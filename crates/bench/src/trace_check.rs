//! Structural validation of exported Chrome trace-event JSON.
//!
//! CI runs a tiny observed serving run, exports the trace, and feeds it
//! back through [`validate`]: the document must parse, carry every
//! expected phase at least once, name its tracks, and contain at least
//! one request whose full Arrive→…→Complete chain appears with
//! non-decreasing timestamps. This closes the loop on the exporter — a
//! trace that renders in Perfetto but silently lost a phase fails here.

use serde_json::Value;
use std::collections::BTreeMap;

/// Phases every serving trace must contain at least once.
pub const REQUIRED_PHASES: [&str; 8] =
    ["Arrive", "Admit", "BatchClose", "Dispatch", "UsbWrite", "Exec", "UsbRead", "Complete"];

/// What [`validate`] measured about a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheck {
    /// Trace events excluding metadata records.
    pub events: usize,
    /// Named tracks (thread_name metadata records).
    pub tracks: usize,
    /// Distinct request ids seen in event args.
    pub requests: usize,
    /// Requests whose full phase chain is present and time-ordered.
    pub chained: usize,
}

fn number(v: &Value) -> Option<f64> {
    match v {
        Value::U64(u) => Some(*u as f64),
        Value::I64(i) => Some(*i as f64),
        Value::F64(f) => Some(*f),
        _ => None,
    }
}

/// Validate `json` as a serving trace. Returns what was found, or a
/// description of the first structural problem.
pub fn validate(json: &str) -> Result<TraceCheck, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_seq)
        .ok_or("missing traceEvents array".to_string())?;

    let mut tracks = 0usize;
    let mut count = 0usize;
    let mut phase_seen: BTreeMap<&str, usize> = BTreeMap::new();
    // request id -> (phase name -> first ts)
    let mut per_request: BTreeMap<u64, BTreeMap<String, f64>> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Value::as_str).ok_or(format!("event {i}: missing ph"))?;
        if ph == "M" {
            if ev.get("name").and_then(Value::as_str) == Some("thread_name") {
                tracks += 1;
            }
            continue;
        }
        if ph != "X" && ph != "i" {
            return Err(format!("event {i}: unexpected ph {ph:?}"));
        }
        count += 1;
        let name =
            ev.get("name").and_then(Value::as_str).ok_or(format!("event {i}: missing name"))?;
        let ts = ev.get("ts").and_then(number).ok_or(format!("event {i}: missing numeric ts"))?;
        if ph == "X" {
            let dur =
                ev.get("dur").and_then(number).ok_or(format!("event {i}: span without dur"))?;
            if dur < 0.0 {
                return Err(format!("event {i}: negative dur"));
            }
        }
        if let Some(&p) = REQUIRED_PHASES.iter().find(|&&p| p == name) {
            *phase_seen.entry(p).or_insert(0) += 1;
        }
        if let Some(id) = ev.get("args").and_then(|a| a.get("request_id")).and_then(number) {
            let slot = per_request.entry(id as u64).or_default();
            let entry = slot.entry(name.to_string()).or_insert(ts);
            if ts < *entry {
                *entry = ts;
            }
        }
    }

    for p in REQUIRED_PHASES {
        if !phase_seen.contains_key(p) {
            return Err(format!("phase {p} never appears in the trace"));
        }
    }
    if tracks == 0 {
        return Err("no thread_name metadata (unnamed tracks)".to_string());
    }

    let mut chained = 0usize;
    for stamps in per_request.values() {
        let mut last = f64::MIN;
        let mut ok = true;
        for p in REQUIRED_PHASES {
            match stamps.get(p) {
                Some(&ts) if ts >= last => last = ts,
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            chained += 1;
        }
    }
    if chained == 0 {
        return Err("no request exposes the full time-ordered phase chain".to_string());
    }

    Ok(TraceCheck { events: count, tracks, requests: per_request.len(), chained })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::serve_bench::traced_serve;
    use desim::Duration;
    use ncsw_serve::DispatchPolicy;

    fn tiny_trace() -> String {
        traced_serve(
            Scale::Tiny,
            Duration::from_millis(500.0),
            DispatchPolicy::CostAware,
            Duration::from_millis(10.0),
        )
        .chrome_json
    }

    #[test]
    fn tiny_observed_run_produces_a_valid_trace() {
        let json = tiny_trace();
        let check = validate(&json).expect("trace must validate");
        assert!(check.events > 100, "{check:?}");
        assert!(check.tracks >= 3, "{check:?}");
        assert!(check.chained > 0, "{check:?}");
    }

    #[test]
    fn validation_rejects_broken_traces() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        // A structurally fine document with no phases.
        let empty = r#"{"traceEvents":[{"ph":"M","name":"thread_name","args":{"name":"t"}}]}"#;
        let err = validate(empty).unwrap_err();
        assert!(err.contains("never appears"), "{err}");
        // Drop one phase from a real trace: must be caught.
        let json = tiny_trace().replace("\"name\":\"Admit\"", "\"name\":\"Xdmit\"");
        let err = validate(&json).unwrap_err();
        assert!(err.contains("Admit"), "{err}");
    }
}
