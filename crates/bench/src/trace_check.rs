//! Structural validation of exported Chrome trace-event JSON.
//!
//! CI runs a tiny observed serving run, exports the trace, and feeds it
//! back through [`validate`]: the document must parse, carry every
//! expected phase at least once, name its tracks, and contain at least
//! one request whose full Arrive→…→Complete chain appears with
//! non-decreasing timestamps. This closes the loop on the exporter — a
//! trace that renders in Perfetto but silently lost a phase fails here.

use ncsw_obs::{Phase, SampleStats, ShedCause};
use serde::Deserialize as _;
use serde_json::Value;
use std::collections::BTreeMap;

/// Phases every serving trace must contain at least once — derived from
/// [`Phase::REQUEST_CHAIN`] so the checker can never drift from the
/// names the exporter actually writes.
pub const REQUIRED_PHASES: [&str; Phase::REQUEST_CHAIN.len()] = {
    let mut out = [""; Phase::REQUEST_CHAIN.len()];
    let mut i = 0;
    while i < out.len() {
        out[i] = Phase::REQUEST_CHAIN[i].name();
        i += 1;
    }
    out
};

/// What [`validate`] measured about a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheck {
    /// Trace events excluding metadata records.
    pub events: usize,
    /// Named tracks (thread_name metadata records).
    pub tracks: usize,
    /// Distinct request ids seen in event args.
    pub requests: usize,
    /// Requests whose full phase chain is present and time-ordered.
    pub chained: usize,
    /// Failover events (each verified against a prior Dispatch on the
    /// same worker).
    pub failovers: usize,
    /// Circuit-breaker outage windows (each verified Exec-free).
    pub outage_windows: usize,
    /// Shed events (each verified to carry a valid cause and to be the
    /// request's final event).
    pub sheds: usize,
    /// Power counter samples (`ph:"C"`, each verified to carry a
    /// numeric `mw` reading).
    pub power_samples: usize,
    /// Drain events (each verified to open a dispatch-free window).
    pub drains: usize,
    /// ScaleUp spans (provisioning windows re-admitting a worker).
    pub scale_ups: usize,
    /// ScaleDown events (each verified outside any Exec span — a stick
    /// may only power-gate after its in-flight batches complete).
    pub scale_downs: usize,
    /// Hedge spans (speculative duplicate dispatches).
    pub hedges: usize,
    /// HedgeWin marks (each verified against a prior Hedge on the same
    /// batch).
    pub hedge_wins: usize,
    /// HedgeCancel marks (same pairing rule as wins).
    pub hedge_cancels: usize,
    /// IntegrityFail marks (each verified to be followed by a retry or
    /// a shed of the same request).
    pub integrity_fails: usize,
    /// Quarantine entries (each verified Exec-free until the matching
    /// Probation re-admits the worker).
    pub quarantines: usize,
    /// Probation re-entries.
    pub probations: usize,
    /// Tail-sampling ledger parsed from the trace's `sampling` metadata
    /// row (`None` = full-fidelity trace).
    pub sampling: Option<SampleStats>,
}

fn number(v: &Value) -> Option<f64> {
    match v {
        Value::U64(u) => Some(*u as f64),
        Value::I64(i) => Some(*i as f64),
        Value::F64(f) => Some(*f),
        _ => None,
    }
}

/// Validate `json` as a serving trace. Returns what was found, or a
/// description of the first structural problem.
pub fn validate(json: &str) -> Result<TraceCheck, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_seq)
        .ok_or("missing traceEvents array".to_string())?;

    let mut tracks = 0usize;
    let mut count = 0usize;
    let mut phase_seen: BTreeMap<&str, usize> = BTreeMap::new();
    // request id -> (phase name -> first ts)
    let mut per_request: BTreeMap<u64, BTreeMap<String, f64>> = BTreeMap::new();
    // Failover structure: worker -> event timestamps, in log order.
    let mut dispatches: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut execs: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut failovers: Vec<(u64, f64)> = Vec::new();
    // worker -> (ts, is_open) circuit transitions.
    let mut circuit: BTreeMap<u64, Vec<(f64, bool)>> = BTreeMap::new();
    // Autoscaling structure, per worker in log order.
    let mut exec_spans: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
    let mut drains: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut scale_downs: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    // ScaleUp spans end when the stick is provisioned and re-admitted.
    let mut scale_up_ends: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    // request id -> Shed timestamp; request id -> latest event (ts, name).
    let mut shed_at: BTreeMap<u64, f64> = BTreeMap::new();
    let mut latest: BTreeMap<u64, (f64, String)> = BTreeMap::new();
    let mut power_samples = 0usize;
    // Gray-failure structure: hedge spans per batch, win/cancel marks,
    // quarantine/probation instants per worker, integrity rejections
    // and retries per request.
    let mut hedge_starts: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut hedge_marks: Vec<(u64, f64, bool)> = Vec::new(); // (batch, ts, is_win)
    let mut quarantine_at: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut probation_at: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut integrity: Vec<(u64, f64)> = Vec::new(); // (request, ts)
    let mut retry_at: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut sampling: Option<SampleStats> = None;

    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Value::as_str).ok_or(format!("event {i}: missing ph"))?;
        if ph == "M" {
            match ev.get("name").and_then(Value::as_str) {
                Some("thread_name") => tracks += 1,
                Some("sampling") => {
                    let args =
                        ev.get("args").ok_or(format!("event {i}: sampling row without args"))?;
                    sampling = Some(SampleStats::from_value(args).map_err(|e| {
                        format!("event {i}: malformed sampling metadata row: {e:?}")
                    })?);
                }
                _ => {}
            }
            continue;
        }
        if ph == "C" {
            // A power counter without a reading is unrenderable and
            // breaks the analyzer's exact re-integration.
            ev.get("args")
                .and_then(|a| a.get("mw"))
                .and_then(number)
                .ok_or(format!("event {i}: counter without a numeric mw arg"))?;
            power_samples += 1;
            count += 1;
            continue;
        }
        if ph != "X" && ph != "i" {
            return Err(format!("event {i}: unexpected ph {ph:?}"));
        }
        count += 1;
        let name =
            ev.get("name").and_then(Value::as_str).ok_or(format!("event {i}: missing name"))?;
        let ts = ev.get("ts").and_then(number).ok_or(format!("event {i}: missing numeric ts"))?;
        let mut dur = 0.0;
        if ph == "X" {
            dur = ev.get("dur").and_then(number).ok_or(format!("event {i}: span without dur"))?;
            if dur < 0.0 {
                return Err(format!("event {i}: negative dur"));
            }
        }
        if let Some(&p) = REQUIRED_PHASES.iter().find(|&&p| p == name) {
            *phase_seen.entry(p).or_insert(0) += 1;
        }
        // A Shed must say why: the cause arg is what every downstream
        // consumer (analyzer, flamegraph, post-mortems) keys on.
        if name == "Shed" {
            let cause = ev
                .get("args")
                .and_then(|a| a.get("cause"))
                .and_then(Value::as_str)
                .ok_or(format!("event {i}: Shed without a cause arg"))?;
            if ShedCause::parse(cause).is_none() {
                return Err(format!("event {i}: Shed with unknown cause {cause:?}"));
            }
        }
        if let Some(id) = ev.get("args").and_then(|a| a.get("request_id")).and_then(number) {
            let id = id as u64;
            let slot = per_request.entry(id).or_default();
            let entry = slot.entry(name.to_string()).or_insert(ts);
            if ts < *entry {
                *entry = ts;
            }
            if name == "Shed" {
                // Retry-exhaustion sheds are spans covering the
                // request's whole queued life (arrival -> decision);
                // the *end* is the shed instant the finality and
                // integrity-resolution checks compare against.
                shed_at.entry(id).or_insert(ts + dur);
            }
            let last = latest.entry(id).or_insert((ts, name.to_string()));
            if ts > last.0 {
                *last = (ts, name.to_string());
            }
            if name == "IntegrityFail" {
                integrity.push((id, ts));
            }
            if name == "RetryAttempt" {
                retry_at.entry(id).or_default().push(ts);
            }
        }
        if let Some(w) = ev.get("args").and_then(|a| a.get("worker")).and_then(number) {
            let w = w as u64;
            match name {
                "Dispatch" => dispatches.entry(w).or_default().push(ts),
                "Exec" => {
                    execs.entry(w).or_default().push(ts);
                    exec_spans.entry(w).or_default().push((ts, ts + dur));
                }
                "Failover" => failovers.push((w, ts)),
                "CircuitOpen" => circuit.entry(w).or_default().push((ts, true)),
                "CircuitClose" => circuit.entry(w).or_default().push((ts, false)),
                "Drain" => drains.entry(w).or_default().push(ts),
                "ScaleDown" => scale_downs.entry(w).or_default().push(ts),
                "ScaleUp" => scale_up_ends.entry(w).or_default().push(ts + dur),
                "Quarantine" => quarantine_at.entry(w).or_default().push(ts),
                "Probation" => probation_at.entry(w).or_default().push(ts),
                _ => {}
            }
        }
        if let Some(b) = ev.get("args").and_then(|a| a.get("batch_id")).and_then(number) {
            let b = b as u64;
            match name {
                "Hedge" => hedge_starts.entry(b).or_default().push(ts),
                "HedgeWin" => hedge_marks.push((b, ts, true)),
                "HedgeCancel" => hedge_marks.push((b, ts, false)),
                _ => {}
            }
        }
    }

    for p in REQUIRED_PHASES {
        if !phase_seen.contains_key(p) {
            return Err(format!("phase {p} never appears in the trace"));
        }
    }
    if tracks == 0 {
        return Err("no thread_name metadata (unnamed tracks)".to_string());
    }

    // Failover structure: a Failover must follow a Dispatch on the same
    // worker — the batch it re-plans must actually have been routed.
    for &(w, ts) in &failovers {
        let dispatched_before = dispatches.get(&w).is_some_and(|d| d.iter().any(|&dt| dt <= ts));
        if !dispatched_before {
            return Err(format!("Failover on worker {w} at {ts} without a prior Dispatch"));
        }
    }
    // Circuit windows: transitions alternate open/close in time order,
    // and no Exec starts while a worker's circuit is open (the probe's
    // Exec lands at/after the CircuitClose that re-admitted it).
    let mut outage_windows = 0usize;
    for (w, evs) in &circuit {
        let mut last = f64::MIN;
        for (i, &(ts, is_open)) in evs.iter().enumerate() {
            let expect_open = i % 2 == 0;
            if is_open != expect_open {
                return Err(format!("worker {w}: circuit transitions do not alternate"));
            }
            if ts < last {
                return Err(format!("worker {w}: circuit transitions go backwards"));
            }
            last = ts;
        }
        for pair in evs.chunks(2) {
            let open = pair[0].0;
            let close = if pair.len() == 2 { pair[1].0 } else { f64::INFINITY };
            outage_windows += 1;
            if let Some(xs) = execs.get(w) {
                if let Some(x) = xs.iter().find(|&&x| x >= open && x < close) {
                    return Err(format!(
                        "worker {w}: Exec at {x} inside open-circuit window [{open}, {close})"
                    ));
                }
            }
        }
    }

    // Autoscaling structure. A Drain closes the dispatch window: no
    // Dispatch may target the worker strictly between the Drain and the
    // end of the ScaleUp span that re-provisions it (or ever, if it was
    // never scaled back up).
    for (w, ds) in &drains {
        for &d in ds {
            let readmit = scale_up_ends
                .get(w)
                .into_iter()
                .flatten()
                .copied()
                .filter(|&e| e > d)
                .fold(f64::INFINITY, f64::min);
            if let Some(ts) =
                dispatches.get(w).into_iter().flatten().find(|&&ts| ts > d && ts < readmit)
            {
                return Err(format!(
                    "worker {w}: Dispatch at {ts} inside gated window ({d}, {readmit})"
                ));
            }
        }
        // Every Drain must gate: its ScaleDown lands at/after it.
        let sds = scale_downs.get(w).map(Vec::as_slice).unwrap_or_default();
        if sds.len() != ds.len() {
            return Err(format!(
                "worker {w}: {} Drain(s) but {} ScaleDown(s)",
                ds.len(),
                sds.len()
            ));
        }
        if let Some((d, sd)) = ds.iter().zip(sds).find(|(d, sd)| sd < d) {
            return Err(format!("worker {w}: ScaleDown at {sd} before its Drain at {d}"));
        }
    }
    // A ScaleDown may only land once in-flight work is done: never
    // strictly inside an Exec span on the same worker.
    for (w, sds) in &scale_downs {
        for &sd in sds {
            if let Some((s, e)) =
                exec_spans.get(w).into_iter().flatten().find(|&&(s, e)| sd > s && sd < e)
            {
                return Err(format!(
                    "worker {w}: ScaleDown at {sd} inside in-flight Exec span [{s}, {e})"
                ));
            }
        }
    }

    // Hedge pairing: a win or cancel only makes sense against a hedge
    // that actually started on the same batch, at or before the mark.
    for &(b, ts, is_win) in &hedge_marks {
        let kind = if is_win { "HedgeWin" } else { "HedgeCancel" };
        let started = hedge_starts.get(&b).is_some_and(|hs| hs.iter().any(|&h| h <= ts));
        if !started {
            return Err(format!("{kind} on batch {b} at {ts} without a prior Hedge"));
        }
    }
    // Quarantine windows: from the Quarantine instant until the next
    // Probation on the same worker the dispatcher must route around it
    // — no Exec may start inside the window.
    let mut quarantine_count = 0usize;
    for (w, qs) in &quarantine_at {
        let ps = probation_at.get(w).map(Vec::as_slice).unwrap_or_default();
        for &q in qs {
            quarantine_count += 1;
            let release = ps.iter().copied().filter(|&p| p >= q).fold(f64::INFINITY, f64::min);
            if let Some(x) = execs.get(w).into_iter().flatten().find(|&&x| x >= q && x < release) {
                return Err(format!(
                    "worker {w}: Exec at {x} inside quarantine window [{q}, {release})"
                ));
            }
        }
    }
    // Every integrity rejection must resolve: a retry attempt or a shed
    // of the same request at/after the rejection — corrupt results may
    // never silently surface as completions.
    for &(id, ts) in &integrity {
        let retried = retry_at.get(&id).is_some_and(|rs| rs.iter().any(|&r| r >= ts));
        let is_shed = shed_at.get(&id).is_some_and(|&s| s >= ts);
        if !retried && !is_shed {
            return Err(format!(
                "request {id}: IntegrityFail at {ts} with no retry or shed after it"
            ));
        }
    }

    // A shed request is dead: nothing of it may start after the Shed.
    for (id, &sts) in &shed_at {
        if let Some((t, n)) = latest.get(id) {
            if *t > sts {
                return Err(format!("request {id}: {n} at {t} after its Shed at {sts}"));
            }
        }
    }

    let mut chained = 0usize;
    for stamps in per_request.values() {
        let mut last = f64::MIN;
        let mut ok = true;
        for p in REQUIRED_PHASES {
            match stamps.get(p) {
                Some(&ts) if ts >= last => last = ts,
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            chained += 1;
        }
    }
    if chained == 0 {
        return Err("no request exposes the full time-ordered phase chain".to_string());
    }

    Ok(TraceCheck {
        events: count,
        tracks,
        requests: per_request.len(),
        chained,
        failovers: failovers.len(),
        outage_windows,
        sheds: shed_at.len(),
        power_samples,
        drains: drains.values().map(Vec::len).sum(),
        scale_ups: scale_up_ends.values().map(Vec::len).sum(),
        scale_downs: scale_downs.values().map(Vec::len).sum(),
        hedges: hedge_starts.values().map(Vec::len).sum(),
        hedge_wins: hedge_marks.iter().filter(|m| m.2).count(),
        hedge_cancels: hedge_marks.iter().filter(|m| !m.2).count(),
        integrity_fails: integrity.len(),
        quarantines: quarantine_count,
        probations: probation_at.values().map(Vec::len).sum(),
        sampling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::serve_bench::traced_serve;
    use desim::Duration;
    use ncsw_serve::DispatchPolicy;

    fn tiny_trace() -> String {
        traced_serve(
            Scale::Tiny,
            Duration::from_millis(500.0),
            DispatchPolicy::CostAware,
            Duration::from_millis(10.0),
        )
        .chrome_json
    }

    #[test]
    fn tiny_observed_run_produces_a_valid_trace() {
        let json = tiny_trace();
        let check = validate(&json).expect("trace must validate");
        assert!(check.events > 100, "{check:?}");
        assert!(check.tracks >= 3, "{check:?}");
        assert!(check.chained > 0, "{check:?}");
        // The energy meter's power lanes ride in every observed trace.
        assert!(check.power_samples > 0, "{check:?}");
        // A counter stripped of its reading must be caught.
        let bad = json.replace("\"mw\":", "\"xw\":");
        assert_ne!(bad, json, "trace must contain power counters to corrupt");
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("numeric mw"), "{err}");
    }

    fn faulted_trace() -> String {
        // Unplug the VPU worker early enough that the tiny horizon
        // (~1 s) sees the outage, the circuit opening, and a probe.
        let plan = ncsw_faults::FaultPlan::parse("unplug@100ms:reconnect@400ms").unwrap();
        crate::serve_bench::traced_serve_with_faults(
            Scale::Tiny,
            Duration::from_millis(500.0),
            DispatchPolicy::CostAware,
            Duration::from_millis(10.0),
            Some(&plan),
        )
        .chrome_json
    }

    #[test]
    fn sampled_trace_validates_and_carries_the_sampling_ledger() {
        let t = crate::serve_bench::traced_serve_sampled(
            Scale::Tiny,
            Duration::from_millis(500.0),
            DispatchPolicy::CostAware,
            Duration::from_millis(10.0),
            None,
            ncsw_serve::GrayConfig::default(),
            Some(ncsw_obs::SamplePolicy::parse("1-in-25").unwrap()),
        );
        // The sampled trace still passes the full grammar: kept chains
        // are intact, so REQUIRED_PHASES and chaining hold.
        let check = validate(&t.chrome_json).expect("sampled trace must validate");
        let s = check.sampling.as_ref().expect("sampling metadata row");
        assert_eq!(s.spec, "1-in-25");
        assert!(s.requests_kept < s.requests_seen, "{s:?}");
        assert!(check.chained > 0, "{check:?}");
        // A full-fidelity trace carries no sampling row.
        assert!(validate(&tiny_trace()).unwrap().sampling.is_none());
        // A corrupted ledger is rejected, not ignored.
        let bad = t.chrome_json.replace("\"requests_seen\":", "\"requests_sxen\":");
        assert_ne!(bad, t.chrome_json);
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("sampling"), "{err}");
    }

    #[test]
    fn faulted_trace_validates_with_failover_structure() {
        let json = faulted_trace();
        let check = validate(&json).expect("faulted trace must validate");
        assert!(check.failovers > 0, "{check:?}");
        assert!(check.outage_windows > 0, "{check:?}");
    }

    #[test]
    fn failover_checks_reject_corrupted_traces() {
        let json = faulted_trace();
        // Non-alternating circuit transitions must be caught.
        let bad = json.replace("\"name\":\"CircuitClose\"", "\"name\":\"CircuitOpen\"");
        assert_ne!(bad, json, "trace must contain a CircuitClose to corrupt");
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("alternate"), "{err}");
        // A Failover with no prior Dispatch on that worker must be
        // caught: strip every Dispatch aimed at the faulted worker (2).
        let bad: String = json
            .lines()
            .map(|l| {
                if l.contains("\"name\":\"Dispatch\"") && l.contains("\"worker\":2") {
                    l.replace("\"name\":\"Dispatch\"", "\"name\":\"Xdispatch\"")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert_ne!(bad, json);
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("without a prior Dispatch"), "{err}");
    }

    /// A hand-built log with one full-chain request and one shed
    /// request, with the shed's cause and finality under test control.
    fn synthetic_log(shed_cause: Option<ShedCause>, post_shed_event: bool) -> String {
        use desim::SimTime;
        use ncsw_obs::{chrome_trace, Ctx, Event, EventLog, Lane, Recorder as _};
        let t = |ms: u64| SimTime(ms * 1_000_000);
        let mut log = EventLog::new();
        let r = Ctx::request(0).with_batch(0).with_worker(0);
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(0), Ctx::request(0)));
        log.record(Event::instant(Phase::Admit, Lane::Server, t(0), Ctx::request(0)));
        log.record(Event::instant(Phase::BatchClose, Lane::Queue, t(1), r));
        log.record(Event::instant(Phase::Dispatch, Lane::Worker(0), t(1), r));
        log.record(Event::span(Phase::UsbWrite, Lane::Host { worker: 0, dev: 0 }, t(1), t(2), r));
        log.record(Event::span(Phase::Exec, Lane::Vpu { worker: 0, dev: 0 }, t(2), t(3), r));
        log.record(Event::span(Phase::UsbRead, Lane::Host { worker: 0, dev: 0 }, t(3), t(4), r));
        log.record(Event::instant(Phase::Complete, Lane::Server, t(4), r));
        let s = Ctx::request(1);
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(5), s));
        let shed = Event::instant(Phase::Shed, Lane::Server, t(6), s);
        log.record(match shed_cause {
            Some(c) => shed.with_cause(c),
            None => shed,
        });
        if post_shed_event {
            log.record(Event::instant(Phase::Admit, Lane::Server, t(7), s));
        }
        chrome_trace(&log)
    }

    #[test]
    fn shed_checks_enforce_cause_and_finality() {
        let ok = synthetic_log(Some(ShedCause::Rejected), false);
        let check = validate(&ok).expect("synthetic trace must validate");
        assert_eq!(check.sheds, 1);
        assert_eq!(check.chained, 1);
        // A Shed with no cause arg is a malformed trace.
        let err = validate(&synthetic_log(None, false)).unwrap_err();
        assert!(err.contains("without a cause"), "{err}");
        // Activity after a request was shed is a lifecycle violation.
        let err = validate(&synthetic_log(Some(ShedCause::Deadline), true)).unwrap_err();
        assert!(err.contains("after its Shed"), "{err}");
        // An unrecognized cause string is rejected, not counted.
        let bad = ok.replace("\"cause\":\"rejected\"", "\"cause\":\"gremlins\"");
        assert_ne!(bad, ok);
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("unknown cause"), "{err}");
    }

    #[test]
    fn autoscaled_trace_validates_with_scaling_structure() {
        let json = crate::autoscale_bench::traced_autoscale(
            Scale::Tiny,
            "reactive",
            Duration::from_millis(10.0),
        )
        .chrome_json;
        let check = validate(&json).expect("autoscaled trace must validate");
        assert!(check.drains > 0, "{check:?}");
        assert!(check.scale_downs > 0, "{check:?}");
        assert!(check.scale_ups > 0, "{check:?}");
        assert_eq!(check.drains, check.scale_downs, "{check:?}");
        // Stripping the ScaleDowns breaks the Drain pairing.
        let bad = json.replace("\"name\":\"ScaleDown\"", "\"name\":\"XcaleDown\"");
        assert_ne!(bad, json);
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("ScaleDown"), "{err}");
    }

    /// A hand-built log exercising the scaling grammar on worker 1 next
    /// to one fully chained request on worker 0.
    fn synthetic_scaling_log(dispatch_while_gated: bool, scaledown_mid_exec: bool) -> String {
        use desim::SimTime;
        use ncsw_obs::{chrome_trace, Ctx, Event, EventLog, Lane, Recorder as _};
        let t = |ms: u64| SimTime(ms * 1_000_000);
        let mut log = EventLog::new();
        let r = Ctx::request(0).with_batch(0).with_worker(0);
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(0), Ctx::request(0)));
        log.record(Event::instant(Phase::Admit, Lane::Server, t(0), Ctx::request(0)));
        log.record(Event::instant(Phase::BatchClose, Lane::Queue, t(1), r));
        log.record(Event::instant(Phase::Dispatch, Lane::Worker(0), t(1), r));
        log.record(Event::span(Phase::UsbWrite, Lane::Host { worker: 0, dev: 0 }, t(1), t(2), r));
        log.record(Event::span(Phase::Exec, Lane::Vpu { worker: 0, dev: 0 }, t(2), t(3), r));
        log.record(Event::span(Phase::UsbRead, Lane::Host { worker: 0, dev: 0 }, t(3), t(4), r));
        log.record(Event::instant(Phase::Complete, Lane::Server, t(4), r));
        // Worker 1 runs a batch, then is drained and later re-provisioned.
        let w = Ctx { request_id: None, batch_id: None, worker: Some(1) };
        let b = Ctx { request_id: None, batch_id: Some(9), worker: Some(1) };
        log.record(Event::instant(Phase::Dispatch, Lane::Worker(1), t(5), b));
        log.record(Event::span(Phase::Exec, Lane::Vpu { worker: 1, dev: 0 }, t(5), t(8), b));
        let gate = if scaledown_mid_exec { t(6) } else { t(8) };
        log.record(Event::instant(Phase::Drain, Lane::Worker(1), t(6), w));
        log.record(Event::instant(Phase::ScaleDown, Lane::Worker(1), gate, w));
        if dispatch_while_gated {
            log.record(Event::instant(Phase::Dispatch, Lane::Worker(1), t(10), b));
        }
        log.record(Event::span(Phase::ScaleUp, Lane::Worker(1), t(20), t(25), w));
        chrome_trace(&log)
    }

    #[test]
    fn scaling_checks_enforce_gated_windows_and_drain_semantics() {
        let ok = synthetic_scaling_log(false, false);
        let check = validate(&ok).expect("synthetic scaling trace must validate");
        assert_eq!((check.drains, check.scale_downs, check.scale_ups), (1, 1, 1));
        // A Dispatch inside the gated window (after Drain, before the
        // ScaleUp finishes provisioning) is a routing violation.
        let err = validate(&synthetic_scaling_log(true, false)).unwrap_err();
        assert!(err.contains("gated window"), "{err}");
        // Power-gating while a batch is still executing is an energy
        // accounting violation: the drain must wait for in-flight work.
        let err = validate(&synthetic_scaling_log(false, true)).unwrap_err();
        assert!(err.contains("in-flight Exec"), "{err}");
    }

    /// A hand-built log exercising the gray-failure grammar next to one
    /// fully chained request: a hedged batch won by the duplicate, a
    /// quarantine window on worker 1, and one integrity rejection.
    fn synthetic_gray_log(
        strip_hedge: bool,
        exec_in_quarantine: bool,
        orphan_integrity: bool,
    ) -> String {
        use desim::SimTime;
        use ncsw_obs::{chrome_trace, Ctx, Event, EventLog, Lane, Recorder as _};
        let t = |ms: u64| SimTime(ms * 1_000_000);
        let mut log = EventLog::new();
        let r = Ctx::request(0).with_batch(0).with_worker(0);
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(0), Ctx::request(0)));
        log.record(Event::instant(Phase::Admit, Lane::Server, t(0), Ctx::request(0)));
        log.record(Event::instant(Phase::BatchClose, Lane::Queue, t(1), r));
        log.record(Event::instant(Phase::Dispatch, Lane::Worker(0), t(1), r));
        log.record(Event::span(Phase::UsbWrite, Lane::Host { worker: 0, dev: 0 }, t(1), t(2), r));
        log.record(Event::span(Phase::Exec, Lane::Vpu { worker: 0, dev: 0 }, t(2), t(4), r));
        log.record(Event::span(Phase::UsbRead, Lane::Host { worker: 0, dev: 0 }, t(4), t(5), r));
        log.record(Event::instant(Phase::Complete, Lane::Server, t(5), r));
        // The primary ran long: batch 0 was hedged onto worker 1, and
        // the duplicate won at t(3).
        let h = Ctx { request_id: None, batch_id: Some(0), worker: Some(1) };
        if !strip_hedge {
            log.record(Event::span(Phase::Hedge, Lane::Worker(1), t(2), t(3), h));
        }
        log.record(Event::instant(Phase::HedgeWin, Lane::Worker(1), t(3), h));
        // Worker 1 is quarantined as fail-slow from t(5) to its
        // probation probe at t(20).
        let w1 = Ctx { request_id: None, batch_id: None, worker: Some(1) };
        log.record(Event::instant(Phase::Quarantine, Lane::Worker(1), t(5), w1));
        if exec_in_quarantine {
            let b = Ctx { request_id: None, batch_id: Some(7), worker: Some(1) };
            log.record(Event::span(Phase::Exec, Lane::Vpu { worker: 1, dev: 0 }, t(10), t(12), b));
        }
        log.record(Event::instant(Phase::Probation, Lane::Worker(1), t(20), w1));
        // Request 1's completion failed its checksum and was retried.
        let s = Ctx::request(1).with_batch(0).with_worker(0);
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(6), Ctx::request(1)));
        log.record(Event::instant(Phase::IntegrityFail, Lane::Worker(0), t(8), s));
        if !orphan_integrity {
            log.record(Event::instant(
                Phase::RetryAttempt,
                Lane::Server,
                t(9),
                Ctx::request(1).with_batch(0),
            ));
            log.record(Event::instant(Phase::Complete, Lane::Server, t(10), s));
        }
        chrome_trace(&log)
    }

    #[test]
    fn gray_checks_enforce_hedge_quarantine_and_integrity_grammar() {
        let ok = synthetic_gray_log(false, false, false);
        let check = validate(&ok).expect("synthetic gray trace must validate");
        assert_eq!((check.hedges, check.hedge_wins, check.hedge_cancels), (1, 1, 0));
        assert_eq!((check.quarantines, check.probations), (1, 1));
        assert_eq!(check.integrity_fails, 1);
        // A HedgeWin with no Hedge on that batch is a phantom duplicate.
        let err = validate(&synthetic_gray_log(true, false, false)).unwrap_err();
        assert!(err.contains("without a prior Hedge"), "{err}");
        // Dispatching work to a quarantined worker defeats the defense.
        let err = validate(&synthetic_gray_log(false, true, false)).unwrap_err();
        assert!(err.contains("quarantine window"), "{err}");
        // An integrity rejection that neither retries nor sheds means
        // the request silently vanished.
        let err = validate(&synthetic_gray_log(false, false, true)).unwrap_err();
        assert!(err.contains("no retry or shed"), "{err}");
    }

    #[test]
    fn validation_rejects_broken_traces() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        // A structurally fine document with no phases.
        let empty = r#"{"traceEvents":[{"ph":"M","name":"thread_name","args":{"name":"t"}}]}"#;
        let err = validate(empty).unwrap_err();
        assert!(err.contains("never appears"), "{err}");
        // Drop one phase from a real trace: must be caught.
        let json = tiny_trace().replace("\"name\":\"Admit\"", "\"name\":\"Xdmit\"");
        let err = validate(&json).unwrap_err();
        assert!(err.contains("Admit"), "{err}");
    }
}
