//! Seeded chaos campaigns: randomized fault cocktails against the fully
//! defended server, with machine-checked invariants.
//!
//! Each campaign derives everything — fleet shape, offered load, shed
//! and dispatch policies, and a cocktail of one to three faults drawn
//! from all eight kinds — from a single campaign seed, runs the server
//! with every gray-failure defense on, and checks invariants that must
//! hold under *any* fault cocktail:
//!
//! 1. **Conservation** — every generated request completes or sheds.
//! 2. **Exactly-once** — no request id appears twice across the
//!    completed and shed sets.
//! 3. **Integrity** — zero corrupted or dropped results surfaced to the
//!    client (verification is on).
//! 4. **Energy books** — the fleet picojoule total equals the sum of
//!    the per-worker ledgers at the same horizon, exactly.
//! 5. **Latency telescoping** — formation + queue + service == latency
//!    for every completed request, in exact integer nanoseconds.
//! 6. **Trace grammar** — the run's Chrome trace passes the full
//!    `trace_check` validator (phase chains, USB half-duplex, hedge
//!    pairing, quarantine windows, integrity resolution).
//! 7. **Determinism** — re-running the campaign byte-reproduces the
//!    trace and the report.
//!
//! A failing campaign prints its seed and full spec; `repro chaos
//! --campaigns 1 --seed <campaign_seed>` replays exactly that cocktail.

use crate::report;
use crate::trace_check;
use desim::Duration;
use ncsw::ModelBundle;
use ncsw_faults::{FaultEvent, FaultPlan};
use ncsw_obs::chrome_trace;
use ncsw_serve::{
    serve_observed, ArrivalProcess, DispatchPolicy, FleetSpec, GrayConfig, ObsConfig, ServeConfig,
    ServeOutcome, ServeReport, ShedPolicy,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use vpu_nn::googlenet::Variant;

/// Fleet shapes a campaign may draw (kept small: chaos hunts for logic
/// violations, not throughput numbers).
pub const CHAOS_FLEETS: [&str; 4] = ["vpu+vpu", "vpu+vpu+vpu", "vpu+vpu+vpu+vpu", "cpu+2xvpu"];

/// Everything one campaign derived from its seed — printed verbatim
/// when an invariant fails so the cocktail is reproducible by hand.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSpec {
    pub campaign_seed: u64,
    pub fleet: String,
    pub load_frac: f64,
    pub requests: usize,
    pub shed: String,
    pub policy: String,
    /// `--faults` grammar for the injected cocktail.
    pub faults: String,
}

/// One campaign that violated at least one invariant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignFailure {
    pub spec: CampaignSpec,
    pub violations: Vec<String>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    pub campaigns: usize,
    pub base_seed: u64,
    /// Requests served across all campaigns.
    pub requests_total: usize,
    /// Faults injected across all campaigns (sum of plan lengths).
    pub faults_total: usize,
    pub failures: Vec<CampaignFailure>,
}

impl ChaosReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn print(&self) {
        report::header(&format!(
            "chaos — {} seeded campaigns from seed {} ({} requests, {} faults injected)",
            self.campaigns, self.base_seed, self.requests_total, self.faults_total
        ));
        if self.passed() {
            println!("all campaigns passed every invariant");
            return;
        }
        for f in &self.failures {
            let s = &f.spec;
            println!(
                "\nFAILED campaign seed {} — fleet {}, load {:.2}x, {} req, shed {}, \
                 dispatch {}\n  faults: {}",
                s.campaign_seed, s.fleet, s.load_frac, s.requests, s.shed, s.policy, s.faults
            );
            for v in &f.violations {
                println!("  violated: {v}");
            }
            println!("  replay: repro chaos --campaigns 1 --seed {}", s.campaign_seed);
        }
        println!("\n{} of {} campaigns FAILED", self.failures.len(), self.campaigns);
    }
}

/// Draw one campaign's scenario from its seed.
fn draw_spec(campaign_seed: u64, capacity_of: impl Fn(&str) -> f64) -> (CampaignSpec, FaultPlan) {
    let mut rng = vpu_num::rng::indexed_stream(campaign_seed, "chaos-campaign", 0);
    let fleet = CHAOS_FLEETS[rng.gen_range(0..CHAOS_FLEETS.len())];
    let fleet_size = FleetSpec::parse(fleet).expect("valid fleet spec").0.len();
    let load_frac = 0.5 + 0.7 * rng.gen::<f64>();
    let requests = rng.gen_range(120..240);
    let shed: ShedPolicy = [ShedPolicy::Reject, ShedPolicy::DropOldest, ShedPolicy::DeadlineAware]
        [rng.gen_range(0..3usize)];
    let policy: DispatchPolicy =
        [DispatchPolicy::RoundRobin, DispatchPolicy::LeastOutstanding, DispatchPolicy::CostAware]
            [rng.gen_range(0..3usize)];
    let horizon = requests as f64 / (capacity_of(fleet) * load_frac);

    let mut plan = FaultPlan::empty();
    for _ in 0..rng.gen_range(1..=3) {
        let worker = Some(rng.gen_range(0..fleet_size));
        let at = Duration::from_secs(horizon * (0.1 + 0.5 * rng.gen::<f64>()));
        let dur = Duration::from_secs(horizon * (0.2 + 0.4 * rng.gen::<f64>()));
        let p = 0.01 + 0.09 * rng.gen::<f64>();
        let fault = match rng.gen_range(0..8) {
            0 => FaultEvent::StickUnplug {
                at,
                reconnect_after: Some(Duration::from_secs(horizon * 0.15)),
            },
            1 => FaultEvent::ThermalThrottle {
                at,
                duration: dur,
                slowdown: 1.5 + 2.0 * rng.gen::<f64>(),
            },
            2 => FaultEvent::UsbDegrade { at, duration: dur, factor: 1.3 + rng.gen::<f64>() },
            3 => FaultEvent::TransientExecError { per_batch_prob: p },
            4 => FaultEvent::FailSlow { at, duration: dur, factor: 2.0 + 6.0 * rng.gen::<f64>() },
            5 => FaultEvent::ResultCorrupt { per_image_prob: p },
            6 => FaultEvent::DuplicateCompletion { per_image_prob: p },
            _ => FaultEvent::DroppedCompletion { per_image_prob: p },
        };
        plan.push(worker, fault);
    }

    let spec = CampaignSpec {
        campaign_seed,
        fleet: fleet.to_string(),
        load_frac,
        requests,
        shed: shed.name().to_string(),
        policy: policy.name().to_string(),
        faults: plan.to_spec(),
    };
    (spec, plan)
}

/// Everything invariant checks need from one execution of a campaign.
struct CampaignRun {
    outcome: ServeOutcome,
    chrome_json: String,
    report_json: String,
}

fn execute(spec: &CampaignSpec, plan: &FaultPlan, model: &ModelBundle) -> CampaignRun {
    let fleet = FleetSpec::parse(&spec.fleet).expect("valid fleet spec");
    let probe = fleet.build(model);
    let capacity_rps = fleet.capacity_rps(&probe);
    let max_batch = fleet.preferred_batch(&probe);
    drop(probe);
    let cfg = ServeConfig {
        max_batch,
        shed: ShedPolicy::parse(&spec.shed).expect("round-trip shed policy"),
        policy: DispatchPolicy::parse(&spec.policy).expect("round-trip dispatch policy"),
        seed: spec.campaign_seed,
        gray: GrayConfig::defended(),
        ..ServeConfig::default()
    };
    let mut workers = fleet.build(model);
    workers = plan.apply(workers, cfg.seed);
    let load = ArrivalProcess::Poisson { rate_per_sec: capacity_rps * spec.load_frac };
    let ocfg = ObsConfig { sample_every: Duration::from_millis(10.0), ..ObsConfig::default() };
    let (outcome, obs) = serve_observed(&mut workers, &cfg, &load, spec.requests, &ocfg);
    let report_json =
        serde_json::to_string(&ServeReport::of(&outcome, &cfg)).expect("report serializes");
    CampaignRun { outcome, chrome_json: chrome_trace(&obs.events), report_json }
}

/// Check every invariant against one campaign execution (plus its
/// re-execution for determinism). Returns the violations found.
fn check_invariants(spec: &CampaignSpec, run: &CampaignRun, rerun: &CampaignRun) -> Vec<String> {
    let mut v = Vec::new();
    let o = &run.outcome;

    // 1. Conservation.
    if o.completed.len() + o.shed.len() != o.generated {
        v.push(format!(
            "conservation: {} completed + {} shed != {} generated",
            o.completed.len(),
            o.shed.len(),
            o.generated
        ));
    }

    // 2. Exactly-once delivery.
    let mut ids = BTreeSet::new();
    for id in o.completed.iter().map(|r| r.id).chain(o.shed.iter().map(|s| s.id)) {
        if !ids.insert(id) {
            v.push(format!("exactly-once: request {id} delivered twice"));
        }
    }

    // 3. Integrity: defended runs never surface bad results.
    if o.gray.corrupt_surfaced > 0 || o.gray.drops_surfaced > 0 {
        v.push(format!(
            "integrity: {} corrupted and {} dropped results surfaced with verification on",
            o.gray.corrupt_surfaced, o.gray.drops_surfaced
        ));
    }

    // 4. Energy books balance in exact picojoules.
    let horizon = o.energy_horizon();
    let fleet_pj = o.energy.totals(horizon).fleet_pj();
    let sum_pj: u64 = (0..o.workers.len()).map(|w| o.energy.worker_pj(w, horizon)).sum();
    if fleet_pj != sum_pj {
        v.push(format!("energy: fleet total {fleet_pj} pJ != per-worker sum {sum_pj} pJ"));
    }

    // 5. Latency telescoping, exact.
    for r in &o.completed {
        let sum = r.formation_wait() + r.queue_wait() + r.service_time();
        if sum != r.latency() {
            v.push(format!(
                "telescoping: request {} formation+queue+service {sum} != latency {}",
                r.id,
                r.latency()
            ));
            break;
        }
    }

    // 6. Trace grammar.
    if let Err(e) = trace_check::validate(&run.chrome_json) {
        v.push(format!("trace: {e}"));
    }

    // 7. Determinism: the replayed campaign byte-reproduces the run.
    if run.chrome_json != rerun.chrome_json {
        v.push("determinism: re-run produced a different trace".to_string());
    }
    if run.report_json != rerun.report_json {
        v.push("determinism: re-run produced a different report".to_string());
    }

    let _ = spec;
    v
}

/// Run `campaigns` chaos campaigns derived from `base_seed`. Campaign
/// `i` uses seed `base_seed + i`, so any failure replays in isolation
/// with `--campaigns 1 --seed <campaign_seed>`.
pub fn chaos(campaigns: usize, base_seed: u64) -> ChaosReport {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let mut failures = Vec::new();
    let mut requests_total = 0;
    let mut faults_total = 0;
    for i in 0..campaigns {
        let campaign_seed = base_seed.wrapping_add(i as u64);
        let (spec, plan) = draw_spec(campaign_seed, |fleet| {
            let f = FleetSpec::parse(fleet).expect("valid fleet spec");
            let probe = f.build(&model);
            f.capacity_rps(&probe)
        });
        requests_total += spec.requests;
        faults_total += plan.faults.len();
        let run = execute(&spec, &plan, &model);
        let rerun = execute(&spec, &plan, &model);
        let violations = check_invariants(&spec, &run, &rerun);
        if !violations.is_empty() {
            failures.push(CampaignFailure { spec, violations });
        }
    }
    ChaosReport { campaigns, base_seed, requests_total, faults_total, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_smoke_holds_every_invariant() {
        let r = chaos(5, 22_000);
        assert_eq!(r.campaigns, 5);
        assert!(r.faults_total >= 5, "each campaign injects at least one fault: {r:?}");
        assert!(
            r.passed(),
            "chaos violations:\n{}",
            serde_json::to_string(&r.failures).unwrap_or_default()
        );
    }

    #[test]
    fn chaos_campaigns_are_reproducible() {
        // The whole harness is a pure function of (campaigns, seed):
        // drawing and running the same campaigns twice yields an
        // identical serialized report.
        let a = serde_json::to_string(&chaos(2, 7)).expect("report serializes");
        let b = serde_json::to_string(&chaos(2, 7)).expect("report serializes");
        assert_eq!(a, b);
    }

    #[test]
    fn campaign_specs_vary_with_the_seed() {
        let cap = |_: &str| 40.0;
        let (a, _) = draw_spec(1, cap);
        let (b, _) = draw_spec(2, cap);
        assert_ne!(
            (&a.fleet, a.load_frac, &a.faults),
            (&b.fleet, b.load_frac, &b.faults),
            "adjacent seeds drew identical campaigns"
        );
    }
}
