//! Fig. 8a — throughput per Watt (Eq. 1) per batch size, and
//! Fig. 8b — projected inference performance for batch sizes 1–16.

use crate::report;
use crate::scale::Scale;
use hostsim::power::Tdp;
use ncsw::runner::latency_curve;
use ncsw::{IntelCpu, IntelVpu, ModelBundle, NvGpu};
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

/// Paper values for Fig. 8a at the last batch point (img/W).
pub const PAPER_8A: [(&str, f64); 3] = [("cpu", 0.55), ("gpu", 0.93), ("vpu", 3.97)];

/// Paper values for Fig. 8b maxima (img/s at batch 16).
pub const PAPER_8B: [(&str, f64); 3] = [("cpu", 44.5), ("gpu", 79.9), ("vpu", 153.0)];

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerSeries {
    pub target: String,
    /// (batch, img/s, img/W).
    pub points: Vec<(usize, f64, f64)>,
    pub paper_img_per_watt: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8a {
    pub scale: Scale,
    pub series: Vec<PowerSeries>,
}

/// TDP charged per target at a given batch size (Fig. 8a's accounting:
/// whole-package for the hosts, one stick-peak per active VPU). All
/// rates come from the [`hostsim::power::Tdp`] registry — the single
/// source of truth the online energy meter uses too.
fn tdp(target: &str, batch: usize) -> f64 {
    let t = Tdp::default();
    match target {
        "cpu" => t.cpu_w,
        "gpu" => t.gpu_w,
        _ => t.multi_stick_w(batch),
    }
}

/// A named per-batch latency curve with its paper reference scalar.
type LatencyCurve = (String, Vec<(usize, f64)>, f64);

fn power_series(scale: Scale, batches: &[usize]) -> Vec<PowerSeries> {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let images = scale.sweep_images();
    let curves: Vec<LatencyCurve> = vec![
        (
            "cpu".into(),
            latency_curve(|_| Box::new(IntelCpu::new(model.clone())), batches, images),
            PAPER_8A[0].1,
        ),
        (
            "gpu".into(),
            latency_curve(|_| Box::new(NvGpu::new(model.clone())), batches, images),
            PAPER_8A[1].1,
        ),
        (
            "vpu".into(),
            latency_curve(|b| Box::new(IntelVpu::new(model.clone(), b)), batches, images),
            PAPER_8A[2].1,
        ),
    ];
    curves
        .into_iter()
        .map(|(target, lat, paper)| {
            let points = lat
                .iter()
                .map(|&(b, ms)| {
                    let ips = 1000.0 / ms;
                    (b, ips, ips / tdp(&target, b))
                })
                .collect();
            PowerSeries { target, points, paper_img_per_watt: paper }
        })
        .collect()
}

/// Run Fig. 8a: batch ∈ {1,2,4,8}, Eq. (1) with TDP 80/80/2.5·n W.
pub fn fig8a(scale: Scale) -> Fig8a {
    Fig8a { scale, series: power_series(scale, &[1, 2, 4, 8]) }
}

impl Fig8a {
    pub fn print(&self) {
        report::header(&format!(
            "Fig. 8a — throughput per Watt (Eq. 1) per batch size (scale {})",
            self.scale.name()
        ));
        println!("{:<6} {:>8} {:>8} {:>8} {:>8}   ref-point vs paper", "target", 1, 2, 4, 8);
        for s in &self.series {
            let cells: Vec<String> =
                s.points.iter().map(|&(_, _, ipw)| format!("{ipw:>8.2}")).collect();
            // Paper's quoted point: batch-8 for hosts, batch-1 for VPU.
            let ref_point =
                if s.target == "vpu" { s.points[0].2 } else { s.points.last().unwrap().2 };
            println!(
                "{:<6} {}   {}",
                s.target,
                cells.join(" "),
                report::vs_paper(ref_point, s.paper_img_per_watt, 2)
            );
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8bSeries {
    pub target: String,
    /// (batch, img/s); the VPU series is fully *simulated* out to 16
    /// sticks (the simulator has no 8-device limit).
    pub simulated: Vec<(usize, f64)>,
    /// The paper-style linear projection from the 8-stick point
    /// (dashed line in Fig. 8b); empty for the hosts.
    pub projected: Vec<(usize, f64)>,
    pub paper_max: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8b {
    pub scale: Scale,
    pub batches: Vec<usize>,
    pub series: Vec<Fig8bSeries>,
}

/// Run Fig. 8b: batch 1..=16. Where the paper projects beyond its 8
/// physical sticks, we both (a) reproduce the projection and (b) actually
/// simulate the larger fleets.
pub fn fig8b(scale: Scale) -> Fig8b {
    let batches: Vec<usize> = vec![1, 2, 4, 8, 12, 16];
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let images = scale.sweep_images();
    let mut series = Vec::new();
    for (name, paper_max) in [("cpu", PAPER_8B[0].1), ("gpu", PAPER_8B[1].1)] {
        let lat = latency_curve(
            |_| {
                if name == "cpu" {
                    Box::new(IntelCpu::new(model.clone())) as Box<dyn ncsw::TargetDevice>
                } else {
                    Box::new(NvGpu::new(model.clone()))
                }
            },
            &batches,
            images,
        );
        series.push(Fig8bSeries {
            target: name.into(),
            simulated: lat.iter().map(|&(b, ms)| (b, 1000.0 / ms)).collect(),
            projected: vec![],
            paper_max,
        });
    }
    // VPU: simulate every fleet size.
    let lat = latency_curve(|b| Box::new(IntelVpu::new(model.clone(), b)), &batches, images);
    let simulated: Vec<(usize, f64)> = lat.iter().map(|&(b, ms)| (b, 1000.0 / ms)).collect();
    // Paper-style projection: linear continuation of the 8-stick point.
    let at8 = simulated.iter().find(|&&(b, _)| b == 8).expect("batch 8 present").1;
    let projected =
        batches.iter().filter(|&&b| b > 8).map(|&b| (b, at8 / 8.0 * b as f64)).collect();
    series.push(Fig8bSeries {
        target: "vpu".into(),
        simulated,
        projected,
        paper_max: PAPER_8B[2].1,
    });
    Fig8b { scale, batches, series }
}

impl Fig8b {
    pub fn print(&self) {
        report::header(&format!(
            "Fig. 8b — projected inference performance per batch size (scale {})",
            self.scale.name()
        ));
        let hdr: Vec<String> = self.batches.iter().map(|b| format!("{b:>7}")).collect();
        println!("{:<10} {}   max vs paper", "target", hdr.join(" "));
        for s in &self.series {
            let cells: Vec<String> =
                s.simulated.iter().map(|&(_, ips)| format!("{ips:>7.1}")).collect();
            let max = s.simulated.iter().map(|&(_, v)| v).fold(0.0, f64::max);
            println!(
                "{:<10} {}   {}",
                s.target,
                cells.join(" "),
                report::vs_paper(max, s.paper_max, 1)
            );
            if !s.projected.is_empty() {
                let pc: Vec<String> =
                    s.projected.iter().map(|&(b, v)| format!("{b}:{v:.1}")).collect();
                println!("{:<10} (paper-style linear projection: {})", "", pc.join("  "));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8a_vpu_dominates_per_watt() {
        let r = fig8a(Scale::Tiny);
        let by: std::collections::HashMap<&str, &PowerSeries> =
            r.series.iter().map(|s| (s.target.as_str(), s)).collect();
        let vpu1 = by["vpu"].points[0].2;
        let cpu8 = by["cpu"].points.last().unwrap().2;
        let gpu8 = by["gpu"].points.last().unwrap().2;
        // Paper: >3x over GPU, >7x over CPU.
        assert!(vpu1 > 3.0 * gpu8, "vpu {vpu1} vs gpu {gpu8}");
        assert!(vpu1 > 6.0 * cpu8, "vpu {vpu1} vs cpu {cpu8}");
        // Near the paper's 3.97 img/W.
        assert!((vpu1 - 3.97).abs() / 3.97 < 0.08, "vpu img/W {vpu1}");
    }

    #[test]
    fn fig8a_vpu_ratio_stays_flat() {
        let r = fig8a(Scale::Tiny);
        let vpu = r.series.iter().find(|s| s.target == "vpu").unwrap();
        let first = vpu.points[0].2;
        let last = vpu.points.last().unwrap().2;
        // "Increasing the number of chips does not largely affect this
        // ratio, except for a small penalty."
        assert!(last <= first, "per-Watt should not improve with more sticks");
        assert!(last > first * 0.85, "penalty too large: {first} -> {last}");
    }

    #[test]
    fn fig8b_crossovers_match_paper() {
        let r = fig8b(Scale::Tiny);
        let get = |name: &str| r.series.iter().find(|s| s.target == name).unwrap();
        let vpu16 = get("vpu").simulated.last().unwrap().1;
        let cpu16 = get("cpu").simulated.last().unwrap().1;
        let gpu16 = get("gpu").simulated.last().unwrap().1;
        // Paper: 153 img/s ≈ 3.4x CPU, 1.9x GPU.
        assert!((2.8..4.0).contains(&(vpu16 / cpu16)), "vpu/cpu {}", vpu16 / cpu16);
        assert!((1.6..2.2).contains(&(vpu16 / gpu16)), "vpu/gpu {}", vpu16 / gpu16);
        assert!((140.0..165.0).contains(&vpu16), "vpu@16 {vpu16}");
        // Hosts saturate near their paper maxima.
        assert!((42.0..47.0).contains(&cpu16), "cpu@16 {cpu16}");
        assert!((76.0..83.0).contains(&gpu16), "gpu@16 {gpu16}");
    }

    #[test]
    fn fig8b_projection_tracks_simulation() {
        let r = fig8b(Scale::Tiny);
        let vpu = r.series.iter().find(|s| s.target == "vpu").unwrap();
        for &(b, proj) in &vpu.projected {
            let sim = vpu.simulated.iter().find(|&&(bb, _)| bb == b).unwrap().1;
            // The real simulation should track the linear projection to
            // within the USB-contention penalty (<12%).
            assert!((sim - proj).abs() / proj < 0.12, "batch {b}: sim {sim} proj {proj}");
        }
    }
}
