//! E18 — paired A/B policy comparison over the phase-event stream.
//!
//! Runs the observed serving experiment twice on the same seeded
//! workload — identical arrivals, different dispatch policy — exports
//! both Chrome traces, re-parses them through the analyzer (the same
//! path `repro diff` takes on files from disk), and joins the runs
//! request-by-request. Because the simulator is deterministic, every
//! per-request delta is a paired observation of policy A vs policy B on
//! the *same* request, and the verdict is reproducible byte-for-byte —
//! which is what lets CI gate on it.

use crate::report;
use crate::scale::Scale;
use crate::serve_bench::{traced_serve, TRACED_FLEET};
use desim::Duration;
use ncsw_analyze::{diff, Analysis, AttributionTable, DiffConfig, TraceDiff};
use ncsw_serve::DispatchPolicy;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AbExp {
    pub scale: Scale,
    pub fleet: String,
    pub requests: usize,
    pub slo_ms: f64,
    pub baseline: String,
    pub candidate: String,
    /// Latency attribution of each run, from the parsed traces.
    pub baseline_table: AttributionTable,
    pub candidate_table: AttributionTable,
    pub diff: TraceDiff,
}

/// Run E18 with the default pairing: round-robin baseline vs the
/// cost-aware candidate, at the default SLO.
pub fn ab_exp(scale: Scale) -> AbExp {
    ab_exp_with(
        scale,
        Duration::from_millis(500.0),
        DispatchPolicy::RoundRobin,
        DispatchPolicy::CostAware,
    )
}

pub fn ab_exp_with(
    scale: Scale,
    slo: Duration,
    baseline: DispatchPolicy,
    candidate: DispatchPolicy,
) -> AbExp {
    let sample = Duration::from_millis(10.0);
    let a = traced_serve(scale, slo, baseline, sample);
    let b = traced_serve(scale, slo, candidate, sample);
    // Analyze through the exported JSON, not the in-memory log, so the
    // experiment also covers the parser round trip end to end.
    let an_a = Analysis::from_chrome(&a.chrome_json).expect("baseline trace parses");
    let an_b = Analysis::from_chrome(&b.chrome_json).expect("candidate trace parses");
    let d = diff(&an_a, &an_b, &DiffConfig::default());
    AbExp {
        scale,
        fleet: TRACED_FLEET.to_string(),
        requests: a.requests,
        slo_ms: slo.as_millis(),
        baseline: baseline.name().to_string(),
        candidate: candidate.name().to_string(),
        baseline_table: an_a.table,
        candidate_table: an_b.table,
        diff: d,
    }
}

impl AbExp {
    pub fn print(&self) {
        report::header(&format!(
            "E18 — paired A/B diff (fleet {}, {} req, SLO {} ms, scale {}): {} -> {}",
            self.fleet,
            self.requests,
            self.slo_ms,
            self.scale.name(),
            self.baseline,
            self.candidate
        ));
        print!("{}", self.diff.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ab_diff_is_deterministic_and_joins_the_runs() {
        let e = ab_exp(Scale::Tiny);
        // Same seeded arrivals: the paired join must cover requests.
        assert!(e.diff.joined > 0, "{:?}", e.diff);
        // The verdict artifact CI gates on is byte-identical across
        // repeats of the same comparison.
        let again = ab_exp(Scale::Tiny);
        assert_eq!(
            serde_json::to_string(&e.diff).unwrap(),
            serde_json::to_string(&again.diff).unwrap()
        );
    }

    #[test]
    fn same_policy_ab_diff_is_all_neutral() {
        let e = ab_exp_with(
            Scale::Tiny,
            Duration::from_millis(500.0),
            DispatchPolicy::CostAware,
            DispatchPolicy::CostAware,
        );
        assert!(!e.diff.regression, "{:?}", e.diff);
        assert_eq!(e.diff.only_a, 0);
        assert_eq!(e.diff.only_b, 0);
        for m in e.diff.metrics.iter().chain(&e.diff.segments) {
            assert_eq!(m.delta, 0.0, "{m:?}");
        }
        assert_eq!(e.diff.per_request.improved, 0);
        assert_eq!(e.diff.per_request.regressed, 0);
    }
}
