//! E17 — failover: tail latency and SLO attainment vs injected
//! failures.
//!
//! The paper's pitch for the NCS is redundancy: sticks are cheap enough
//! to deploy several, so losing one mid-run should cost a latency blip,
//! not an outage. This experiment quantifies that claim on a 4-VPU
//! fleet: sweep the number of mid-run stick unplugs (each reconnecting
//! after a while), under plain `Reject` admission vs `DeadlineAware`
//! shedding, and report p99, SLO attainment, MTTR, and the retry
//! overhead the failover path added. The paper has no such figure —
//! this is the robustness extension of E15 on the same calibrated
//! devices.

use crate::report;
use crate::scale::Scale;
use desim::Duration;
use ncsw::ModelBundle;
use ncsw_analyze::Analysis;
use ncsw_faults::{FaultEvent, FaultPlan};
use ncsw_serve::{
    serve_observed, ArrivalProcess, FleetSpec, ObsConfig, ServeConfig, ServeReport, ShedPolicy,
};
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

/// Four independent single-stick VPU workers — enough redundancy that
/// one loss is absorbable and three losses clearly are not.
pub const FAILOVER_FLEET: &str = "vpu+vpu+vpu+vpu";

/// Offered load as a fraction of nameplate capacity: high enough that
/// losing workers bites, low enough that the healthy fleet attains the
/// SLO.
pub const FAILOVER_LOAD_FRACTION: f64 = 0.7;

/// Numbers of injected mid-run failures the sweep compares.
pub const FAILURE_COUNTS: [usize; 4] = [0, 1, 2, 3];

/// One (failure count, shed policy) cell of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailoverPoint {
    pub failures: usize,
    pub shed_policy: String,
    /// Fraction of *generated* requests that completed within the SLO.
    pub slo_attainment: f64,
    /// p99 latency of completions overlapping an outage window, derived
    /// by the trace analyzer from the run's phase-event stream (the
    /// test cross-checks it against `report.faults`).
    pub p99_during_outage_ms: f64,
    pub report: ServeReport,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailoverExp {
    pub scale: Scale,
    pub fleet: String,
    pub requests: usize,
    pub offered_rps: f64,
    pub slo_ms: f64,
    pub points: Vec<FailoverPoint>,
}

fn requests(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 200,
        Scale::Small => 1_200,
        Scale::Paper => 6_000,
    }
}

/// Unplug `k` distinct workers mid-run, staggered across the expected
/// horizon, each reconnecting after 12% of it — so outages overlap at
/// k >= 2 and the fleet is briefly down to half capacity.
pub fn staggered_unplugs(k: usize, horizon_secs: f64) -> FaultPlan {
    let mut plan = FaultPlan::empty();
    for i in 0..k {
        let at = horizon_secs * (0.20 + 0.10 * i as f64);
        plan.push(
            Some(i),
            FaultEvent::StickUnplug {
                at: Duration::from_secs(at),
                reconnect_after: Some(Duration::from_secs(horizon_secs * 0.12)),
            },
        );
    }
    plan
}

pub fn failover_exp(scale: Scale) -> FailoverExp {
    failover_exp_with(scale, Duration::from_millis(500.0))
}

pub fn failover_exp_with(scale: Scale, slo: Duration) -> FailoverExp {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let n = requests(scale);
    let spec = FleetSpec::parse(FAILOVER_FLEET).expect("valid fleet spec");
    let probe = spec.build(&model);
    let capacity_rps = spec.capacity_rps(&probe);
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);
    let rate = capacity_rps * FAILOVER_LOAD_FRACTION;
    let horizon_secs = n as f64 / rate;

    let mut points = Vec::new();
    for &k in &FAILURE_COUNTS {
        for shed in [ShedPolicy::Reject, ShedPolicy::DeadlineAware] {
            let cfg = ServeConfig { max_batch, slo, shed, ..ServeConfig::default() };
            let mut workers = spec.build(&model);
            if k > 0 {
                workers = staggered_unplugs(k, horizon_secs).apply(workers, cfg.seed);
            }
            let load = ArrivalProcess::Poisson { rate_per_sec: rate };
            // Observed run: the phase-event stream feeds the analyzer,
            // which attributes the tail during failover from the trace
            // alone (no access to the server's internal records).
            let obs_cfg =
                ObsConfig { sample_every: Duration::from_millis(10.0), ..ObsConfig::default() };
            let (outcome, obs) = serve_observed(&mut workers, &cfg, &load, n, &obs_cfg);
            let analysis = Analysis::of(&obs.events);
            let good = outcome.completed.iter().filter(|r| r.latency() <= slo).count();
            points.push(FailoverPoint {
                failures: k,
                shed_policy: shed.name().to_string(),
                slo_attainment: good as f64 / n.max(1) as f64,
                p99_during_outage_ms: analysis.p99_during_outages_ms(),
                report: ServeReport::of(&outcome, &cfg),
            });
        }
    }
    FailoverExp {
        scale,
        fleet: FAILOVER_FLEET.to_string(),
        requests: n,
        offered_rps: rate,
        slo_ms: slo.as_millis(),
        points,
    }
}

impl FailoverExp {
    pub fn print(&self) {
        report::header(&format!(
            "E17 — failover sweep (fleet {}, {} req at {:.1} req/s, p99 SLO {} ms, scale {})",
            self.fleet,
            self.requests,
            self.offered_rps,
            self.slo_ms,
            self.scale.name()
        ));
        println!(
            "{:>5} {:>15} {:>8} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9}",
            "fails",
            "shed policy",
            "p99 ms",
            "p99@fail",
            "attain%",
            "shed%",
            "retries/r",
            "mttr ms",
            "outages"
        );
        for p in &self.points {
            let r = &p.report;
            println!(
                "{:>5} {:>15} {:>8.1} {:>9.1} {:>8.1} {:>8.1} {:>9.3} {:>9.1} {:>9}",
                p.failures,
                p.shed_policy,
                r.latency.p99_ms,
                p.p99_during_outage_ms,
                p.slo_attainment * 100.0,
                r.shed_rate * 100.0,
                r.faults.retries_per_request,
                r.faults.mttr_ms,
                r.faults.outages
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_failover_sweep_is_conservative_and_reports_faults() {
        let e = failover_exp(Scale::Tiny);
        assert_eq!(e.points.len(), FAILURE_COUNTS.len() * 2);
        for p in &e.points {
            let r = &p.report;
            // Nothing silently lost: every generated request completed
            // or was shed with a recorded cause.
            assert_eq!(r.completed + r.shed, e.requests, "{p:?}");
            // The analyzer's trace-derived tail-during-failover must
            // agree exactly with the server's own fault report — two
            // independent paths to the same number.
            assert!(
                (p.p99_during_outage_ms - r.faults.p99_during_failover_ms).abs() < 1e-9,
                "analyzer {} vs report {}: {p:?}",
                p.p99_during_outage_ms,
                r.faults.p99_during_failover_ms
            );
            if p.failures == 0 {
                assert_eq!(r.faults.injected, 0, "healthy run injected faults: {p:?}");
                assert_eq!(r.faults.outages, 0);
            }
        }
        // With failures injected, the machinery must actually engage.
        let worst = e.points.iter().find(|p| p.failures == 3 && p.shed_policy == "reject").unwrap();
        assert!(worst.report.faults.injected > 0, "{worst:?}");
        assert!(worst.report.faults.retries > 0, "{worst:?}");
        assert!(worst.report.faults.outages > 0, "{worst:?}");
        assert!(worst.report.faults.mttr_ms > 0.0, "{worst:?}");
        // Failures cost tail latency or goodput relative to healthy.
        let healthy =
            e.points.iter().find(|p| p.failures == 0 && p.shed_policy == "reject").unwrap();
        assert!(
            worst.slo_attainment <= healthy.slo_attainment,
            "attainment should not improve under failures: {} vs {}",
            worst.slo_attainment,
            healthy.slo_attainment
        );
    }
}
