//! E14 — the paper's §VII comparison, carried out (extension).
//!
//! "We expect to compare the VPU with highly-specialized accelerator
//! chips, such as the NVIDIA Volta V100 architecture." This experiment
//! lines up the multi-VPU configuration against the V100 and the Xeon
//! Phi KNL (the related-work co-processor), at each device's favourable
//! batch size, in both absolute throughput and Eq. (1) throughput/W.

use crate::report;
use crate::scale::Scale;
use hostsim::accel::{AccelConfig, AccelDevice};
use ncsw::multivpu::{MultiVpu, MultiVpuConfig};
use ncsw::{IntelCpu, ModelBundle, NvGpu, TargetDevice};
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FutureWorkRow {
    pub device: String,
    pub batch: usize,
    pub img_per_sec: f64,
    pub tdp_w: f64,
    pub img_per_watt: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FutureWork {
    pub rows: Vec<FutureWorkRow>,
}

pub fn future_work(scale: Scale) -> FutureWork {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let images = scale.sweep_images();
    let mut rows = Vec::new();

    // The paper's own devices at their measured operating points.
    let mut cpu = IntelCpu::new(model.clone());
    let r = cpu.run_throughput(images.max(8), 8);
    rows.push(FutureWorkRow {
        device: "xeon-e5".into(),
        batch: 8,
        img_per_sec: r.images_per_sec(),
        tdp_w: 80.0,
        img_per_watt: r.images_per_watt(80.0),
    });
    let mut gpu = NvGpu::new(model.clone());
    let r = gpu.run_throughput(images.max(8), 8);
    rows.push(FutureWorkRow {
        device: "k4000".into(),
        batch: 8,
        img_per_sec: r.images_per_sec(),
        tdp_w: 80.0,
        img_per_watt: r.images_per_watt(80.0),
    });

    // 8 sticks (the paper's testbed) and a 32-stick "blade" thought
    // experiment at the V100's power class.
    for sticks in [8usize, 32] {
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(sticks), &model);
        let run = mv.run_pipeline((images / 2).max(sticks * 3));
        let tdp = 2.5 * sticks as f64;
        rows.push(FutureWorkRow {
            device: format!("{sticks}x ncs"),
            batch: sticks,
            img_per_sec: run.images_per_sec(),
            tdp_w: tdp,
            img_per_watt: run.images_per_sec() / tdp,
        });
    }

    // §VII comparators.
    for (cfg, batch) in [(AccelConfig::xeon_phi_knl(), 8usize), (AccelConfig::v100(), 32)] {
        let mut dev = AccelDevice::new(cfg.clone());
        let cost = &model.cost32;
        let mut total = desim::Duration::ZERO;
        let mut done = 0usize;
        let mut t = desim::SimTime::ZERO;
        while done < images.max(batch) {
            let run = dev.run_batch(cost, batch, t);
            total += run.duration();
            t = run.end;
            done += batch;
        }
        let ips = done as f64 / total.as_secs();
        rows.push(FutureWorkRow {
            device: cfg.name.clone(),
            batch,
            img_per_sec: ips,
            tdp_w: cfg.tdp_w,
            img_per_watt: ips / cfg.tdp_w,
        });
    }
    FutureWork { rows }
}

impl FutureWork {
    pub fn print(&self) {
        report::header("E14 — §VII future-work comparison: VPU fleets vs V100 / KNL");
        println!("{:<10} {:>6} {:>10} {:>8} {:>9}", "device", "batch", "img/s", "TDP W", "img/W");
        for r in &self.rows {
            println!(
                "{:<10} {:>6} {:>10.1} {:>8.0} {:>9.2}",
                r.device, r.batch, r.img_per_sec, r.tdp_w, r.img_per_watt
            );
        }
        println!(
            "\nVolta wins both axes outright — but the stick fleet holds ~2/3 of\n\
             its img/W at 1/15 the power class, and beats the KNL co-processor\n\
             on both. The VPU's niche is node-level low-power offload, exactly\n\
             as the paper frames it."
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_wins_throughput_vpu_holds_per_watt() {
        let f = future_work(Scale::Tiny);
        let get = |n: &str| f.rows.iter().find(|r| r.device == n).unwrap();
        let v100 = get("v100");
        let ncs8 = get("8x ncs");
        let knl = get("knl");
        // Absolute: V100 >> 8 sticks.
        assert!(v100.img_per_sec > 8.0 * ncs8.img_per_sec);
        // Eq. (1): the stick fleet stays within ~2x of the V100 per Watt
        // and beats KNL and the paper's hosts outright.
        assert!(ncs8.img_per_watt > 0.5 * v100.img_per_watt);
        assert!(ncs8.img_per_watt > knl.img_per_watt);
        assert!(ncs8.img_per_watt > get("xeon-e5").img_per_watt * 6.0);
        // Fleet scaling continues at 32 sticks.
        assert!(get("32x ncs").img_per_sec > 3.5 * ncs8.img_per_sec);
    }
}
