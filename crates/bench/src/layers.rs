//! E10 — per-layer GoogLeNet profile on one stick, mirroring the
//! NCSDK's `mvncGetGraphOption(..., TIME_TAKEN)` report.

use crate::report;
use desim::SimTime;
use myriad2::{Myriad2, Myriad2Config};
use serde::{Deserialize, Serialize};
use vpu_nn::cost::NetworkCost;
use vpu_num::f16;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerRow {
    pub name: String,
    pub mnemonic: String,
    pub ms: f64,
    pub percent: f64,
    pub macs: u64,
    pub on_sipp: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerProfile {
    pub network: String,
    pub total_ms: f64,
    pub rows: Vec<LayerRow>,
}

/// Profile one full-GoogLeNet inference layer by layer.
pub fn layers() -> LayerProfile {
    let cost = NetworkCost::of::<f16>(&vpu_nn::googlenet::full());
    let mut chip = Myriad2::new(Myriad2Config::default());
    let run = chip.run_cost(&cost, SimTime::ZERO);
    let total_ms = run.duration().as_millis();
    let rows = run
        .layers
        .iter()
        .zip(&cost.layers)
        .filter(|(t, _)| t.duration().nanos() > 0)
        .map(|(t, c)| LayerRow {
            name: t.name.clone(),
            mnemonic: t.mnemonic.clone(),
            ms: t.duration().as_millis(),
            percent: t.duration().as_millis() / total_ms * 100.0,
            macs: c.macs,
            on_sipp: t.on_sipp,
        })
        .collect();
    LayerProfile { network: cost.network.clone(), total_ms, rows }
}

impl LayerProfile {
    pub fn print(&self) {
        report::header(&format!(
            "E10 — per-layer profile, one inference of {} ({:.1} ms total, NCSDK TIME_TAKEN style)",
            self.network, self.total_ms
        ));
        println!("{:<28} {:>8} {:>7} {:>6} {:>12}", "layer", "type", "ms", "%", "MMACs");
        let mut sorted: Vec<&LayerRow> = self.rows.iter().collect();
        sorted.sort_by(|a, b| b.ms.partial_cmp(&a.ms).unwrap());
        for r in sorted.iter().take(20) {
            println!(
                "{:<28} {:>8} {:>7.2} {:>5.1}% {:>12.1}{}",
                r.name,
                r.mnemonic,
                r.ms,
                r.percent,
                r.macs as f64 / 1e6,
                if r.on_sipp { "  (SIPP)" } else { "" }
            );
        }
        println!("... ({} layers total)", self.rows.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_covers_the_network() {
        let p = layers();
        assert!((90.0..105.0).contains(&p.total_ms), "total {}", p.total_ms);
        // Percentages sum to ~100 (layers are sequential).
        let sum: f64 = p.rows.iter().map(|r| r.percent).sum();
        assert!((97.0..101.0).contains(&sum), "percent sum {sum}");
        // The expensive layers are the big convs.
        let top = p.rows.iter().max_by(|a, b| a.ms.partial_cmp(&b.ms).unwrap()).unwrap();
        assert_eq!(top.mnemonic, "conv");
        assert!(top.macs > 100_000_000);
    }
}
