//! Ablations of design choices the simulator exposes (DESIGN.md A1–A3).

use crate::report;
use crate::scale::Scale;
use desim::SimTime;
use ilsvrc_sim::calibrate::calibrated_set;
use ilsvrc_sim::DatasetConfig;
use myriad2::{Myriad2, Myriad2Config};
use ncs_platform::Topology;
use ncsw::metrics::confidence_diff;
use ncsw::multivpu::{MultiVpu, MultiVpuConfig};
use ncsw::runner::{predictions_fp16, predictions_fp32};
use ncsw::{ImageFolder, ModelBundle};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vpu_nn::cost::NetworkCost;
use vpu_num::f16;
use vpu_tensor::kernels::gemm::AccumMode;

/// A1 — FP16 accumulate-in-FP16 (the Myriad's pure path) vs
/// accumulate-in-FP32 (its mixed path): accuracy + confidence drift.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccumAblation {
    pub images: usize,
    pub fp32_error: f64,
    pub fp16_native_error: f64,
    pub fp16_widened_error: f64,
    pub native_conf_diff: f64,
    pub widened_conf_diff: f64,
}

pub fn ablation_accum(scale: Scale) -> AccumAblation {
    let variant = scale.accuracy_variant();
    let spec = Arc::new(variant.build_with_classes(scale.accuracy_classes()));
    let per_subset = scale.accuracy_images_per_subset();
    let mut cfg = DatasetConfig::ilsvrc_like(
        scale.accuracy_classes(),
        per_subset * 5,
        variant.input_shape(),
        vpu_num::rng::DEFAULT_SEED,
    );
    cfg.distractor_mix = 0.10;
    let (set, weights, _cal) = calibrated_set(&spec, cfg, 0.32, scale.calibration_probe());
    let set = Arc::new(set);
    let folder = ImageFolder::new(set, 0);

    let native =
        ModelBundle::new(spec.clone(), (*Arc::new(weights.clone())).clone(), AccumMode::Native);
    let widened = ModelBundle::new(spec, weights, AccumMode::Widened);

    let p32 = predictions_fp32(&native, &folder);
    let p16n = predictions_fp16(&native, &folder);
    let p16w = predictions_fp16(&widened, &folder);
    let err = |p: &[ncsw::metrics::Prediction]| {
        p.iter().filter(|x| !x.correct()).count() as f64 / p.len() as f64
    };
    AccumAblation {
        images: folder_len(&folder),
        fp32_error: err(&p32),
        fp16_native_error: err(&p16n),
        fp16_widened_error: err(&p16w),
        native_conf_diff: confidence_diff(&p32, &p16n).mean_abs_diff,
        widened_conf_diff: confidence_diff(&p32, &p16w).mean_abs_diff,
    }
}

fn folder_len(f: &ImageFolder) -> usize {
    use ncsw::SourceImage;
    f.len()
}

impl AccumAblation {
    pub fn print(&self) {
        report::header("A1 — FP16 accumulation mode ablation (one subset)");
        println!("fp32 reference error:        {:.4}", self.fp32_error);
        println!(
            "fp16 native-accumulate:      err {:.4}, |Δconf| {:.5}",
            self.fp16_native_error, self.native_conf_diff
        );
        println!(
            "fp16 fp32-accumulate:        err {:.4}, |Δconf| {:.5}",
            self.fp16_widened_error, self.widened_conf_diff
        );
        println!("(widened accumulation should sit closer to the fp32 reference)");
    }
}

/// A2 — USB topology: the paper's 2-root + 2-hub testbed vs all sticks
/// on root ports vs all sticks crammed behind one hub.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UsbAblation {
    pub devices: usize,
    pub images: usize,
    /// (label, img/s).
    pub rows: Vec<(String, f64)>,
}

pub fn ablation_usb(scale: Scale) -> UsbAblation {
    let model = ModelBundle::googlenet_untrained(vpu_nn::googlenet::Variant::Full, 1);
    let devices = 8;
    let images = scale.sweep_images().max(devices * 4);
    let mut rows = Vec::new();
    for (label, topo) in [
        ("all on root ports".to_string(), Topology::AllRoot),
        ("paper testbed (2 root + 2 hubs)".to_string(), Topology::PaperTestbed),
        (
            "all behind one hub".to_string(),
            Topology::Custom(vec![ncs_platform::UsbPort::Hub(0); devices]),
        ),
    ] {
        let mut cfg = MultiVpuConfig::paper_testbed(devices);
        cfg.topology = topo;
        let mut mv = MultiVpu::new(cfg, &model);
        let r = mv.run_pipeline(images);
        rows.push((label, r.images_per_sec()));
    }
    UsbAblation { devices, images, rows }
}

impl UsbAblation {
    pub fn print(&self) {
        report::header(&format!(
            "A2 — USB topology ablation ({} sticks, {} images)",
            self.devices, self.images
        ));
        for (label, ips) in &self.rows {
            println!("{label:<34} {ips:>7.1} img/s");
        }
    }
}

/// A3 — SHAVE count sweep within one chip.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShaveAblation {
    /// (shaves, ms per inference, img/s, chip avg W).
    pub rows: Vec<(usize, f64, f64, f64)>,
}

pub fn ablation_shave() -> ShaveAblation {
    let cost = NetworkCost::of::<f16>(&vpu_nn::googlenet::full());
    let rows = [1usize, 2, 4, 6, 8, 12]
        .iter()
        .map(|&s| {
            let mut chip = Myriad2::new(Myriad2Config::default().with_shaves(s));
            let run = chip.run_cost(&cost, SimTime::ZERO);
            let ms = run.duration().as_millis();
            let watts = chip.power_model().avg_power(&run.activity);
            (s, ms, 1000.0 / ms, watts)
        })
        .collect();
    ShaveAblation { rows }
}

impl ShaveAblation {
    pub fn print(&self) {
        report::header("A3 — SHAVE count sweep (one chip, full GoogLeNet)");
        println!("{:>7} {:>10} {:>9} {:>8}", "shaves", "ms/inf", "img/s", "avg W");
        for &(s, ms, ips, w) in &self.rows {
            println!("{s:>7} {ms:>10.1} {ips:>9.2} {w:>8.3}");
        }
    }
}

/// A4 — USB transient-fault injection: throughput of an 8-stick fleet as
/// the per-transfer error rate grows (NCS sticks famously hit retries
/// under hub contention; the deep on-device time makes the pipeline very
/// tolerant).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultAblation {
    pub devices: usize,
    pub images: usize,
    /// (error rate, img/s, injected errors).
    pub rows: Vec<(f64, f64, u64)>,
}

pub fn ablation_faults(scale: Scale) -> FaultAblation {
    let model = ModelBundle::googlenet_untrained(vpu_nn::googlenet::Variant::Full, 1);
    let devices = 8;
    let images = scale.sweep_images().max(devices * 4);
    let mut rows = Vec::new();
    for rate in [0.0f64, 0.01, 0.05, 0.20] {
        let mut cfg = MultiVpuConfig::paper_testbed(devices);
        cfg.usb.error_rate = rate;
        let mut mv = MultiVpu::new(cfg, &model);
        let r = mv.run_pipeline(images);
        let errors = mv.api().fleet().bus.errors();
        rows.push((rate, r.images_per_sec(), errors));
    }
    FaultAblation { devices, images, rows }
}

impl FaultAblation {
    pub fn print(&self) {
        report::header(&format!(
            "A4 — USB transient-fault ablation ({} sticks, {} images)",
            self.devices, self.images
        ));
        println!("{:>11} {:>9} {:>8}", "error rate", "img/s", "retries");
        for &(rate, ips, errs) in &self.rows {
            println!("{rate:>10.0}% {ips:>9.1} {errs:>8}", rate = rate * 100.0);
        }
    }
}

/// A5 — double-buffered weight DMA (prefetch): per-network latency with
/// and without streaming layer N+1's weights during layer N's compute.
/// AlexNet (DDR-bound FC weights) benefits most; GoogLeNet barely moves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefetchAblation {
    /// (network, ms without prefetch, ms with prefetch, speedup).
    pub rows: Vec<(String, f64, f64, f64)>,
}

pub fn ablation_prefetch() -> PrefetchAblation {
    let specs = [
        vpu_nn::googlenet::full(),
        vpu_nn::zoo::alexnet_one_tower(),
        vpu_nn::zoo::squeezenet_v10(),
    ];
    let rows = specs
        .iter()
        .map(|spec| {
            let cost = NetworkCost::of::<f16>(spec);
            let mut plain = Myriad2::new(Myriad2Config::default());
            let mut pf = Myriad2::new(Myriad2Config::default().with_prefetch());
            let a = plain.run_cost(&cost, SimTime::ZERO).duration().as_millis();
            let b = pf.run_cost(&cost, SimTime::ZERO).duration().as_millis();
            (cost.network.clone(), a, b, a / b)
        })
        .collect();
    PrefetchAblation { rows }
}

impl PrefetchAblation {
    pub fn print(&self) {
        report::header("A5 — pipelined weight-DMA ablation (idealized deep staging)");
        println!("{:<20} {:>10} {:>10} {:>9}", "network", "no-pf ms", "prefetch", "speedup");
        for (name, a, b, s) in &self.rows {
            println!("{name:<20} {a:>10.1} {b:>10.1} {s:>8.2}x");
        }
        println!("(the NCSDK v1 the paper used did not prefetch; the calibration assumes off)");
    }
}

/// A6 — blob batching vs multi-stick batching (paper §III: NCSw's
/// multi-VPU batch "differs from the traditional Caffe batched
/// execution, which resizes the input blob layer"). A resized blob on a
/// *single* stick amortizes per-layer dispatch and weight streaming but
/// still serializes all the arithmetic; N sticks scale it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlobBatchAblation {
    /// (batch, blob-batch ms/img on one stick, multi-stick ms/img).
    pub rows: Vec<(usize, f64, f64)>,
}

/// Scale a cost profile to a resized input blob: every activation and
/// op count grows by `batch`; the weights stream once per forward pass.
fn blob_scaled(cost: &NetworkCost, batch: usize) -> NetworkCost {
    let mut c = cost.clone();
    for l in &mut c.layers {
        l.macs *= batch as u64;
        l.aux_ops *= batch as u64;
        l.in_bytes *= batch as u64;
        l.out_bytes *= batch as u64;
        l.out_shape = l.out_shape.with_batch(batch);
    }
    c.total_macs *= batch as u64;
    c.total_aux_ops *= batch as u64;
    c
}

pub fn ablation_blob_batch() -> BlobBatchAblation {
    let model = ModelBundle::googlenet_untrained(vpu_nn::googlenet::Variant::Full, 1);
    let cost = &model.cost16;
    let mut rows = Vec::new();
    for batch in [1usize, 2, 4, 8] {
        // Blob batching: one stick runs a B-sized blob per dispatch.
        let mut chip = Myriad2::new(Myriad2Config::default());
        let run = chip.run_cost(&blob_scaled(cost, batch), SimTime::ZERO);
        let blob_ms = run.duration().as_millis() / batch as f64;
        // Multi-stick batching: the paper's approach.
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(batch), &model);
        let multi_ms = mv.run_pipeline(batch * 8).per_image().as_millis();
        rows.push((batch, blob_ms, multi_ms));
    }
    BlobBatchAblation { rows }
}

impl BlobBatchAblation {
    pub fn print(&self) {
        report::header("A6 — blob batching (1 stick) vs multi-stick batching (paper §III)");
        println!("{:>6} {:>14} {:>14} {:>10}", "batch", "blob ms/img", "multi ms/img", "multi adv");
        for &(b, blob, multi) in &self.rows {
            println!("{b:>6} {blob:>14.1} {multi:>14.1} {:>9.2}x", blob / multi);
        }
        println!(
            "(resizing the blob only amortizes dispatch + weight streaming; the
 arithmetic still serializes on one chip — which is why NCSw batches
 across sticks instead)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_ablation_degrades_gracefully() {
        let a = ablation_faults(Scale::Tiny);
        let clean = a.rows[0].1;
        let worst = a.rows.last().unwrap().1;
        assert_eq!(a.rows[0].2, 0, "no retries at rate 0");
        assert!(a.rows.last().unwrap().2 > 0, "retries expected at 20%");
        // Transfers are ~1% of per-inference time: even 20% retry rate
        // should cost only a few percent of throughput.
        assert!(worst <= clean);
        assert!(worst > clean * 0.90, "too fragile: {clean} -> {worst}");
    }

    #[test]
    fn blob_batching_barely_helps_but_multi_stick_scales() {
        let a = ablation_blob_batch();
        let (b1_blob, b1_multi) = (a.rows[0].1, a.rows[0].2);
        let (b8_blob, b8_multi) = (a.rows[3].1, a.rows[3].2);
        // Blob batching gains only the amortized overheads (<15%).
        assert!(b8_blob > b1_blob * 0.85, "blob batch gained too much: {b1_blob} -> {b8_blob}");
        // Multi-stick batching approaches 8x.
        assert!(b8_multi < b1_multi / 6.5, "multi-stick {b1_multi} -> {b8_multi}");
        // At batch 8 the paper's approach wins by >6x.
        assert!(b8_blob / b8_multi > 6.0);
    }

    #[test]
    fn prefetch_helps_ddr_bound_networks_most() {
        let a = ablation_prefetch();
        let get = |n: &str| a.rows.iter().find(|r| r.0 == n).unwrap();
        let gl = get("bvlc_googlenet");
        let ax = get("alexnet_one_tower");
        // Prefetch never hurts.
        for (_, plain, pf, _) in &a.rows {
            assert!(pf <= plain);
        }
        // AlexNet (DDR-bound) gains far more than GoogLeNet.
        assert!(ax.3 > gl.3 + 0.05, "alexnet {} vs googlenet {}", ax.3, gl.3);
        assert!(gl.3 < 1.1, "GoogLeNet is compute-bound; speedup {}", gl.3);
    }

    #[test]
    fn accum_ablation_orders_correctly() {
        let a = ablation_accum(Scale::Tiny);
        // FP32-accumulate FP16 is numerically at least as close to the
        // FP32 reference as native FP16.
        assert!(
            a.widened_conf_diff <= a.native_conf_diff + 1e-6,
            "widened {} vs native {}",
            a.widened_conf_diff,
            a.native_conf_diff
        );
        assert!(a.native_conf_diff > 0.0);
        // All error rates in the same band.
        for e in [a.fp32_error, a.fp16_native_error, a.fp16_widened_error] {
            assert!((0.0..=0.7).contains(&e), "error {e}");
        }
    }

    #[test]
    fn usb_ablation_orders_topologies() {
        let a = ablation_usb(Scale::Tiny);
        assert_eq!(a.rows.len(), 3);
        let root = a.rows[0].1;
        let paper = a.rows[1].1;
        let hub = a.rows[2].1;
        assert!(root >= paper * 0.99, "root {root} vs paper {paper}");
        assert!(paper >= hub * 0.99, "paper {paper} vs one-hub {hub}");
    }

    #[test]
    fn shave_scaling_is_near_linear_then_saturates() {
        let a = ablation_shave();
        let ips: Vec<f64> = a.rows.iter().map(|r| r.2).collect();
        // Monotone in SHAVE count.
        for w in ips.windows(2) {
            assert!(w[1] > w[0]);
        }
        // 1 -> 12 SHAVEs gives close to 12x on the compute-bound network,
        // dampened by dispatch overheads and SIPP-offloaded layers.
        let speedup = ips.last().unwrap() / ips[0];
        assert!((8.0..12.5).contains(&speedup), "speedup {speedup}");
        // Power grows with active SHAVEs.
        assert!(a.rows.last().unwrap().3 > a.rows[0].3);
    }
}
