//! E19 — online img/W under load vs the paper's offline Eq. 1.
//!
//! Fig. 8a computes throughput-per-Watt from a closed-loop batch sweep
//! and a nameplate TDP — a device that is always busy and always charged
//! its peak power. An online fleet is neither: it idles between
//! arrivals (gated islands still draw power) and it burns energy on
//! failed attempts. This experiment sweeps offered load and compares,
//! per fleet:
//!
//! - **img/W (measured)** — completions over *integrated* device energy
//!   from the island power models ([`ncsw_obs::EnergyMeter`]),
//! - **img/W (Eq. 1)** — the paper's accounting: goodput over summed
//!   nameplate TDP,
//! - the **energy cost of headroom** — the idle share of fleet energy,
//!   which Eq. 1 cannot see and which dominates at low load.

use crate::fig8::PAPER_8A;
use crate::report;
use crate::scale::Scale;
use desim::Duration;
use ncsw::ModelBundle;
use ncsw_serve::{serve, ArrivalProcess, DispatchPolicy, FleetSpec, ServeConfig, ServeReport};
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

/// Fleets compared (same specs as E15).
pub const FLEETS: [&str; 3] = ["1xvpu", "8xvpu", "cpu+gpu+8xvpu"];

/// Offered load fractions of estimated capacity.
pub const LOAD_FRACTIONS: [f64; 4] = [0.2, 0.5, 0.8, 1.0];

/// One load point's energy accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyPoint {
    pub offered_frac: f64,
    pub offered_rps: f64,
    pub goodput_rps: f64,
    /// Completions over integrated joules (the measured truth).
    pub img_per_watt: f64,
    /// The paper's Eq. 1: goodput over summed nameplate TDP.
    pub img_per_watt_tdp: f64,
    pub j_per_inference: f64,
    /// Idle (gated) energy as a share of fleet energy — the cost of
    /// headroom.
    pub idle_share: f64,
    pub wasted_j: f64,
    pub fleet_j: f64,
}

/// One fleet's energy sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyFleet {
    pub fleet: String,
    pub capacity_rps: f64,
    /// The offline Fig. 8a reference for this fleet's device class
    /// (img/W at the paper's quoted batch point), where one exists.
    pub offline_img_per_watt: Option<f64>,
    pub points: Vec<EnergyPoint>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyExp {
    pub scale: Scale,
    pub requests_per_point: usize,
    pub slo_ms: f64,
    pub fleets: Vec<EnergyFleet>,
}

fn requests_per_point(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 160,
        Scale::Small => 1_500,
        Scale::Paper => 10_000,
    }
}

/// Run E19 with the default SLO (500 ms) and cost-aware dispatch.
pub fn energy_exp(scale: Scale) -> EnergyExp {
    energy_exp_with(scale, Duration::from_millis(500.0))
}

pub fn energy_exp_with(scale: Scale, slo: Duration) -> EnergyExp {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let n = requests_per_point(scale);
    let mut fleets = Vec::new();
    for fleet in FLEETS {
        let spec = FleetSpec::parse(fleet).expect("valid fleet spec");
        let probe = spec.build(&model);
        let capacity_rps = spec.capacity_rps(&probe);
        let max_batch = spec.preferred_batch(&probe);
        drop(probe);
        let offline_img_per_watt = match fleet {
            // Fig. 8a charges one stick TDP per active VPU, so its
            // ratio is per-stick and applies to both VPU fleet sizes.
            "1xvpu" | "8xvpu" => Some(PAPER_8A[2].1),
            _ => None,
        };

        let mut points = Vec::new();
        for &frac in &LOAD_FRACTIONS {
            let cfg = ServeConfig {
                max_batch,
                slo,
                policy: DispatchPolicy::CostAware,
                ..ServeConfig::default()
            };
            let mut workers = spec.build(&model);
            let rate = capacity_rps * frac;
            let load = ArrivalProcess::Poisson { rate_per_sec: rate };
            let outcome = serve(&mut workers, &cfg, &load, n);
            let r = ServeReport::of(&outcome, &cfg);
            let e = &r.energy;
            points.push(EnergyPoint {
                offered_frac: frac,
                offered_rps: rate,
                goodput_rps: r.goodput_rps,
                img_per_watt: e.img_per_watt,
                img_per_watt_tdp: e.img_per_watt_tdp,
                j_per_inference: e.j_per_inference,
                idle_share: if e.fleet_j > 0.0 { e.idle_j / e.fleet_j } else { 0.0 },
                wasted_j: e.wasted_j,
                fleet_j: e.fleet_j,
            });
        }
        fleets.push(EnergyFleet {
            fleet: fleet.to_string(),
            capacity_rps,
            offline_img_per_watt,
            points,
        });
    }
    EnergyExp { scale, requests_per_point: n, slo_ms: slo.as_millis(), fleets }
}

impl EnergyExp {
    pub fn print(&self) {
        report::header(&format!(
            "E19 — online img/W vs offline Eq. 1 ({} req/point, SLO {} ms, scale {})",
            self.requests_per_point,
            self.slo_ms,
            self.scale.name()
        ));
        for f in &self.fleets {
            let offline = f
                .offline_img_per_watt
                .map(|v| format!("Fig. 8a offline ref {v:.2} img/W"))
                .unwrap_or_else(|| "no single-device Fig. 8a ref".to_string());
            println!(
                "\nfleet {}  (capacity est {:.1} req/s; {})",
                f.fleet, f.capacity_rps, offline
            );
            println!(
                "{:>5} {:>9} {:>11} {:>11} {:>9} {:>7} {:>9}",
                "load", "goodput", "img/W meas", "img/W Eq.1", "J/inf", "idle%", "wasted J"
            );
            for p in &f.points {
                println!(
                    "{:>5.2} {:>9.1} {:>11.2} {:>11.2} {:>9.3} {:>7.1} {:>9.3}",
                    p.offered_frac,
                    p.goodput_rps,
                    p.img_per_watt,
                    p.img_per_watt_tdp,
                    p.j_per_inference,
                    p.idle_share * 100.0,
                    p.wasted_j
                );
            }
            if let (Some(lo), Some(hi)) = (f.points.first(), f.points.last()) {
                println!(
                    "  headroom cost: J/inf {:.3} at {:.1}x load vs {:.3} at {:.1}x — \
                     idle islands charge {:.1}% of fleet energy at low load",
                    lo.j_per_inference,
                    lo.offered_frac,
                    hi.j_per_inference,
                    hi.offered_frac,
                    lo.idle_share * 100.0
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_sweep_shows_the_cost_of_headroom() {
        let e = energy_exp(Scale::Tiny);
        assert_eq!(e.fleets.len(), FLEETS.len());
        for f in &e.fleets {
            assert_eq!(f.points.len(), LOAD_FRACTIONS.len());
            let lo = &f.points[0];
            let hi = f.points.last().unwrap();
            // Idle headroom dominates at low load and shrinks with it.
            assert!(lo.idle_share > hi.idle_share, "{}: idle share must fall", f.fleet);
            // Amortizing the idle draw over more completions makes each
            // inference cheaper.
            assert!(
                lo.j_per_inference > hi.j_per_inference,
                "{}: J/inf {} -> {}",
                f.fleet,
                lo.j_per_inference,
                hi.j_per_inference
            );
            for p in &f.points {
                assert!(p.fleet_j > 0.0, "{}: energy must integrate", f.fleet);
                assert!(p.img_per_watt > 0.0, "{}: img/W must be positive", f.fleet);
            }
        }
    }

    #[test]
    fn vpu_fleets_beat_their_nameplate_accounting() {
        // The NCS sticks' measured draw (0.9 W chip busy, ~0.17 W
        // gated) is far below the 2.5 W stick TDP Eq. 1 charges, so
        // the measured img/W must beat the TDP-based number at every
        // load point.
        let e = energy_exp(Scale::Tiny);
        for name in ["1xvpu", "8xvpu"] {
            let f = e.fleets.iter().find(|f| f.fleet == name).unwrap();
            for p in &f.points {
                assert!(
                    p.img_per_watt > p.img_per_watt_tdp,
                    "{name}: measured {} <= Eq.1 {}",
                    p.img_per_watt,
                    p.img_per_watt_tdp
                );
            }
        }
    }
}
