//! E15 — online serving: latency–throughput curves per fleet.
//!
//! Sweeps open-loop offered load (Poisson) as a fraction of each fleet's
//! estimated capacity and reports the latency percentiles, goodput, shed
//! rate and utilization at every point, plus the maximum load each fleet
//! sustains while attaining the p99 SLO with nothing shed. The paper
//! never measures serving (its Fig. 6/8 protocol is closed-loop batch
//! throughput); this experiment is the online extension of those
//! figures on the same calibrated devices, so the capacity numbers line
//! up with Fig. 6a (CPU 44, GPU 74.2, 8×VPU 77.2 img/s).

use crate::report;
use crate::scale::Scale;
use desim::Duration;
use ncsw::ModelBundle;
use ncsw_obs::{Recorder as _, SamplePolicy, SampleStats};
use ncsw_serve::{
    serve, serve_observed, ArrivalProcess, DispatchPolicy, FleetSpec, ObsConfig, ServeConfig,
    ServeReport,
};
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

/// Fleet configurations the experiment compares.
pub const FLEETS: [&str; 4] = ["1xvpu", "8xvpu", "cpu+gpu", "cpu+gpu+8xvpu"];

/// Offered load as a fraction of estimated fleet capacity.
pub const LOAD_FRACTIONS: [f64; 9] = [0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0, 1.2, 2.0];

/// One point of a fleet's latency–throughput curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadPoint {
    pub offered_frac: f64,
    pub offered_rps: f64,
    pub report: ServeReport,
}

/// One fleet's sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetCurve {
    pub fleet: String,
    /// Capacity estimate from the calibrated cost models (requests/s).
    pub capacity_rps: f64,
    /// Batcher limit used for this fleet (its largest preferred batch).
    pub max_batch: usize,
    pub points: Vec<LoadPoint>,
    /// Highest offered load (requests/s) with p99 <= SLO and zero shed.
    pub max_slo_rps: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeExp {
    pub scale: Scale,
    pub requests_per_point: usize,
    pub slo_ms: f64,
    pub policy: String,
    pub fleets: Vec<FleetCurve>,
}

fn requests_per_point(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 160,
        Scale::Small => 1_500,
        Scale::Paper => 10_000,
    }
}

/// Run E15 with the default SLO (500 ms) and cost-aware dispatch.
pub fn serve_exp(scale: Scale) -> ServeExp {
    serve_exp_with(scale, Duration::from_millis(500.0), DispatchPolicy::CostAware)
}

pub fn serve_exp_with(scale: Scale, slo: Duration, policy: DispatchPolicy) -> ServeExp {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let n = requests_per_point(scale);
    let mut fleets = Vec::new();
    for fleet in FLEETS {
        let spec = FleetSpec::parse(fleet).expect("valid fleet spec");
        // Probe capacity and preferred batch on a throwaway build.
        let probe = spec.build(&model);
        let capacity_rps = spec.capacity_rps(&probe);
        let max_batch = spec.preferred_batch(&probe);
        drop(probe);

        let mut points = Vec::new();
        for &frac in &LOAD_FRACTIONS {
            let cfg = ServeConfig { max_batch, slo, policy, ..ServeConfig::default() };
            // Fresh workers per point: each point is an independent run
            // from a cold (but booted) fleet.
            let mut workers = spec.build(&model);
            let rate = capacity_rps * frac;
            let load = ArrivalProcess::Poisson { rate_per_sec: rate };
            let outcome = serve(&mut workers, &cfg, &load, n);
            points.push(LoadPoint {
                offered_frac: frac,
                offered_rps: rate,
                report: ServeReport::of(&outcome, &cfg),
            });
        }
        let max_slo_rps = points
            .iter()
            .filter(|p| p.report.slo_attained)
            .map(|p| p.offered_rps)
            .fold(0.0, f64::max);
        fleets.push(FleetCurve {
            fleet: fleet.to_string(),
            capacity_rps,
            max_batch,
            points,
            max_slo_rps,
        });
    }
    ServeExp {
        scale,
        requests_per_point: n,
        slo_ms: slo.as_millis(),
        policy: policy.name().to_string(),
        fleets,
    }
}

/// Fleet and load point used by [`traced_serve`]: the full
/// heterogeneous fleet at 80% of estimated capacity — busy enough that
/// batching, dispatch and USB contention all show up in the trace, calm
/// enough that the timeline stays readable.
pub const TRACED_FLEET: &str = "cpu+gpu+8xvpu";
pub const TRACED_LOAD_FRACTION: f64 = 0.8;

/// Exported artifacts of one fully observed serving run (the
/// `--trace` / `--metrics-csv` path of the `serve` experiment).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TracedServe {
    pub fleet: String,
    pub requests: usize,
    pub offered_rps: f64,
    pub report: ServeReport,
    /// Chrome trace-event JSON (load in Perfetto / `chrome://tracing`).
    pub chrome_json: String,
    /// Sampled time series as CSV.
    pub series_csv: String,
    /// Human-readable metric summary.
    pub summary: String,
    /// Multi-window SLO burn-rate alert windows that fired during the
    /// run (also exported as `SloAlert` spans on the trace's `alerts`
    /// lane).
    pub slo_alerts: usize,
    /// What observing the run cost: events recorded, exporter bytes,
    /// peak scratch buffer, recorder ns/event (wall fields are zero
    /// unless the run was profiled).
    pub overhead: ncsw_obs::OverheadLedger,
    /// Tail-sampling ledger (`None` = full-fidelity recording).
    pub sample: Option<SampleStats>,
    /// Incident bundles snapped by the always-on flight recorder
    /// (circuit-open, integrity-fail and burn-rate triggers).
    pub incidents: Vec<IncidentBundle>,
}

/// A self-contained post-mortem artifact for one incident trigger:
/// the flight-recorder trace window around the trigger, the metric
/// summary, the run's seed and spec, and a one-line `repro` command
/// that deterministically reproduces the whole run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentBundle {
    /// Incident ordinal within the run (0-based).
    pub n: usize,
    /// What fired: `circuit-open`, `integrity-fail` or `burn-rate`.
    pub trigger: String,
    /// Virtual-clock trigger instant, ms since epoch.
    pub at_ms: f64,
    /// RNG seed of the run — replaying with it is byte-identical.
    pub seed: u64,
    /// Events in the flight-recorder window.
    pub window_events: usize,
    /// Chrome trace-event JSON of the window (loads in Perfetto and
    /// passes `repro validate-trace`'s parser).
    pub trace_window: String,
    /// Registry metric summary at end of run.
    pub registry_summary: String,
    /// One-line command reproducing the run: the window is a teaser,
    /// this regenerates the full deterministic trace.
    pub replay: String,
}

/// Convert the flight recorder's snapshots into self-contained
/// [`IncidentBundle`]s. `replay_base` is the `repro …` invocation that
/// reproduces the run (the bundle appends the `--trace` artifact flag).
pub(crate) fn incident_bundles(
    obs: &ncsw_serve::ServeObservation,
    seed: u64,
    registry_summary: &str,
    replay_base: &str,
) -> Vec<IncidentBundle> {
    obs.flight
        .incidents()
        .iter()
        .map(|snap| {
            let mut window = ncsw_obs::EventLog::new();
            for ev in &snap.events {
                window.record(*ev);
            }
            IncidentBundle {
                n: snap.n,
                trigger: snap.trigger.clone(),
                at_ms: snap.at.as_millis(),
                seed,
                window_events: snap.events.len(),
                trace_window: ncsw_obs::chrome_trace(&window),
                registry_summary: registry_summary.to_string(),
                replay: format!("{replay_base} --trace replay.trace.json"),
            }
        })
        .collect()
}

/// Shared assembly of an observed run's exportable artifacts: burn-rate
/// alerts folded into the trace, streaming Chrome-trace + series-CSV
/// exports (with their write ledgers), the registry summary, and the
/// [`ncsw_obs::OverheadLedger`] — one place, used by both the serve and
/// autoscale traced paths, to attach observability accounting.
pub(crate) struct ObservedArtifacts {
    pub chrome_json: String,
    pub series_csv: String,
    pub summary: String,
    pub slo_alerts: usize,
    pub overhead: ncsw_obs::OverheadLedger,
}

pub(crate) fn observed_artifacts(obs: &mut ncsw_serve::ServeObservation) -> ObservedArtifacts {
    use ncsw_obs::prof;
    // Burn-rate alerting runs over the sampled series; windows that
    // fire land in the trace as spans on their own lane, so Perfetto
    // shows the alert right above the phase activity that caused it.
    let alerts = ncsw_analyze::burn_alerts(&obs.series, &ncsw_analyze::BurnConfig::default());
    {
        for ev in ncsw_analyze::alert_events(&alerts) {
            obs.events.record(ev);
        }
    }
    // A burn-rate alert is an incident too: snapshot the flight ring so
    // the run exports a bundle even when no fault-path trigger fired.
    if let Some(a) = alerts.first() {
        obs.flight.force_snapshot("burn-rate", a.from);
    }
    let mut trace_buf = Vec::new();
    let trace_stats = {
        let _s = prof::scope("export.chrome");
        // Same streaming writer as `chrome_trace_to`, plus the sampling
        // metadata row when the run was tail-sampled — an all-keep or
        // unsampled run stays byte-identical to the plain export.
        let mut w = ncsw_obs::ChromeWriter::new(&mut trace_buf, &obs.events.lanes())
            .expect("Vec sink cannot fail");
        for ev in obs.events.events() {
            w.event(ev).expect("Vec sink cannot fail");
        }
        if let Some(stats) = obs.sample.as_ref().filter(|s| !s.keeps_all()) {
            w.sampling(stats).expect("Vec sink cannot fail");
        }
        w.finish().expect("Vec sink cannot fail")
    };
    let mut series_buf = Vec::new();
    let series_stats = {
        let _s = prof::scope("export.series");
        obs.series.csv_to(&mut series_buf).expect("Vec sink cannot fail")
    };
    let events_recorded = obs.events.len() as u64;
    ObservedArtifacts {
        chrome_json: String::from_utf8(trace_buf).expect("chrome trace is ASCII"),
        series_csv: String::from_utf8(series_buf).expect("series CSV is ASCII"),
        summary: obs.registry.summary(),
        slo_alerts: alerts.len(),
        overhead: ncsw_obs::OverheadLedger {
            events_recorded,
            trace_bytes: trace_stats.bytes,
            series_bytes: series_stats.bytes,
            peak_buffered_bytes: trace_stats.peak_buffered.max(series_stats.peak_buffered),
            recorder_ns: prof::counter_now(prof::RECORDER_NS),
        },
    }
}

/// One observed serving run on the heterogeneous fleet. Deterministic:
/// the same scale/slo/policy/sample settings produce byte-identical
/// `chrome_json` and `series_csv` on every machine.
pub fn traced_serve(
    scale: Scale,
    slo: Duration,
    policy: DispatchPolicy,
    sample_every: Duration,
) -> TracedServe {
    traced_serve_with_faults(scale, slo, policy, sample_every, None)
}

/// [`traced_serve`] with a fault plan injected into the fleet (the
/// `repro serve --faults SPEC` path). `None` — or the empty plan — is
/// byte-identical to the un-faulted run.
pub fn traced_serve_with_faults(
    scale: Scale,
    slo: Duration,
    policy: DispatchPolicy,
    sample_every: Duration,
    faults: Option<&ncsw_faults::FaultPlan>,
) -> TracedServe {
    traced_serve_gray(scale, slo, policy, sample_every, faults, ncsw_serve::GrayConfig::default())
}

/// [`traced_serve_with_faults`] with the gray-failure defenses
/// configured (the `repro serve --gray` path). The all-off default is
/// byte-identical to [`traced_serve_with_faults`].
pub fn traced_serve_gray(
    scale: Scale,
    slo: Duration,
    policy: DispatchPolicy,
    sample_every: Duration,
    faults: Option<&ncsw_faults::FaultPlan>,
    gray: ncsw_serve::GrayConfig,
) -> TracedServe {
    traced_serve_sampled(scale, slo, policy, sample_every, faults, gray, None)
}

/// [`traced_serve_gray`] with tail-based trace sampling (the
/// `repro serve --sample SPEC` path). `None` records full fidelity;
/// `Some(all)` is byte-identical to `None`. Sampling is passive: the
/// served outcome, time series and registry are identical either way —
/// only the exported trace shrinks.
pub fn traced_serve_sampled(
    scale: Scale,
    slo: Duration,
    policy: DispatchPolicy,
    sample_every: Duration,
    faults: Option<&ncsw_faults::FaultPlan>,
    gray: ncsw_serve::GrayConfig,
    sample: Option<SamplePolicy>,
) -> TracedServe {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let n = requests_per_point(scale);
    let spec = FleetSpec::parse(TRACED_FLEET).expect("valid fleet spec");
    let probe = spec.build(&model);
    let capacity_rps = spec.capacity_rps(&probe);
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);

    let cfg = ServeConfig { max_batch, slo, policy, gray, ..ServeConfig::default() };
    let mut workers = spec.build(&model);
    if let Some(plan) = faults {
        workers = plan.apply(workers, cfg.seed);
    }
    let rate = capacity_rps * TRACED_LOAD_FRACTION;
    let load = ArrivalProcess::Poisson { rate_per_sec: rate };
    let ocfg = ObsConfig { sample_every, sample: sample.clone(), ..ObsConfig::default() };
    let (outcome, mut obs) = serve_observed(&mut workers, &cfg, &load, n, &ocfg);
    let art = observed_artifacts(&mut obs);

    let mut replay = format!(
        "repro serve --scale {} --slo-ms {} --policy {}",
        scale.name(),
        slo.as_millis(),
        policy.name()
    );
    if let Some(plan) = faults {
        replay.push_str(&format!(" --faults {}", plan.to_spec()));
    }
    if gray != ncsw_serve::GrayConfig::default() {
        replay.push_str(" --gray");
    }
    if let Some(p) = &sample {
        replay.push_str(&format!(" --sample {}", p.spec()));
    }
    let incidents = incident_bundles(&obs, cfg.seed, &art.summary, &replay);
    TracedServe {
        fleet: TRACED_FLEET.to_string(),
        requests: n,
        offered_rps: rate,
        report: ServeReport::of(&outcome, &cfg),
        chrome_json: art.chrome_json,
        series_csv: art.series_csv,
        summary: art.summary,
        slo_alerts: art.slo_alerts,
        overhead: art.overhead,
        sample: obs.sample.clone(),
        incidents,
    }
}

impl TracedServe {
    pub fn print(&self) {
        report::header(&format!(
            "observed serving run — fleet {}, {} requests at {:.1} req/s",
            self.fleet, self.requests, self.offered_rps
        ));
        print!("{}", self.summary);
        println!(
            "completed {} / shed {}  p50 {:.1} ms  p99 {:.1} ms  goodput {:.1} req/s",
            self.report.completed,
            self.report.shed,
            self.report.latency.p50_ms,
            self.report.latency.p99_ms,
            self.report.goodput_rps
        );
        let e = &self.report.energy;
        println!(
            "energy: {:.3} J fleet = {:.3} active + {:.3} wasted + {:.3} idle ({} pJ exact)  \
             {:.2} img/W measured vs {:.2} Eq.1-TDP",
            e.fleet_j,
            e.active_j,
            e.wasted_j,
            e.idle_j,
            e.fleet_pj,
            e.img_per_watt,
            e.img_per_watt_tdp
        );
        if self.overhead.events_recorded > 0 {
            println!("{}", self.overhead.render());
        }
        if let Some(s) = &self.sample {
            println!("{}", s.render());
        }
        if !self.incidents.is_empty() {
            println!(
                "flight recorder: {} incident bundle(s) [{}]",
                self.incidents.len(),
                self.incidents.iter().map(|b| b.trigger.as_str()).collect::<Vec<_>>().join(", ")
            );
        }
        if self.slo_alerts > 0 {
            println!("SLO burn-rate alerts fired: {} window(s)", self.slo_alerts);
        }
        if let Some(s) = &self.report.scaling {
            println!(
                "scaling ({}): {} ticks, {} ups / {} downs / {} replacements, \
                 {:.1} of {:.1} stick·s powered, {:.3} J reclaimed ({} pJ exact)",
                s.policy,
                s.ticks,
                s.scale_ups,
                s.scale_downs,
                s.replacements,
                s.stick_seconds,
                s.static_stick_seconds,
                s.reclaimed_j,
                s.reclaimed_pj
            );
        }
        let f = &self.report.faults;
        if f.injected > 0 {
            println!(
                "faults: {} injected, {} retries ({:.3}/req), {} exhausted, {} outages, \
                 mttr {:.1} ms, p99 during failover {:.1} ms",
                f.injected,
                f.retries,
                f.retries_per_request,
                f.exhausted,
                f.outages,
                f.mttr_ms,
                f.p99_during_failover_ms
            );
        }
    }
}

impl ServeExp {
    /// `max_slo_rps` of a fleet by name (0.0 when absent or never met).
    pub fn max_slo_rps(&self, fleet: &str) -> f64 {
        self.fleets.iter().find(|f| f.fleet == fleet).map(|f| f.max_slo_rps).unwrap_or(0.0)
    }

    pub fn print(&self) {
        report::header(&format!(
            "E15 — online serving sweep ({} req/point, p99 SLO {} ms, {} dispatch, scale {})",
            self.requests_per_point,
            self.slo_ms,
            self.policy,
            self.scale.name()
        ));
        for f in &self.fleets {
            println!(
                "\nfleet {}  (capacity est {:.1} req/s, max_batch {})",
                f.fleet, f.capacity_rps, f.max_batch
            );
            println!(
                "{:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6}  slo",
                "load", "offered", "p50 ms", "p99 ms", "p99.9 ms", "goodput", "shed%", "util%"
            );
            for p in &f.points {
                let r = &p.report;
                let util =
                    r.workers.iter().map(|w| w.utilization).sum::<f64>() / r.workers.len() as f64;
                println!(
                    "{:>5.2} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>7.1} {:>6.1}  {}",
                    p.offered_frac,
                    p.offered_rps,
                    r.latency.p50_ms,
                    r.latency.p99_ms,
                    r.latency.p999_ms,
                    r.goodput_rps,
                    r.shed_rate * 100.0,
                    util * 100.0,
                    if r.slo_attained { "ok" } else { "-" }
                );
            }
            println!("  max SLO-compliant load: {:.1} req/s", f.max_slo_rps);
        }
        let one = self.max_slo_rps("1xvpu");
        let eight = self.max_slo_rps("8xvpu");
        if one > 0.0 {
            println!(
                "\n8xVPU sustains {:.1}x the SLO-compliant load of 1xVPU ({:.1} vs {:.1} req/s)",
                eight / one,
                eight,
                one
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_has_expected_shape() {
        let e = serve_exp(Scale::Tiny);
        assert_eq!(e.fleets.len(), FLEETS.len());
        for f in &e.fleets {
            assert_eq!(f.points.len(), LOAD_FRACTIONS.len());
            // Low load attains the SLO; the hockey stick shows up as a
            // strictly worse p99 at 2.0x than at 0.2x.
            let lo = &f.points[0].report;
            let hi = f.points.last().unwrap().report.clone();
            assert!(lo.slo_attained, "{}: SLO must hold at 0.2x", f.fleet);
            assert!(
                hi.latency.p99_ms > lo.latency.p99_ms,
                "{}: p99 must degrade under overload",
                f.fleet
            );
            // Graceful overload: at 2x capacity the bounded queue sheds,
            // and what is admitted still completes with bounded latency.
            assert!(hi.shed_rate > 0.0, "{}: 2x load must shed", f.fleet);
            assert!(hi.completed > 0, "{}: overload must not starve", f.fleet);
            assert!(f.max_slo_rps > 0.0, "{}: some load must meet the SLO", f.fleet);
        }
        // Fleet scaling: 8 sticks sustain >= ~3x the SLO load of 1 stick.
        let ratio = e.max_slo_rps("8xvpu") / e.max_slo_rps("1xvpu");
        assert!(ratio >= 3.0, "8xvpu/1xvpu SLO-load ratio {ratio}");
    }
}
