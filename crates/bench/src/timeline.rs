//! E8 — the Fig. 4 multi-VPU execution timeline, rendered as an ASCII
//! Gantt chart from the recorded trace spans.

use crate::report;
use ncsw::multivpu::{MultiVpu, MultiVpuConfig};
use ncsw::ModelBundle;
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    pub devices: usize,
    pub images: usize,
    pub gantt: String,
    pub makespan_ms: f64,
    /// Fraction of the makespan during which ≥2 device execs overlap.
    pub overlap_fraction: f64,
}

/// Reproduce Fig. 4: four devices, two images each, load → exec → read.
pub fn timeline() -> Timeline {
    timeline_with(4, 8)
}

pub fn timeline_with(devices: usize, images: usize) -> Timeline {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(devices), &model);
    let run = mv.run_pipeline(images);
    let gantt = run.trace.shifted(run.start).render_gantt(96);
    // Overlap: sample the exec spans on a fine grid.
    let lanes: Vec<Vec<(u64, u64)>> = (0..devices)
        .map(|d| {
            run.trace
                .lane_spans(&format!("vpu{d}"))
                .iter()
                .map(|s| (s.start.nanos(), s.end.nanos()))
                .collect()
        })
        .collect();
    let (t0, t1) = (run.start.nanos(), run.end.nanos());
    let steps = 2000u64;
    let mut overlapped = 0u64;
    for k in 0..steps {
        let t = t0 + (t1 - t0) * k / steps;
        let busy = lanes.iter().filter(|spans| spans.iter().any(|&(a, b)| a <= t && t < b)).count();
        if busy >= 2 {
            overlapped += 1;
        }
    }
    Timeline {
        devices,
        images,
        gantt,
        makespan_ms: run.makespan().as_millis(),
        overlap_fraction: overlapped as f64 / steps as f64,
    }
}

impl Timeline {
    pub fn print(&self) {
        report::header(&format!(
            "E8 / Fig. 4 — multi-VPU timeline: {} devices, {} images (makespan {:.1} ms, {:.0}% of it ≥2 chips busy)",
            self.devices,
            self.images,
            self.makespan_ms,
            self.overlap_fraction * 100.0
        ));
        println!("lanes: host* = load/read on the host thread; vpu* = on-chip execution");
        print!("{}", self.gantt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_shows_heavy_overlap() {
        let t = timeline_with(4, 8);
        assert!(t.overlap_fraction > 0.6, "overlap only {}", t.overlap_fraction);
        assert!(t.gantt.contains("vpu0"));
        assert!(t.gantt.contains("vpu3"));
        assert!(t.gantt.contains("host0"));
        // 8 images on 4 sticks, pipelined: ~2 serial inferences + setup.
        assert!((190.0..240.0).contains(&t.makespan_ms), "makespan {}", t.makespan_ms);
    }

    #[test]
    fn single_device_has_no_overlap() {
        let t = timeline_with(1, 3);
        assert_eq!(t.overlap_fraction, 0.0);
    }
}
