//! E9 — general-purpose GEMM offload (extension experiment).
//!
//! The paper's §VII future work proposes using the VPU "as a conventional
//! vector processor for general-purpose computing"; its related work
//! (Ionica & Gregg) measures a CMX-tiled DGEMM in Gflops and Gflops/W on
//! the Myriad 1. This experiment runs that study on our Myriad 2 model.

use crate::report;
use mdk::{GemmPrecision, MdkContext};
use myriad2::Myriad2Config;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GemmPoint {
    pub size: usize,
    pub precision: String,
    pub tile: usize,
    pub ms: f64,
    pub gflops: f64,
    pub gflops_per_watt: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdkGemm {
    pub points: Vec<GemmPoint>,
    pub cpu_gflops_per_watt: f64,
}

pub fn mdk_gemm() -> MdkGemm {
    let mut ctx = MdkContext::new(Myriad2Config::default());
    let mut points = Vec::new();
    for &size in &[128usize, 256, 512, 1024, 2048] {
        for prec in [GemmPrecision::Fp16, GemmPrecision::Fp32] {
            let run = match prec {
                GemmPrecision::Fp16 => ctx.hgemm(size, size, size),
                GemmPrecision::Fp32 => ctx.sgemm(size, size, size),
            };
            points.push(GemmPoint {
                size,
                precision: prec.name().to_string(),
                tile: run.plan.tile,
                ms: run.duration.as_millis(),
                gflops: run.gflops,
                gflops_per_watt: run.gflops_per_watt,
            });
        }
    }
    MdkGemm { points, cpu_gflops_per_watt: MdkContext::cpu_reference_gflops_per_watt() }
}

impl MdkGemm {
    pub fn print(&self) {
        report::header("E9 — MDK general-purpose GEMM offload (extension)");
        println!(
            "{:>6} {:>6} {:>6} {:>9} {:>10} {:>12}",
            "size", "prec", "tile", "ms", "Gflop/s", "Gflop/s/W"
        );
        for p in &self.points {
            println!(
                "{:>6} {:>6} {:>6} {:>9.2} {:>10.1} {:>12.1}",
                p.size, p.precision, p.tile, p.ms, p.gflops, p.gflops_per_watt
            );
        }
        println!(
            "\nXeon MKL-class reference: {:.1} Gflop/s/W — the chip wins per-Watt by ~{:.0}x",
            self.cpu_gflops_per_watt,
            self.points.iter().map(|p| p.gflops_per_watt).fold(0.0, f64::max)
                / self.cpu_gflops_per_watt
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_sweep_shape() {
        let r = mdk_gemm();
        assert_eq!(r.points.len(), 10);
        // Throughput grows with size (amortized overheads) and fp16
        // beats fp32 at every size.
        let at = |size: usize, prec: &str| {
            r.points.iter().find(|p| p.size == size && p.precision == prec).unwrap().gflops
        };
        assert!(at(2048, "fp16") > at(128, "fp16"));
        for &s in &[128usize, 512, 2048] {
            assert!(at(s, "fp16") > at(s, "fp32"), "fp16 must beat fp32 at {s}");
        }
        // Per-watt advantage over the CPU is at least an order of
        // magnitude (the paper's energy story, general-purpose edition).
        let best = r.points.iter().map(|p| p.gflops_per_watt).fold(0.0, f64::max);
        assert!(best > 10.0 * r.cpu_gflops_per_watt);
    }
}
