//! NCSw — the Neural Compute Stick Wrapper.
//!
//! This crate is the paper's primary software contribution (§III): a
//! small inference framework over pluggable *sources* and *targets*,
//! mirroring the class diagram of Fig. 3:
//!
//! ```text
//! Application ── SourceImage ──┬─ ImageFolder
//!              │               └─ MpiStream
//!              └─ TargetDevice ─┬─ IntelCpu   (Caffe-MKL model)
//!                               ├─ NvGpu      (Caffe-cuDNN model)
//!                               └─ IntelVpu   (NCAPI, multi-stick)
//! ```
//!
//! The multi-VPU target implements the paper's Fig. 4 execution pipeline:
//! one (virtual) host thread per stick, round-robin image assignment,
//! FIFO-depth-2 pipelining, and result collection in queueing order —
//! overlapping USB transfers with on-device execution across sticks.
//!
//! Throughput numbers come from the discrete-event simulation (virtual
//! time); classification outputs come from real arithmetic (f32 on the
//! host targets, software binary16 on the VPU target). The [`runner`]
//! module glues both into the experiment-shaped reports the figures use.

pub mod metrics;
pub mod model;
pub mod multivpu;
pub mod runner;
pub mod service;
pub mod source;
pub mod target;

pub use metrics::{AccuracyReport, ConfidenceDiffReport, ThroughputReport};
pub use model::ModelBundle;
pub use multivpu::MultiVpu;
pub use service::{BatchRun, FailureKind, ScaleComponent, ScalePlan, ServeError, ServiceHook};
// Device-config crate, re-exported so downstream layers (e.g. fleet
// builders threading a `ScalePlan`) can name host configs without a
// direct dependency edge.
pub use hostsim;
pub use source::{ImageFolder, MpiStream, SourceImage};
pub use target::{IntelCpu, IntelVpu, NvGpu, TargetDevice};
