//! Experiment-shaped reports: throughput, accuracy, confidence deltas.

use desim::Duration;
use serde::{Deserialize, Serialize};
use vpu_num::stats::{OnlineStats, Summary};

/// Throughput of one target over one subset (a Fig. 6a bar).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    pub target: String,
    pub images: usize,
    pub batch: usize,
    /// Total virtual wall time.
    pub wall: Duration,
    /// Per-window throughput samples (img/s) used for the error bar.
    pub samples: Summary,
}

impl ThroughputReport {
    pub fn from_window_times(
        target: impl Into<String>,
        batch: usize,
        window: usize,
        window_durations: &[Duration],
    ) -> Self {
        assert!(!window_durations.is_empty(), "need at least one window");
        let stats: OnlineStats =
            window_durations.iter().map(|d| window as f64 / d.as_secs()).collect();
        let wall: Duration = window_durations.iter().copied().sum();
        ThroughputReport {
            target: target.into(),
            images: window * window_durations.len(),
            batch,
            wall,
            samples: stats.summary(),
        }
    }

    /// Aggregate images per second.
    pub fn images_per_sec(&self) -> f64 {
        self.images as f64 / self.wall.as_secs()
    }

    /// Mean per-inference latency in milliseconds.
    pub fn per_image_ms(&self) -> f64 {
        self.wall.as_millis() / self.images as f64
    }

    /// Eq. (1): throughput normalized by TDP.
    pub fn images_per_watt(&self, tdp_w: f64) -> f64 {
        hostsim::power::throughput_per_watt(self.images_per_sec(), tdp_w)
    }
}

/// Top-1 error of one implementation over one subset (a Fig. 7a bar).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    pub target: String,
    pub images: usize,
    pub wrong: usize,
    /// Per-image top-1 confidences (of the predicted class).
    pub mean_top1_confidence: f64,
}

impl AccuracyReport {
    pub fn top1_error(&self) -> f64 {
        self.wrong as f64 / self.images as f64
    }
}

/// Per-image classification outcome, used to build the Fig. 7 reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    pub image: usize,
    pub label: usize,
    pub predicted: usize,
    /// Confidence of the predicted class.
    pub confidence: f32,
    /// Confidence assigned to the true label.
    pub label_confidence: f32,
    /// How many classes scored strictly above the true label (0 =
    /// top-1 correct; < 5 = top-5 correct, the other ILSVRC metric).
    pub label_rank: usize,
}

impl Prediction {
    pub fn correct(&self) -> bool {
        self.predicted == self.label
    }

    /// ILSVRC top-5 criterion: the truth ranks among the five highest
    /// confidences.
    pub fn top5_correct(&self) -> bool {
        self.label_rank < 5
    }
}

/// Rank of the true label within a probability vector (ties resolved in
/// the truth's favour, matching the ILSVRC evaluation script).
pub fn label_rank(probs: &[f32], label: usize) -> usize {
    let p = probs[label];
    probs.iter().filter(|&&x| x > p).count()
}

/// Top-5 error over a prediction set.
pub fn top5_error(preds: &[Prediction]) -> f64 {
    assert!(!preds.is_empty(), "no predictions");
    preds.iter().filter(|p| !p.top5_correct()).count() as f64 / preds.len() as f64
}

/// Square confusion matrix over a prediction set: `counts[truth][pred]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    pub classes: usize,
    counts: Vec<u32>,
}

impl ConfusionMatrix {
    pub fn from_predictions(classes: usize, preds: &[Prediction]) -> ConfusionMatrix {
        let mut counts = vec![0u32; classes * classes];
        for p in preds {
            assert!(p.label < classes && p.predicted < classes, "class out of range");
            counts[p.label * classes + p.predicted] += 1;
        }
        ConfusionMatrix { classes, counts }
    }

    pub fn count(&self, truth: usize, predicted: usize) -> u32 {
        self.counts[truth * self.classes + predicted]
    }

    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Diagonal mass / total = accuracy.
    pub fn accuracy(&self) -> f64 {
        let diag: u32 = (0..self.classes).map(|c| self.count(c, c)).sum();
        if self.total() == 0 {
            0.0
        } else {
            diag as f64 / self.total() as f64
        }
    }

    /// Per-class recall (correct / truth-count), NaN-free (0 when empty).
    pub fn recall(&self, class: usize) -> f64 {
        let row: u32 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / row as f64
        }
    }

    /// The `n` most confused (truth, predicted, count) off-diagonal pairs.
    pub fn top_confusions(&self, n: usize) -> Vec<(usize, usize, u32)> {
        let mut offs: Vec<(usize, usize, u32)> = (0..self.classes)
            .flat_map(|t| (0..self.classes).map(move |p| (t, p)))
            .filter(|&(t, p)| t != p)
            .map(|(t, p)| (t, p, self.count(t, p)))
            .filter(|&(_, _, c)| c > 0)
            .collect();
        offs.sort_by_key(|&(t, p, c)| (std::cmp::Reverse(c), t, p));
        offs.truncate(n);
        offs
    }
}

/// Build an [`AccuracyReport`] from per-image predictions.
pub fn accuracy_report(target: impl Into<String>, preds: &[Prediction]) -> AccuracyReport {
    assert!(!preds.is_empty(), "no predictions");
    let wrong = preds.iter().filter(|p| !p.correct()).count();
    let mean_conf = preds.iter().map(|p| p.confidence as f64).sum::<f64>() / preds.len() as f64;
    AccuracyReport {
        target: target.into(),
        images: preds.len(),
        wrong,
        mean_top1_confidence: mean_conf,
    }
}

/// FP32-vs-FP16 confidence agreement over one subset (a Fig. 7b bar):
/// mean |confidence difference| **after filtering the top-1
/// miss-predictions**, exactly as §IV-B defines it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceDiffReport {
    pub images_compared: usize,
    /// Mean absolute top-1 confidence difference over images both
    /// implementations classified correctly.
    pub mean_abs_diff: f64,
    pub max_abs_diff: f64,
    /// How often the two implementations picked different top-1 labels.
    pub disagreements: usize,
}

/// Compare two prediction sets image-by-image.
pub fn confidence_diff(a: &[Prediction], b: &[Prediction]) -> ConfidenceDiffReport {
    assert_eq!(a.len(), b.len(), "prediction sets must align");
    let mut stats = OnlineStats::new();
    let mut disagreements = 0usize;
    for (pa, pb) in a.iter().zip(b) {
        assert_eq!(pa.image, pb.image, "misaligned predictions");
        if pa.predicted != pb.predicted {
            disagreements += 1;
        }
        // Filter the top-1 miss-predictions: keep images both got right.
        if pa.correct() && pb.correct() {
            stats.push((pa.confidence - pb.confidence).abs() as f64);
        }
    }
    let s = stats.summary();
    ConfidenceDiffReport {
        images_compared: s.n as usize,
        mean_abs_diff: s.mean,
        max_abs_diff: s.max,
        disagreements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(image: usize, label: usize, predicted: usize, conf: f32) -> Prediction {
        Prediction {
            image,
            label,
            predicted,
            confidence: conf,
            label_confidence: conf,
            label_rank: if label == predicted { 0 } else { 7 },
        }
    }

    #[test]
    fn throughput_from_windows() {
        // Two windows of 10 images, 100 ms each -> 100 img/s, zero spread.
        let r = ThroughputReport::from_window_times(
            "cpu",
            8,
            10,
            &[Duration::from_millis(100.0), Duration::from_millis(100.0)],
        );
        assert_eq!(r.images, 20);
        assert!((r.images_per_sec() - 100.0).abs() < 1e-9);
        assert!((r.per_image_ms() - 10.0).abs() < 1e-9);
        assert_eq!(r.samples.stddev, 0.0);
        assert!((r.samples.mean - 100.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_error_bars_capture_spread() {
        let r = ThroughputReport::from_window_times(
            "vpu",
            8,
            10,
            &[Duration::from_millis(100.0), Duration::from_millis(125.0)],
        );
        assert!(r.samples.stddev > 0.0);
        assert!(r.samples.mean > 80.0 && r.samples.mean < 100.0);
    }

    #[test]
    fn images_per_watt_eq1() {
        let r = ThroughputReport::from_window_times("vpu", 1, 10, &[Duration::from_secs(1.0)]);
        assert!((r.images_per_watt(2.5) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_counts_misses() {
        let preds = vec![pred(0, 1, 1, 0.9), pred(1, 2, 3, 0.5), pred(2, 4, 4, 0.7)];
        let r = accuracy_report("cpu", &preds);
        assert_eq!(r.wrong, 1);
        assert!((r.top1_error() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.mean_top1_confidence - 0.7).abs() < 1e-6);
    }

    #[test]
    fn confidence_diff_filters_misses() {
        let a = vec![pred(0, 1, 1, 0.90), pred(1, 2, 2, 0.80), pred(2, 3, 9, 0.60)];
        let b = vec![pred(0, 1, 1, 0.88), pred(1, 2, 7, 0.75), pred(2, 3, 3, 0.55)];
        let r = confidence_diff(&a, &b);
        // Only image 0 is correct in both.
        assert_eq!(r.images_compared, 1);
        assert!((r.mean_abs_diff - 0.02).abs() < 1e-6);
        assert_eq!(r.disagreements, 2);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_sets_rejected() {
        confidence_diff(&[pred(0, 1, 1, 0.9)], &[]);
    }

    #[test]
    fn label_rank_and_top5() {
        let probs = [0.05f32, 0.40, 0.20, 0.15, 0.10, 0.06, 0.04];
        assert_eq!(label_rank(&probs, 1), 0);
        assert_eq!(label_rank(&probs, 2), 1);
        assert_eq!(label_rank(&probs, 0), 5);
        assert_eq!(label_rank(&probs, 6), 6);
        // Ties favour the truth.
        let tied = [0.3f32, 0.3, 0.4];
        assert_eq!(label_rank(&tied, 0), 1);
        assert_eq!(label_rank(&tied, 1), 1);
        let mut p = pred(0, 1, 1, 0.4);
        p.label_rank = 4;
        assert!(p.top5_correct());
        p.label_rank = 5;
        assert!(!p.top5_correct());
    }

    #[test]
    fn confusion_matrix_basics() {
        let preds = vec![
            pred(0, 0, 0, 0.9),
            pred(1, 0, 1, 0.5),
            pred(2, 1, 1, 0.8),
            pred(3, 1, 1, 0.7),
            pred(4, 2, 1, 0.4),
        ];
        let m = ConfusionMatrix::from_predictions(3, &preds);
        assert_eq!(m.total(), 5);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 1), 2);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.recall(1) - 1.0).abs() < 1e-12);
        assert_eq!(m.recall(2), 0.0);
        let top = m.top_confusions(2);
        assert_eq!(top[0].2, 1);
        assert!(top.iter().all(|&(t, p, _)| t != p));
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn confusion_matrix_bounds() {
        ConfusionMatrix::from_predictions(2, &[pred(0, 5, 0, 0.1)]);
    }

    #[test]
    fn top5_error_counts() {
        let mut a = pred(0, 1, 1, 0.9); // rank 0
        a.label_rank = 0;
        let mut b = pred(1, 2, 5, 0.5); // rank 7 -> top-5 wrong
        b.label_rank = 7;
        let mut c = pred(2, 3, 4, 0.5); // rank 3 -> top-5 right, top-1 wrong
        c.label_rank = 3;
        let e = top5_error(&[a, b, c]);
        assert!((e - 1.0 / 3.0).abs() < 1e-12);
    }
}
