//! A network deployed to every target at once.
//!
//! NCSw loads one Caffe model and deploys it per-target: FP32 for the
//! CPU/GPU paths, an FP16 "graph file" for the NCS (the NCSDK compiler
//! step). [`ModelBundle`] holds all of it: the spec, the master weights,
//! both compiled networks and both cost profiles.

use std::sync::Arc;
use vpu_nn::cost::NetworkCost;
use vpu_nn::googlenet::Variant;
use vpu_nn::graph::{CompiledNetwork, NetworkSpec};
use vpu_nn::weights::Weights;
use vpu_num::f16;
use vpu_tensor::kernels::gemm::AccumMode;

/// One model, deployed at both precisions.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    pub spec: Arc<NetworkSpec>,
    pub weights: Arc<Weights>,
    pub net32: Arc<CompiledNetwork<f32>>,
    pub net16: Arc<CompiledNetwork<f16>>,
    pub cost32: Arc<NetworkCost>,
    pub cost16: Arc<NetworkCost>,
}

impl ModelBundle {
    /// Deploy a spec with the given weights. The FP16 network uses
    /// native accumulation (the Myriad's pure-FP16 MAC path); the
    /// `accum16` parameter exists for the accumulation ablation.
    pub fn new(spec: Arc<NetworkSpec>, weights: Weights, accum16: AccumMode) -> Self {
        let net32 =
            Arc::new(CompiledNetwork::<f32>::compile(spec.clone(), &weights, AccumMode::Widened));
        let net16 = Arc::new(CompiledNetwork::<f16>::compile(spec.clone(), &weights, accum16));
        let cost32 = Arc::new(NetworkCost::of::<f32>(&spec));
        let cost16 = Arc::new(NetworkCost::of::<f16>(&spec));
        ModelBundle { spec, weights: Arc::new(weights), net32, net16, cost32, cost16 }
    }

    /// Deploy with the Myriad's default pure-FP16 accumulation.
    pub fn deploy(spec: Arc<NetworkSpec>, weights: Weights) -> Self {
        ModelBundle::new(spec, weights, AccumMode::Native)
    }

    /// Convenience: a GoogLeNet variant with Xavier weights (for timing
    /// experiments, where classification quality is irrelevant).
    pub fn googlenet_untrained(variant: Variant, seed: u64) -> Self {
        let spec = Arc::new(variant.build());
        let weights = vpu_nn::init::xavier(&spec, seed);
        ModelBundle::deploy(spec, weights)
    }

    /// The timing experiments always charge the paper's full-geometry
    /// GoogLeNet work profile, regardless of which variant computes
    /// numerics. (FP16 profile: what the NCS executes; FP32: the hosts.)
    pub fn paper_cost_fp16() -> Arc<NetworkCost> {
        Arc::new(NetworkCost::of::<f16>(&vpu_nn::googlenet::full()))
    }

    pub fn paper_cost_fp32() -> Arc<NetworkCost> {
        Arc::new(NetworkCost::of::<f32>(&vpu_nn::googlenet::full()))
    }

    pub fn classes(&self) -> usize {
        self.spec.output_shape().item_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploys_both_precisions() {
        let m = ModelBundle::googlenet_untrained(Variant::Tiny, 3);
        assert_eq!(m.classes(), 10);
        assert_eq!(m.cost32.total_macs, m.cost16.total_macs);
        assert_eq!(m.cost32.total_weight_bytes(), 2 * m.cost16.total_weight_bytes());
        assert_eq!(m.net16.accum_mode(), AccumMode::Native);
    }

    #[test]
    fn ablation_mode_respected() {
        let spec = Arc::new(vpu_nn::googlenet::tiny());
        let w = vpu_nn::init::xavier(&spec, 1);
        let m = ModelBundle::new(spec, w, AccumMode::Widened);
        assert_eq!(m.net16.accum_mode(), AccumMode::Widened);
    }

    #[test]
    fn paper_cost_is_full_googlenet() {
        let c = ModelBundle::paper_cost_fp16();
        assert!(c.total_macs > 1_300_000_000);
        assert_eq!(c.input_bytes(), 224 * 224 * 3 * 2);
        assert_eq!(c.output_bytes(), 2000);
    }
}
