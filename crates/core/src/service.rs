//! Incremental per-batch service hooks over the target devices.
//!
//! The throughput experiments drive each target through one closed
//! `run_throughput` loop; an *online* serving layer instead needs to
//! submit one formed batch at a time, at an arbitrary virtual instant,
//! and learn when each image's result returns to the host. This module
//! exposes that contract as [`ServiceHook`]:
//!
//! * every device **self-serializes**: a submission at `ready` queues
//!   behind the device's earlier work (`FifoResource` timelines on the
//!   hosts, the `last_end` sequencing of [`MultiVpu`]);
//! * [`ServiceHook::estimate`] is the calibrated, jitter-free cost model
//!   a dispatcher can plan with (host devices: the analytic
//!   `batch_duration`; the VPU fleet: a wave-latency model measured at
//!   construction);
//! * [`ServiceHook::busy_until`] exposes the device's backlog horizon so
//!   least-outstanding-work routing needs no bookkeeping of its own.
//!
//! [`MultiVpu`]: crate::multivpu::MultiVpu

use crate::target::{IntelCpu, IntelVpu, NvGpu};
use desim::{Duration, SimTime};
use myriad2::power::PowerModel;
use ncsw_obs::{BatchObs, Ctx, EnergyProfile, Event, Lane, Phase};

/// Watts to the integer milliwatts the energy meter integrates with.
fn mw(watts: f64) -> u64 {
    (watts * 1e3).round() as u64
}

/// Why a batch submission failed. The built-in device models never
/// fail; fault-injection wrappers (`ncsw-faults`) surface these so a
/// dispatcher can retry, fail over, and trip circuit breakers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The device is gone (stick unplugged, not yet reconnected).
    Unplugged,
    /// The batch started and died mid-execution (transient exec error).
    TransientExec,
    /// The dispatcher's per-batch timeout expired before results landed.
    Timeout,
}

impl FailureKind {
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Unplugged => "unplugged",
            FailureKind::TransientExec => "transient-exec",
            FailureKind::Timeout => "timeout",
        }
    }
}

/// A failed batch submission: the failure was *detected* at `at`
/// (virtual time burned by the attempt), and no results were produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServeError {
    /// Instant the host detected the failure (`>=` the submission
    /// instant; detection is never free).
    pub at: SimTime,
    pub kind: FailureKind,
}

/// Per-slot anomalies injected at the USB completion boundary. The
/// built-in device models always return a clean wire (`None` on
/// [`BatchRun::wire`]); fault wrappers (`ncsw-faults`) attach one of
/// these so the serving layer's end-to-end integrity checks have
/// something to catch. Slot indices are submission-order positions into
/// [`BatchRun::done`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireReport {
    /// Slots whose returned payload was silently bit-flipped in transit
    /// (the transfer itself reported success).
    pub corrupted: Vec<usize>,
    /// Slots whose completion was delivered twice (a retransmitted USB
    /// completion the host must dedup for exactly-once delivery).
    pub duplicated: Vec<usize>,
    /// Slots whose completion never arrived: the batch reports success
    /// but the slot's result is missing, detectable only by sequence
    /// tags once the rest of the batch has landed.
    pub dropped: Vec<usize>,
}

impl WireReport {
    pub fn is_clean(&self) -> bool {
        self.corrupted.is_empty() && self.duplicated.is_empty() && self.dropped.is_empty()
    }
}

/// Timing record of one served batch.
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Instant the device actually began (>= the submission instant).
    pub start: SimTime,
    /// Instant the last result returned to the host.
    pub end: SimTime,
    /// Per-image host-return instants, in submission order
    /// (`done.len() == batch`; host devices return the whole batch at
    /// once, the VPU pipeline streams results back per image).
    pub done: Vec<SimTime>,
    /// Wire-level completion anomalies; `None` on every clean transfer,
    /// so unwrapped devices (and fleets wrapped with an empty fault
    /// plan) stay byte-identical to the pre-gray-fault model.
    pub wire: Option<WireReport>,
}

/// A device a dynamic batcher can drive one batch at a time.
pub trait ServiceHook {
    /// Display label, e.g. `cpu`, `gpu`, `vpu x8`.
    fn label(&self) -> String;

    /// Submit `batch` images no earlier than `ready`; the device
    /// serializes with its own prior work and returns when each image's
    /// result lands back on the host.
    fn serve(&mut self, batch: usize, ready: SimTime) -> BatchRun;

    /// Jitter-free service-time estimate for a batch of this size (the
    /// calibrated cost model dispatch policies plan with).
    fn estimate(&self, batch: usize) -> Duration;

    /// Instant all previously submitted work completes (a fresh device
    /// reports its boot/allocation completion).
    fn busy_until(&self) -> SimTime;

    /// Batch size this device amortizes best (the paper's batch-8 sweet
    /// spot on the hosts; `devices` on the VPU fleet, whose sticks run
    /// one image each per pipeline wave).
    fn preferred_batch(&self) -> usize;

    /// Hard upper bound on a single submission, if any (GPU memory).
    fn max_batch(&self) -> Option<usize> {
        None
    }

    /// Busy/idle/TDP power rates the online energy meter integrates
    /// over this device's charged spans. The default is an unmetered
    /// all-zero profile so custom hooks keep compiling; the built-in
    /// devices derive theirs from the island/package models.
    fn energy_profile(&self) -> EnergyProfile {
        EnergyProfile::new(self.label(), 0, 0, 0)
    }

    /// [`ServiceHook::serve`] with observability: identical timing, but
    /// the device also emits its busy spans through `obs.rec` tagged
    /// with `obs`'s batch/request context. Host devices report one
    /// batch-level `Exec` span on their worker lane; the VPU fleet
    /// overrides this to emit per-image host, chip and USB-fabric spans.
    fn serve_obs(&mut self, batch: usize, ready: SimTime, obs: &mut BatchObs<'_>) -> BatchRun {
        let run = self.serve(batch, ready);
        if obs.enabled() {
            let ctx =
                Ctx { request_id: None, batch_id: Some(obs.batch_id), worker: Some(obs.worker) };
            obs.rec.record(Event::span(
                Phase::Exec,
                Lane::Worker(obs.worker),
                run.start,
                run.end,
                ctx,
            ));
        }
        run
    }

    /// Fallible [`ServiceHook::serve_obs`]: the submission may fail with
    /// a [`ServeError`] instead of producing results. The built-in
    /// devices never fail (the default is infallible); fault-injection
    /// wrappers override this, and the serving loop dispatches through
    /// it so every worker is injectable without modification.
    fn try_serve_obs(
        &mut self,
        batch: usize,
        ready: SimTime,
        obs: &mut BatchObs<'_>,
    ) -> Result<BatchRun, ServeError> {
        Ok(self.serve_obs(batch, ready, obs))
    }
}

impl ServiceHook for IntelCpu {
    fn label(&self) -> String {
        "cpu".to_string()
    }

    fn serve(&mut self, batch: usize, ready: SimTime) -> BatchRun {
        let cost = self.model().cost32.clone();
        let run = self.device_mut().run_batch(&cost, batch, ready);
        BatchRun { start: run.start, end: run.end, done: vec![run.end; batch], wire: None }
    }

    fn estimate(&self, batch: usize) -> Duration {
        self.device().batch_duration(&self.model().cost32, batch)
    }

    fn busy_until(&self) -> SimTime {
        self.device().now()
    }

    fn preferred_batch(&self) -> usize {
        8
    }

    fn energy_profile(&self) -> EnergyProfile {
        let cfg = self.device().config();
        EnergyProfile::new(self.label(), mw(cfg.tdp_w), mw(cfg.idle_w), mw(cfg.tdp_w))
    }
}

impl ServiceHook for NvGpu {
    fn label(&self) -> String {
        "gpu".to_string()
    }

    fn serve(&mut self, batch: usize, ready: SimTime) -> BatchRun {
        let cost = self.model().cost32.clone();
        let run = self.device_mut().run_batch(&cost, batch, ready);
        BatchRun { start: run.start, end: run.end, done: vec![run.end; batch], wire: None }
    }

    fn estimate(&self, batch: usize) -> Duration {
        self.device().batch_duration(&self.model().cost32, batch)
    }

    fn busy_until(&self) -> SimTime {
        self.device().now()
    }

    fn preferred_batch(&self) -> usize {
        8
    }

    fn max_batch(&self) -> Option<usize> {
        let cost = &self.model().cost32;
        let mut b = 1;
        while b < 4096 && self.device().batch_fits(cost, b + 1) {
            b += 1;
        }
        Some(b)
    }

    fn energy_profile(&self) -> EnergyProfile {
        let cfg = self.device().config();
        EnergyProfile::new(self.label(), mw(cfg.tdp_w), mw(cfg.idle_w), mw(cfg.tdp_w))
    }
}

impl ServiceHook for IntelVpu {
    fn label(&self) -> String {
        format!("vpu x{}", self.devices())
    }

    fn serve(&mut self, batch: usize, ready: SimTime) -> BatchRun {
        let report = self.pipeline_mut().run_pipeline_at(batch, ready);
        BatchRun { start: report.start, end: report.end, done: report.result_times, wire: None }
    }

    fn serve_obs(&mut self, batch: usize, ready: SimTime, obs: &mut BatchObs<'_>) -> BatchRun {
        let report = self.pipeline_mut().run_pipeline_obs(batch, ready, |_| None, obs);
        BatchRun { start: report.start, end: report.end, done: report.result_times, wire: None }
    }

    fn estimate(&self, batch: usize) -> Duration {
        let (first, per) = self.service_latency_model();
        let waves = batch.div_ceil(self.devices()) as u64;
        first + per * waves.saturating_sub(1)
    }

    fn busy_until(&self) -> SimTime {
        self.pipeline().busy_until()
    }

    fn preferred_batch(&self) -> usize {
        self.devices()
    }

    /// A `vpu xN` worker draws N chips' worth: every SHAVE island plus
    /// CMX/DDR active while a wave runs (900 mW/chip default), gated
    /// islands between batches (172 mW/chip), whole-stick peak power as
    /// the Eq. 1 TDP (2.5 W/stick, the paper's conservative framing).
    fn energy_profile(&self) -> EnergyProfile {
        let ncs = &self.pipeline().config().ncs;
        let pm = PowerModel { shave_islands: ncs.chip.shaves, ..PowerModel::default() };
        let d = self.devices() as u64;
        EnergyProfile::new(
            self.label(),
            d * pm.busy_mw(),
            d * pm.gated_mw(),
            d * mw(ncs.peak_power_w),
        )
    }
}

/// Which service-model component a causal what-if [`ScalePlan`]
/// targets. Each variant names one knob of the simulated hardware the
/// profiler can virtually speed up (factor < 1) or slow down
/// (factor > 1); the names match the trace-side latency segments the
/// analytical prediction scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ScaleComponent {
    /// Host→device input-tensor transfers (USB wire + command time).
    UsbWrite,
    /// Device→host result transfers.
    UsbRead,
    /// On-chip execution: the Myriad run on VPU workers (every internal
    /// unit clock scales together via `Myriad2Config::time_scaled`).
    Exec,
    /// The batcher's `max_wait` deadline — how long a batch may form.
    /// Applied at the serving layer via [`ScalePlan::max_wait`].
    BatchWait,
    /// Dispatch-side launch overheads: host thread spawn + LEON command
    /// processing on VPUs, per-batch framework overhead on hosts.
    Dispatch,
    /// The whole host (CPU/GPU) forward call, overhead + compute.
    Host,
}

impl ScaleComponent {
    pub const ALL: [ScaleComponent; 6] = [
        ScaleComponent::UsbWrite,
        ScaleComponent::UsbRead,
        ScaleComponent::Exec,
        ScaleComponent::BatchWait,
        ScaleComponent::Dispatch,
        ScaleComponent::Host,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            ScaleComponent::UsbWrite => "usb-write",
            ScaleComponent::UsbRead => "usb-read",
            ScaleComponent::Exec => "exec",
            ScaleComponent::BatchWait => "batch-wait",
            ScaleComponent::Dispatch => "dispatch",
            ScaleComponent::Host => "host",
        }
    }

    pub fn parse(s: &str) -> Option<ScaleComponent> {
        ScaleComponent::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// One counterfactual: scale `component`'s service model by `factor`.
///
/// The plan is applied at fleet-build time
/// (`FleetSpec::build_scaled` threads it into each worker's config) so
/// estimates, dispatch decisions and energy metering all see the scaled
/// hardware — the re-run is a real simulation of the faster component,
/// not a post-hoc edit. An identity plan (factor `1.0`) is
/// **byte-identical** to an unscaled build: every knob guards the
/// multiply, which the whatif passivity tests enforce end to end.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScalePlan {
    pub component: ScaleComponent,
    pub factor: f64,
}

/// `x` nanoseconds scaled by `f` (exact at `f == 1.0`).
fn scale_ns(x: u64, f: f64) -> u64 {
    (x as f64 * f).round() as u64
}

impl ScalePlan {
    pub fn new(component: ScaleComponent, factor: f64) -> ScalePlan {
        assert!(factor > 0.0, "scale factor must be positive");
        ScalePlan { component, factor }
    }

    /// The do-nothing plan every unscaled build is equivalent to.
    pub fn identity() -> ScalePlan {
        ScalePlan { component: ScaleComponent::Exec, factor: 1.0 }
    }

    pub fn is_identity(&self) -> bool {
        self.factor == 1.0
    }

    /// `component@factor`, e.g. `exec@0.5`.
    pub fn parse(s: &str) -> Option<ScalePlan> {
        let (c, f) = s.split_once('@')?;
        let component = ScaleComponent::parse(c)?;
        let factor: f64 = f.parse().ok()?;
        if factor > 0.0 {
            Some(ScalePlan { component, factor })
        } else {
            None
        }
    }

    /// CPU config with this plan applied.
    pub fn cpu_config(&self, base: hostsim::CpuConfig) -> hostsim::CpuConfig {
        if self.is_identity() {
            return base;
        }
        match self.component {
            ScaleComponent::Host => hostsim::CpuConfig { service_scale: self.factor, ..base },
            ScaleComponent::Dispatch => {
                hostsim::CpuConfig { batch_overhead: base.batch_overhead * self.factor, ..base }
            }
            _ => base,
        }
    }

    /// GPU config with this plan applied.
    pub fn gpu_config(&self, base: hostsim::GpuConfig) -> hostsim::GpuConfig {
        if self.is_identity() {
            return base;
        }
        match self.component {
            ScaleComponent::Host => hostsim::GpuConfig { service_scale: self.factor, ..base },
            ScaleComponent::Dispatch => {
                hostsim::GpuConfig { batch_overhead: base.batch_overhead * self.factor, ..base }
            }
            _ => base,
        }
    }

    /// VPU pipeline config with this plan applied.
    pub fn vpu_config(
        &self,
        mut base: crate::multivpu::MultiVpuConfig,
    ) -> crate::multivpu::MultiVpuConfig {
        if self.is_identity() {
            return base;
        }
        match self.component {
            ScaleComponent::UsbWrite => base.usb.write_scale = self.factor,
            ScaleComponent::UsbRead => base.usb.read_scale = self.factor,
            ScaleComponent::Exec => base.ncs.exec_scale = self.factor,
            ScaleComponent::Dispatch => {
                base.thread_spawn = base.thread_spawn * self.factor;
                base.ncs.risc_cmd_overhead_ns =
                    scale_ns(base.ncs.risc_cmd_overhead_ns, self.factor);
            }
            ScaleComponent::BatchWait | ScaleComponent::Host => {}
        }
        base
    }

    /// The batcher deadline under this plan (the serving layer applies
    /// it to `ServeConfig::max_wait`; every other component leaves the
    /// deadline alone).
    pub fn max_wait(&self, base: Duration) -> Duration {
        if self.component == ScaleComponent::BatchWait && !self.is_identity() {
            base * self.factor
        } else {
            base
        }
    }
}

impl std::fmt::Display for ScalePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.component.name(), self.factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelBundle;
    use vpu_nn::googlenet::Variant;

    fn model() -> ModelBundle {
        ModelBundle::googlenet_untrained(Variant::Full, 1)
    }

    #[test]
    fn hosts_serialize_consecutive_batches() {
        let mut cpu = IntelCpu::new(model());
        let a = cpu.serve(4, SimTime::ZERO);
        let b = cpu.serve(4, SimTime::ZERO);
        assert!(b.start >= a.end, "second batch must queue behind the first");
        assert_eq!(a.done.len(), 4);
        assert_eq!(cpu.busy_until(), b.end);
    }

    #[test]
    fn host_estimate_matches_nominal_latency() {
        let cpu = IntelCpu::new(model());
        // Paper anchor: 26.0 ms at batch 1.
        let ms = ServiceHook::estimate(&cpu, 1).as_millis();
        assert!((25.2..26.8).contains(&ms), "cpu estimate {ms} ms");
    }

    #[test]
    fn vpu_serves_incrementally_with_per_image_completions() {
        let mut vpu = IntelVpu::new(model(), 4);
        let boot = vpu.busy_until();
        let late = boot + Duration::from_millis(500.0);
        let run = vpu.serve(8, late);
        assert!(run.start >= late, "batch must not start before dispatch");
        assert_eq!(run.done.len(), 8);
        assert!(run.done.iter().all(|&t| t > run.start && t <= run.end));
        // Two waves on four sticks: completions are staggered, not
        // all-at-end like the host devices.
        assert!(run.done.iter().any(|&t| t < run.end));
    }

    #[test]
    fn vpu_estimate_tracks_wave_count() {
        let vpu = IntelVpu::new(model(), 4);
        let one = vpu.estimate(4);
        let three = vpu.estimate(12);
        // Paper anchor: one wave ~ a single-stick inference (~100.7 ms).
        let ms = one.as_millis();
        assert!((90.0..115.0).contains(&ms), "first wave {ms} ms");
        assert!(three > one * 2, "extra waves must add cost");
        // Steady state approaches the 8-stick per-image anchor shape:
        // marginal wave cost well below two serial inferences.
        assert!((three - one).as_millis() < 2.5 * ms);
    }

    #[test]
    fn host_serve_obs_matches_plain_timing_and_emits_batch_span() {
        let mut plain = IntelCpu::new(model());
        let mut observed = IntelCpu::new(model());
        let a = plain.serve(4, SimTime::ZERO);
        let mut log = ncsw_obs::EventLog::new();
        let ids = [10u64, 11, 12, 13];
        let b = observed.serve_obs(
            4,
            SimTime::ZERO,
            &mut BatchObs { rec: &mut log, batch_id: 3, worker: 2, ids: &ids },
        );
        assert_eq!(a.done, b.done, "instrumentation changed timing");
        assert_eq!(log.len(), 1, "hosts emit one batch-level span");
        let ev = log.events()[0];
        assert_eq!(ev.phase, Phase::Exec);
        assert_eq!(ev.lane, Lane::Worker(2));
        assert_eq!(ev.ctx.batch_id, Some(3));
        assert_eq!((ev.start, ev.end), (b.start, Some(b.end)));
    }

    #[test]
    fn energy_profiles_derive_from_the_power_models() {
        let cpu = IntelCpu::new(model());
        let p = cpu.energy_profile();
        assert_eq!((p.busy_mw, p.idle_mw, p.tdp_mw), (80_000, 15_000, 80_000));
        let gpu = NvGpu::new(model());
        let p = gpu.energy_profile();
        assert_eq!((p.busy_mw, p.idle_mw, p.tdp_mw), (80_000, 13_000, 80_000));
        // 4 sticks: 4 × (900 busy / 172 gated / 2500 peak) mW.
        let vpu = IntelVpu::new(model(), 4);
        let p = vpu.energy_profile();
        assert_eq!(p.label, "vpu x4");
        assert_eq!((p.busy_mw, p.idle_mw, p.tdp_mw), (3_600, 688, 10_000));
    }

    #[test]
    fn gpu_max_batch_bounded_by_memory() {
        let gpu = NvGpu::new(model());
        let cap = gpu.max_batch().expect("gpu reports a bound");
        assert!(cap >= 8, "paper sweeps to batch 8, must fit: {cap}");
        assert!(!gpu.device().batch_fits(&gpu.model().cost32, cap + 1));
    }
}
