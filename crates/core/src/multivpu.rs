//! The parallel multi-VPU execution pipeline (paper §III, Fig. 4).
//!
//! One (virtual) host thread per NCS device; images are assigned
//! round-robin; each thread keeps its device's FIFO full (depth 2) by
//! interleaving `load_tensor` and `get_result` in queueing order. The
//! interleaving across threads is event-driven: at every step the thread
//! whose next API call can start earliest executes it, which is how OS
//! scheduling resolves competing USB submissions in the real framework.

use crate::model::ModelBundle;
use desim::{Duration, SimTime, TraceLog};
use ncs_platform::usb::UsbConfig;
use ncs_platform::{Fleet, GraphHandle, Ncapi, NcsConfig, Topology};
use ncsw_obs::{BatchObs, Ctx, Event, GanttRecorder, Lane, Phase, Recorder};
use rand::Rng;
use vpu_num::{f16, rng};
use vpu_tensor::Tensor;

/// Pipeline construction parameters.
#[derive(Debug, Clone)]
pub struct MultiVpuConfig {
    pub devices: usize,
    pub topology: Topology,
    pub ncs: NcsConfig,
    /// USB fabric parameters (bandwidths, hub latency, fault injection).
    pub usb: UsbConfig,
    /// OpenMP thread spawn/wake overhead charged when the pipeline
    /// starts, per thread (the paper's "thread-management overhead").
    pub thread_spawn: Duration,
    /// Host scheduling jitter bound per API call (uniform 0..bound).
    pub host_jitter: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl MultiVpuConfig {
    pub fn paper_testbed(devices: usize) -> Self {
        MultiVpuConfig {
            devices,
            topology: Topology::PaperTestbed,
            ncs: NcsConfig::default(),
            usb: UsbConfig::default(),
            thread_spawn: Duration::from_micros(60.0),
            host_jitter: Duration::from_micros(120.0),
            seed: rng::DEFAULT_SEED,
        }
    }
}

/// Result of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    pub images: usize,
    pub devices: usize,
    /// First load call.
    pub start: SimTime,
    /// Last result returned to the host.
    pub end: SimTime,
    /// Host-return instant of each image's result, in image order.
    pub result_times: Vec<SimTime>,
    /// Real FP16 outputs when numerics were supplied.
    pub outputs: Vec<Option<Tensor<f16>>>,
    /// Joules consumed across all chips.
    pub energy_j: f64,
    /// Host + device execution spans for the Fig. 4 timeline.
    pub trace: TraceLog,
}

impl PipelineReport {
    pub fn makespan(&self) -> Duration {
        self.end - self.start
    }

    pub fn per_image(&self) -> Duration {
        self.makespan() / self.images.max(1) as u64
    }

    pub fn images_per_sec(&self) -> f64 {
        self.images as f64 / self.makespan().as_secs()
    }
}

/// The multi-stick pipeline (owned NCAPI + per-device graph handles).
pub struct MultiVpu {
    api: Ncapi,
    handles: Vec<GraphHandle>,
    cfg: MultiVpuConfig,
    /// All devices opened and graphs allocated by this instant.
    ready: SimTime,
    /// Completion instant of the previous pipeline run (host threads of a
    /// later run cannot start before it).
    last_end: SimTime,
    images_issued: u64,
}

impl MultiVpu {
    /// Open `cfg.devices` sticks, upload the model's FP16 graph to each.
    pub fn new(cfg: MultiVpuConfig, model: &ModelBundle) -> Self {
        assert!(cfg.devices > 0, "need at least one device");
        let fleet =
            Fleet::with_usb(cfg.devices, cfg.topology.clone(), cfg.ncs.clone(), cfg.usb.clone());
        let mut api = Ncapi::new(fleet);
        let mut handles = Vec::with_capacity(cfg.devices);
        let mut ready = SimTime::ZERO;
        for d in 0..cfg.devices {
            api.open_device(d, SimTime::ZERO).expect("open device");
            let (h, t) =
                api.alloc_graph(d, model.cost16.clone(), SimTime::ZERO).expect("alloc graph");
            handles.push(h);
            ready = SimTime::max_of(ready, t);
        }
        MultiVpu { api, handles, cfg, ready, last_end: ready, images_issued: 0 }
    }

    pub fn devices(&self) -> usize {
        self.cfg.devices
    }

    /// Instant the fleet finished booting/allocating.
    pub fn ready_at(&self) -> SimTime {
        self.ready
    }

    pub fn api(&self) -> &Ncapi {
        &self.api
    }

    /// Instant all previously submitted pipeline work completes (equals
    /// [`Self::ready_at`] before the first run).
    pub fn busy_until(&self) -> SimTime {
        self.last_end
    }

    pub fn config(&self) -> &MultiVpuConfig {
        &self.cfg
    }

    /// Run `count` inferences with no numerics (timing only).
    pub fn run_pipeline(&mut self, count: usize) -> PipelineReport {
        self.run_pipeline_with(count, |_| None)
    }

    /// Timing-only run whose host threads start no earlier than
    /// `not_before` — the incremental entry point an online batcher uses
    /// to submit a formed batch at its (virtual) dispatch instant.
    pub fn run_pipeline_at(&mut self, count: usize, not_before: SimTime) -> PipelineReport {
        self.run_pipeline_with_at(count, not_before, |_| None)
    }

    /// Run `count` inferences; `numerics(i)` may supply the real FP16
    /// output of image `i` (computed by `vpu-nn` — bit-exact device
    /// arithmetic), which rides through the device queue.
    pub fn run_pipeline_with(
        &mut self,
        count: usize,
        numerics: impl FnMut(usize) -> Option<Tensor<f16>>,
    ) -> PipelineReport {
        self.run_pipeline_with_at(count, SimTime::ZERO, numerics)
    }

    /// The general form: numerics plus an earliest-start bound.
    pub fn run_pipeline_with_at(
        &mut self,
        count: usize,
        not_before: SimTime,
        numerics: impl FnMut(usize) -> Option<Tensor<f16>>,
    ) -> PipelineReport {
        let mut null = ncsw_obs::NullRecorder;
        self.run_pipeline_obs(count, not_before, numerics, &mut BatchObs::disabled(&mut null))
    }

    /// Instrumented form: identical timing, but every host `load`/`read`
    /// span, on-chip `exec` span and USB-fabric leg is also emitted as a
    /// structured [`Event`] (with `obs`'s request context) through
    /// `obs.rec`. With a disabled recorder this path does no extra work
    /// beyond the legacy trace it always built, so timing and RNG
    /// consumption are bit-identical.
    pub fn run_pipeline_obs(
        &mut self,
        count: usize,
        not_before: SimTime,
        mut numerics: impl FnMut(usize) -> Option<Tensor<f16>>,
        obs: &mut BatchObs<'_>,
    ) -> PipelineReport {
        assert!(count > 0, "need at least one image");
        let recording = obs.enabled();
        if recording {
            self.api.fleet_mut().bus.set_tap(true);
        }
        let worker = obs.worker;
        let n = self.cfg.devices;
        let mut jitter = rng::stream(self.cfg.seed, "host-jitter");
        // Skip jitter state consumed by earlier runs on this pipeline so
        // back-to-back subsets see fresh but deterministic jitter.
        for _ in 0..self.images_issued * 2 {
            let _: u64 = jitter.gen();
        }

        // Per-thread state.
        struct Thread {
            device: usize,
            images: Vec<usize>,
            next_load: usize,
            next_get: usize,
            cursor: SimTime,
        }
        let mut threads: Vec<Thread> = (0..n)
            .map(|d| Thread {
                device: d,
                images: (d..count).step_by(n).collect(),
                next_load: 0,
                next_get: 0,
                cursor: SimTime::max_of(not_before, SimTime::max_of(self.ready, self.last_end))
                    + self.cfg.thread_spawn * (d as u64 + 1),
            })
            .collect();

        let start = threads.iter().map(|t| t.cursor).min().unwrap();
        let mut result_times = vec![SimTime::ZERO; count];
        let mut outputs: Vec<Option<Tensor<f16>>> = (0..count).map(|_| None).collect();
        // The legacy Fig. 4 trace is now rebuilt from the same events the
        // recorder sees, via the Gantt adapter.
        let mut gantt = GanttRecorder::new();
        let depth = self.cfg.ncs.fifo_depth;
        let mut energy = 0.0f64;

        fn usb_lane(worker: u32, hub: Option<usize>) -> Lane {
            match hub {
                None => Lane::UsbRoot { worker },
                Some(h) => Lane::UsbHub { worker, hub: h as u32 },
            }
        }

        // Event-driven interleaving: always advance the thread whose next
        // API call can begin earliest.
        loop {
            let candidate = threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.next_get < t.images.len())
                .min_by_key(|(i, t)| (t.cursor, *i));
            let Some((ti, _)) = candidate else { break };
            let t = &mut threads[ti];
            let h = self.handles[t.device];
            // Keep the device FIFO full: load while slots remain and
            // images remain; otherwise collect the oldest result.
            let want_load = t.next_load < t.images.len() && t.next_load - t.next_get < depth;
            let dev = t.device as u32;
            if want_load {
                let img = t.images[t.next_load];
                let j = Duration::from_nanos(jitter.gen_range(0..=self.cfg.host_jitter.nanos()));
                let call_at = t.cursor + j;
                let returned =
                    self.api.load_tensor(h, call_at, numerics(img)).expect("load_tensor");
                let ctx = if recording { obs.ctx(img) } else { Ctx::NONE };
                let load = Event::span(
                    Phase::UsbWrite,
                    Lane::Host { worker, dev },
                    call_at,
                    returned,
                    ctx,
                );
                gantt.record(load);
                if recording {
                    obs.rec.record(load);
                    for s in self.api.fleet_mut().bus.take_tap() {
                        obs.rec.record(Event::span(
                            Phase::UsbWrite,
                            usb_lane(worker, s.hub),
                            s.start,
                            s.end,
                            ctx,
                        ));
                    }
                }
                t.cursor = returned;
                t.next_load += 1;
                self.images_issued += 1;
            } else {
                let img = t.images[t.next_get];
                let j = Duration::from_nanos(jitter.gen_range(0..=self.cfg.host_jitter.nanos()));
                let call_at = t.cursor + j;
                let res = self.api.get_result(h, call_at).expect("get_result");
                let ctx = if recording { obs.ctx(img) } else { Ctx::NONE };
                let read = Event::span(
                    Phase::UsbRead,
                    Lane::Host { worker, dev },
                    res.completion,
                    res.returned_at,
                    ctx,
                );
                let exec = Event::span(
                    Phase::Exec,
                    Lane::Vpu { worker, dev },
                    res.run.start,
                    res.run.end,
                    ctx,
                );
                gantt.record(read);
                gantt.record(exec);
                if recording {
                    obs.rec.record(read);
                    obs.rec.record(exec);
                    for s in self.api.fleet_mut().bus.take_tap() {
                        obs.rec.record(Event::span(
                            Phase::UsbRead,
                            usb_lane(worker, s.hub),
                            s.start,
                            s.end,
                            ctx,
                        ));
                    }
                }
                energy += res.run.energy_j;
                result_times[img] = res.returned_at;
                outputs[img] = res.output;
                t.cursor = res.returned_at;
                t.next_get += 1;
            }
        }

        if recording {
            self.api.fleet_mut().bus.set_tap(false);
        }
        let trace = gantt.into_log();
        let end = *result_times.iter().max().unwrap();
        self.last_end = end;
        PipelineReport {
            images: count,
            devices: n,
            start,
            end,
            result_times,
            outputs,
            energy_j: energy,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpu_nn::googlenet::Variant;

    fn model() -> ModelBundle {
        // Timing-only tests: untrained full-geometry GoogLeNet.
        ModelBundle::googlenet_untrained(Variant::Full, 1)
    }

    #[test]
    fn single_vpu_matches_serial_latency() {
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(1), &model());
        let r = mv.run_pipeline(4);
        // Serial on one stick: ~100.7 ms per image.
        let per = r.per_image().as_millis();
        assert!((98.0..104.0).contains(&per), "1-VPU per-image {per} ms");
    }

    #[test]
    fn eight_vpus_reach_paper_throughput() {
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(8), &model());
        let r = mv.run_pipeline(64);
        let per = r.per_image().as_millis();
        // Paper: 12.9 ms per inference (77.2 img/s) at 8 sticks.
        assert!((12.0..14.2).contains(&per), "8-VPU per-image {per} ms");
        let ips = r.images_per_sec();
        assert!((70.0..84.0).contains(&ips), "8-VPU {ips} img/s");
    }

    #[test]
    fn scaling_is_near_ideal() {
        let m = model();
        let per_1 = {
            let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(1), &m);
            mv.run_pipeline(8).per_image().as_millis()
        };
        let per_8 = {
            let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(8), &m);
            mv.run_pipeline(64).per_image().as_millis()
        };
        let scaling = per_1 / per_8;
        // Paper: "close to 8x" with a small transfer/thread penalty.
        assert!((7.0..8.0).contains(&scaling), "scaling {scaling}");
    }

    #[test]
    fn results_arrive_in_round_robin_queue_order_per_device() {
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(4), &model());
        let r = mv.run_pipeline(16);
        // Image i and i+4 run on the same device; FIFO order holds.
        for d in 0..4 {
            let mut prev = SimTime::ZERO;
            for img in (d..16).step_by(4) {
                assert!(r.result_times[img] > prev, "device {d} out of order");
                prev = r.result_times[img];
            }
        }
    }

    #[test]
    fn trace_shows_overlap_between_devices() {
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(4), &model());
        let r = mv.run_pipeline(8);
        let lanes = r.trace.lanes();
        assert!(lanes.iter().filter(|l| l.starts_with("vpu")).count() == 4);
        // Execs on different devices must overlap in time.
        let v0 = r.trace.lane_spans("vpu0");
        let v3 = r.trace.lane_spans("vpu3");
        assert!(!v0.is_empty() && !v3.is_empty());
        assert!(
            v0[0].start < v3[0].end && v3[0].start < v0[0].end,
            "no overlap between vpu0 and vpu3 first execs"
        );
    }

    #[test]
    fn energy_accumulates_per_inference() {
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(2), &model());
        let r2 = mv.run_pipeline(2);
        let mut mv2 = MultiVpu::new(MultiVpuConfig::paper_testbed(2), &model());
        let r8 = mv2.run_pipeline(8);
        assert!(r8.energy_j > r2.energy_j * 3.0);
        // Per-inference energy ~0.07 J on the chip.
        let per = r8.energy_j / 8.0;
        assert!((0.02..0.15).contains(&per), "energy {per} J/inference");
    }

    #[test]
    fn numerics_ride_through_the_pipeline() {
        use vpu_tensor::Shape;
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(2), &model());
        let r = mv.run_pipeline_with(4, |i| {
            Some(Tensor::<f16>::full(Shape::vector(1, 4), f16::from_f32(i as f32)))
        });
        for (i, out) in r.outputs.iter().enumerate() {
            let out = out.as_ref().expect("output present");
            assert_eq!(out.as_slice()[0].to_f32(), i as f32);
        }
    }

    #[test]
    fn observed_run_matches_plain_run_and_emits_request_spans() {
        let m = model();
        let plain = MultiVpu::new(MultiVpuConfig::paper_testbed(4), &m).run_pipeline(8);
        let mut log = ncsw_obs::EventLog::new();
        let ids: Vec<u64> = (100..108).collect();
        let mut obs = BatchObs { rec: &mut log, batch_id: 7, worker: 1, ids: &ids };
        let observed = MultiVpu::new(MultiVpuConfig::paper_testbed(4), &m).run_pipeline_obs(
            8,
            SimTime::ZERO,
            |_| None,
            &mut obs,
        );
        assert_eq!(plain.result_times, observed.result_times, "instrumentation changed timing");
        assert_eq!(plain.trace, observed.trace, "legacy Fig. 4 trace must be preserved");
        // Every image gets a write/exec/read triple tagged with its id.
        for id in 100..108u64 {
            let evs = log.for_request(id);
            assert!(!evs.is_empty(), "no events for request {id}");
            for phase in [Phase::UsbWrite, Phase::Exec, Phase::UsbRead] {
                assert!(evs.iter().any(|e| e.phase == phase), "request {id} missing {phase:?}");
            }
        }
        // USB fabric occupancy surfaced: root always, hub at 4 sticks.
        assert!(log.events().iter().any(|e| matches!(e.lane, Lane::UsbRoot { .. })));
        assert!(log.events().iter().any(|e| matches!(e.lane, Lane::UsbHub { .. })));
        // Batch context propagates to every event.
        assert!(log.events().iter().all(|e| e.ctx.batch_id == Some(7) && e.ctx.worker == Some(1)));
    }

    #[test]
    fn jitter_makes_runs_differ_but_reruns_identical() {
        let m = model();
        let r1 = MultiVpu::new(MultiVpuConfig::paper_testbed(2), &m).run_pipeline(8);
        let r2 = MultiVpu::new(MultiVpuConfig::paper_testbed(2), &m).run_pipeline(8);
        assert_eq!(r1.result_times, r2.result_times, "same seed must reproduce");
        let mut cfg = MultiVpuConfig::paper_testbed(2);
        cfg.seed = 999;
        let r3 = MultiVpu::new(cfg, &m).run_pipeline(8);
        assert_ne!(r1.result_times, r3.result_times, "different seed must differ");
    }
}
