//! Experiment runners: glue sources, targets and metrics into the
//! figure-shaped measurements.

use crate::metrics::{accuracy_report, AccuracyReport, Prediction, ThroughputReport};
use crate::model::ModelBundle;
use crate::source::SourceImage;
use crate::target::TargetDevice;
use rayon::prelude::*;
use vpu_num::f16;
use vpu_tensor::Element;

/// Fig. 6a shape: throughput of one target over several subsets.
pub fn throughput_per_subset(
    target: &mut dyn TargetDevice,
    subsets: usize,
    images_per_subset: usize,
    batch: usize,
) -> Vec<ThroughputReport> {
    (0..subsets).map(|_| target.run_throughput(images_per_subset, batch)).collect()
}

/// Fig. 6b shape: per-image latency (ms) at each batch size, normalized
/// to the batch-1 latency by the caller.
pub fn latency_curve(
    mut make_target: impl FnMut(usize) -> Box<dyn TargetDevice>,
    batches: &[usize],
    images_per_point: usize,
) -> Vec<(usize, f64)> {
    batches
        .iter()
        .map(|&b| {
            let mut t = make_target(b);
            let images = images_per_point.max(b) / b * b;
            let r = t.run_throughput(images, b);
            (b, r.per_image_ms())
        })
        .collect()
}

/// Classify a whole source on the FP32 path (rayon-parallel; real
/// arithmetic, no timing).
pub fn predictions_fp32(model: &ModelBundle, source: &dyn SourceImage) -> Vec<Prediction> {
    predict_generic(model.net32.as_ref(), source, |img| img.clone())
}

/// Classify a whole source on the FP16 path (the NCS graph-file
/// quantization followed by binary16 inference).
pub fn predictions_fp16(model: &ModelBundle, source: &dyn SourceImage) -> Vec<Prediction> {
    predict_generic(model.net16.as_ref(), source, |img| img.quantize_fp16())
}

fn predict_generic<E: Element>(
    net: &vpu_nn::graph::CompiledNetwork<E>,
    source: &dyn SourceImage,
    prep: impl Fn(&vpu_tensor::Tensor<f32>) -> vpu_tensor::Tensor<E> + Sync,
) -> Vec<Prediction> {
    (0..source.len())
        .into_par_iter()
        .map(|i| {
            let labelled = source.fetch(i);
            let input = prep(&labelled.pixels);
            let out = net.forward(&input);
            let (predicted, confidence) = out.argmax_item(0);
            let probs: Vec<f32> = out.item(0).iter().map(|v| v.to_f32()).collect();
            Prediction {
                image: i,
                label: labelled.label,
                predicted,
                confidence,
                label_confidence: probs[labelled.label],
                label_rank: crate::metrics::label_rank(&probs, labelled.label),
            }
        })
        .collect()
}

/// Fig. 7a shape: top-1 error per subset for one precision path.
pub fn accuracy_per_subset(
    model: &ModelBundle,
    folders: &[crate::source::ImageFolder],
    fp16: bool,
) -> Vec<AccuracyReport> {
    folders
        .iter()
        .map(|f| {
            let preds = if fp16 { predictions_fp16(model, f) } else { predictions_fp32(model, f) };
            accuracy_report(if fp16 { "vpu-fp16" } else { "cpu-fp32" }, &preds)
        })
        .collect()
}

/// Run the FP16 predictions *through the simulated multi-VPU pipeline*
/// so the real outputs ride the virtual devices (used by the examples;
/// produces identical numbers to [`predictions_fp16`] by construction).
pub fn predictions_fp16_on_device(
    model: &ModelBundle,
    source: &dyn SourceImage,
    vpu: &mut crate::multivpu::MultiVpu,
) -> Vec<Prediction> {
    // Real arithmetic first (parallel), then replay through the pipeline.
    let outputs: Vec<vpu_tensor::Tensor<f16>> = (0..source.len())
        .into_par_iter()
        .map(|i| {
            let labelled = source.fetch(i);
            model.net16.forward(&labelled.pixels.quantize_fp16())
        })
        .collect();
    let report = vpu.run_pipeline_with(source.len(), |i| Some(outputs[i].clone()));
    report
        .outputs
        .iter()
        .enumerate()
        .map(|(i, out)| {
            let out = out.as_ref().expect("pipeline must return outputs");
            let labelled = source.fetch(i);
            let (predicted, confidence) = out.argmax_item(0);
            let probs: Vec<f32> = out.item(0).iter().map(|v| v.to_f32()).collect();
            Prediction {
                image: i,
                label: labelled.label,
                predicted,
                confidence,
                label_confidence: probs[labelled.label],
                label_rank: crate::metrics::label_rank(&probs, labelled.label),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::confidence_diff;
    use crate::multivpu::MultiVpuConfig;
    use crate::source::ImageFolder;
    use crate::target::{IntelCpu, IntelVpu, NvGpu};
    use ilsvrc_sim::{pseudo_train, DatasetConfig, ValidationSet};
    use std::sync::Arc;
    use vpu_nn::googlenet::{self, Variant};
    use vpu_tensor::Shape;

    fn trained_model_and_set() -> (ModelBundle, Arc<ValidationSet>) {
        let spec = Arc::new(googlenet::tiny());
        let mut cfg = DatasetConfig::ilsvrc_like(10, 50, Shape::chw(3, 32, 32), 11);
        cfg.sigma = 0.25;
        cfg.distractor_mix = 0.0;
        let set = Arc::new(ValidationSet::new(cfg));
        let weights = pseudo_train(&spec, set.generator(), 11);
        (ModelBundle::deploy(spec, weights), set)
    }

    #[test]
    fn throughput_per_subset_gives_five_bars() {
        let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
        let mut cpu = IntelCpu::new(model);
        let reports = throughput_per_subset(&mut cpu, 5, 40, 8);
        assert_eq!(reports.len(), 5);
        for r in &reports {
            assert!((40.0..48.0).contains(&r.images_per_sec()), "{}", r.images_per_sec());
        }
        // Jitter makes the bars differ slightly.
        let v: Vec<f64> = reports.iter().map(|r| r.images_per_sec()).collect();
        assert!(v.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn latency_curve_shapes() {
        let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
        let cpu_curve =
            latency_curve(|_| Box::new(IntelCpu::new(model.clone())), &[1, 2, 4, 8], 16);
        let t1 = cpu_curve[0].1;
        let t8 = cpu_curve[3].1;
        assert!((1.05..1.25).contains(&(t1 / t8)), "CPU scaling {}", t1 / t8);
        let gpu_curve = latency_curve(|_| Box::new(NvGpu::new(model.clone())), &[1, 8], 16);
        let g = gpu_curve[0].1 / gpu_curve[1].1;
        assert!((1.75..2.1).contains(&g), "GPU scaling {g}");
    }

    #[test]
    fn fp32_and_fp16_predictions_close_but_not_identical() {
        let (model, set) = trained_model_and_set();
        let folder = ImageFolder::new(set, 0);
        let p32 = predictions_fp32(&model, &folder);
        let p16 = predictions_fp16(&model, &folder);
        assert_eq!(p32.len(), 10);
        let r32 = accuracy_report("cpu", &p32);
        let r16 = accuracy_report("vpu", &p16);
        // Close error rates (paper: 32.01% vs 31.92%).
        assert!((r32.top1_error() - r16.top1_error()).abs() <= 0.2);
        let diff = confidence_diff(&p32, &p16);
        assert!(diff.images_compared > 0);
        assert!(diff.mean_abs_diff > 0.0, "fp16 confidences must differ");
        assert!(diff.mean_abs_diff < 0.05, "drift too large: {}", diff.mean_abs_diff);
    }

    #[test]
    fn accuracy_per_subset_shapes() {
        let (model, set) = trained_model_and_set();
        let folders = ImageFolder::all_subsets(set);
        let reports = accuracy_per_subset(&model, &folders, false);
        assert_eq!(reports.len(), 5);
        for r in &reports {
            assert_eq!(r.images, 10);
            assert!(r.top1_error() <= 1.0);
        }
    }

    #[test]
    fn on_device_predictions_match_direct_fp16() {
        let (model, set) = trained_model_and_set();
        let folder = ImageFolder::new(set, 0);
        let direct = predictions_fp16(&model, &folder);
        let mut mv = crate::multivpu::MultiVpu::new(MultiVpuConfig::paper_testbed(2), &model);
        let on_dev = predictions_fp16_on_device(&model, &folder, &mut mv);
        assert_eq!(direct.len(), on_dev.len());
        for (a, b) in direct.iter().zip(&on_dev) {
            assert_eq!(a.predicted, b.predicted);
            assert_eq!(a.confidence, b.confidence);
        }
    }

    #[test]
    fn vpu_throughput_runner_integration() {
        let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
        let mut vpu = IntelVpu::new(model, 2);
        let reports = throughput_per_subset(&mut vpu, 2, 8, 2);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            // 2 sticks: ~2x single-stick throughput (~19.8 img/s).
            assert!((17.0..22.0).contains(&r.images_per_sec()), "{}", r.images_per_sec());
        }
    }
}
