//! `ncsw` — the framework CLI, shaped after the paper's public tool.
//!
//! ```text
//! ncsw info
//! ncsw classify  [--target cpu|gpu|vpu] [--devices N] [--images N] [--seed S]
//! ncsw benchmark [--target cpu|gpu|vpu] [--batch N] [--images N]
//! ```
//!
//! `classify` runs real inference over a synthetic validation folder and
//! prints per-image labels with confidences (FP16 on the VPU target,
//! FP32 on the hosts). `benchmark` measures simulated throughput with
//! the full-geometry GoogLeNet work profile.

use std::process::ExitCode;
use std::sync::Arc;

use ilsvrc_sim::{pseudo_train, DatasetConfig, ValidationSet};
use ncsw::runner::{predictions_fp16, predictions_fp32};
use ncsw::{ImageFolder, IntelCpu, IntelVpu, ModelBundle, NvGpu, TargetDevice};
use vpu_nn::googlenet::Variant;

struct Args {
    command: String,
    target: String,
    devices: usize,
    images: usize,
    batch: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        target: "vpu".into(),
        devices: 1,
        images: 20,
        batch: 8,
        seed: 2012,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--target" => args.target = take("--target")?,
            "--devices" => {
                args.devices = take("--devices")?.parse().map_err(|e| format!("--devices: {e}"))?
            }
            "--images" => {
                args.images = take("--images")?.parse().map_err(|e| format!("--images: {e}"))?
            }
            "--batch" => {
                args.batch = take("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?
            }
            "--seed" => args.seed = take("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            other if args.command.is_empty() && !other.starts_with('-') => {
                args.command = other.to_string();
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if args.command.is_empty() {
        return Err("missing command".into());
    }
    if !matches!(args.target.as_str(), "cpu" | "gpu" | "vpu") {
        return Err(format!("unknown target '{}'", args.target));
    }
    Ok(args)
}

fn info() {
    let cost = ModelBundle::paper_cost_fp16();
    println!("NCSw — Neural Compute Stick Wrapper (simulated testbed)");
    println!("  sources: ImageFolder (synthetic ILSVRC-2012), MpiStream");
    println!("  targets: cpu (Caffe-MKL model), gpu (Caffe-cuDNN model), vpu (NCAPI multi-stick)");
    println!(
        "  network: {} — {:.2} GMAC/inference, {:.1} MB fp16 graph",
        cost.network,
        cost.total_macs as f64 / 1e9,
        cost.total_weight_bytes() as f64 / 1e6
    );
    println!("  chip:    Myriad 2 MA2450 — 12 SHAVEs @ 600 MHz, 2 MB CMX, 4 GB LPDDR3");
    println!("  anchors: 26.0 / 25.9 / 100.7 ms batch-1 latency (cpu/gpu/vpu)");
    println!("\npaper testbed topology (Fig. 5):");
    let fleet = ncs_platform::Fleet::new(
        8,
        ncs_platform::Topology::PaperTestbed,
        ncs_platform::NcsConfig::default(),
    );
    print!("{}", fleet.describe());
}

fn classify(args: &Args) -> Result<(), String> {
    let variant = Variant::Tiny;
    let spec = Arc::new(variant.build());
    // One subset must hold all requested images (the set splits 5 ways).
    let total = args.images.max(1) * 5;
    let mut cfg = DatasetConfig::ilsvrc_like(10, total, variant.input_shape(), args.seed);
    cfg.sigma = 0.15;
    cfg.distractor_mix = 0.05;
    let set = Arc::new(ValidationSet::new(cfg));
    let weights = pseudo_train(&spec, set.generator(), args.seed);
    let model = ModelBundle::deploy(spec, weights);
    let folder = ImageFolder::new(set.clone(), 0);

    let preds = match args.target.as_str() {
        "vpu" => predictions_fp16(&model, &folder),
        _ => predictions_fp32(&model, &folder),
    };
    let shown = preds.len().min(args.images);
    println!(
        "classifying {} images on target '{}' ({}):",
        shown,
        args.target,
        if args.target == "vpu" { "fp16" } else { "fp32" }
    );
    for p in preds.iter().take(shown) {
        let truth = set.synsets().get(p.label);
        let guess = set.synsets().get(p.predicted);
        println!(
            "  image {:>4}: {} ({:.1}%)  truth: {} {}",
            p.image,
            guess.name,
            p.confidence * 100.0,
            truth.name,
            if p.correct() { "✓" } else { "✗" }
        );
    }
    let wrong = preds.iter().take(shown).filter(|p| !p.correct()).count();
    println!("top-1 error: {:.1}%", wrong as f64 / shown as f64 * 100.0);
    Ok(())
}

fn benchmark(args: &Args) -> Result<(), String> {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let images = args.images.max(args.batch) / args.batch * args.batch;
    let mut target: Box<dyn TargetDevice> = match args.target.as_str() {
        "cpu" => Box::new(IntelCpu::new(model)),
        "gpu" => Box::new(NvGpu::new(model)),
        // The framework couples batch size to active sticks; --devices
        // overrides when given.
        _ => {
            let n = if args.devices > 1 { args.devices } else { args.batch };
            Box::new(IntelVpu::new(model, n))
        }
    };
    let batch = if args.target == "vpu" && args.devices > 1 { args.devices } else { args.batch };
    let images = images.max(batch) / batch * batch;
    let r = target.run_throughput(images, batch);
    println!(
        "target {} | batch {} | {} images: {:.1} img/s ({:.2} ms/image, {:.2} img/W)",
        target.name(),
        batch,
        images,
        r.images_per_sec(),
        r.per_image_ms(),
        r.images_per_watt(target.tdp_w(batch)),
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: ncsw <info|classify|benchmark> [--target cpu|gpu|vpu] [--devices N] [--images N] [--batch N] [--seed S]");
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "info" => {
            info();
            Ok(())
        }
        "classify" => classify(&args),
        "benchmark" => benchmark(&args),
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
