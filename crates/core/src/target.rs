//! Target devices (paper Fig. 3, right side).

use crate::metrics::ThroughputReport;
use crate::model::ModelBundle;
use crate::multivpu::{MultiVpu, MultiVpuConfig};
use desim::{Duration, SimTime};
use hostsim::{CpuConfig, CpuDevice, GpuConfig, GpuDevice};
use vpu_tensor::Tensor;

/// Abstract inference target — `TargetDevice` in the paper's class
/// diagram. A target can (a) *simulate* the time to chew through a
/// stream of images at a given batch size and (b) *classify* an image
/// for real at its native precision.
pub trait TargetDevice {
    fn name(&self) -> &str;

    /// TDP charged in Eq. (1) at a given batch size (the VPU's scales
    /// with the number of active sticks).
    fn tdp_w(&self, batch: usize) -> f64;

    /// Process `images` inputs in batches of `batch`; returns the
    /// throughput report with per-window samples for error bars.
    fn run_throughput(&mut self, images: usize, batch: usize) -> ThroughputReport;

    /// Classify one preprocessed f32 image; returns the probability
    /// vector widened to f32 (the VPU computes in binary16 internally).
    fn classify(&self, image: &Tensor<f32>) -> Vec<f32>;
}

/// The Caffe-MKL CPU target.
pub struct IntelCpu {
    dev: CpuDevice,
    model: ModelBundle,
}

impl IntelCpu {
    pub fn new(model: ModelBundle) -> Self {
        IntelCpu { dev: CpuDevice::new(CpuConfig::default()), model }
    }

    pub fn with_config(model: ModelBundle, cfg: CpuConfig) -> Self {
        IntelCpu { dev: CpuDevice::new(cfg), model }
    }

    pub fn device(&self) -> &CpuDevice {
        &self.dev
    }

    pub fn device_mut(&mut self) -> &mut CpuDevice {
        &mut self.dev
    }

    pub fn model(&self) -> &ModelBundle {
        &self.model
    }
}

impl TargetDevice for IntelCpu {
    fn name(&self) -> &str {
        "cpu"
    }

    fn tdp_w(&self, _batch: usize) -> f64 {
        self.dev.config().tdp_w
    }

    fn run_throughput(&mut self, images: usize, batch: usize) -> ThroughputReport {
        host_throughput("cpu", images, batch, |b, ready| {
            let run = self.dev.run_batch(&self.model.cost32, b, ready);
            (run.start, run.end)
        })
    }

    fn classify(&self, image: &Tensor<f32>) -> Vec<f32> {
        self.model.net32.forward(image).into_vec()
    }
}

/// The Caffe-cuDNN GPU target.
pub struct NvGpu {
    dev: GpuDevice,
    model: ModelBundle,
}

impl NvGpu {
    pub fn new(model: ModelBundle) -> Self {
        NvGpu { dev: GpuDevice::new(GpuConfig::default()), model }
    }

    pub fn with_config(model: ModelBundle, cfg: GpuConfig) -> Self {
        NvGpu { dev: GpuDevice::new(cfg), model }
    }

    pub fn device(&self) -> &GpuDevice {
        &self.dev
    }

    pub fn device_mut(&mut self) -> &mut GpuDevice {
        &mut self.dev
    }

    pub fn model(&self) -> &ModelBundle {
        &self.model
    }
}

impl TargetDevice for NvGpu {
    fn name(&self) -> &str {
        "gpu"
    }

    fn tdp_w(&self, _batch: usize) -> f64 {
        self.dev.config().tdp_w
    }

    fn run_throughput(&mut self, images: usize, batch: usize) -> ThroughputReport {
        host_throughput("gpu", images, batch, |b, ready| {
            let run = self.dev.run_batch(&self.model.cost32, b, ready);
            (run.start, run.end)
        })
    }

    fn classify(&self, image: &Tensor<f32>) -> Vec<f32> {
        // cuDNN is IEEE f32 like MKL; the paper confirms the GPU's
        // confidences match the CPU's (§IV-B footnote).
        self.model.net32.forward(image).into_vec()
    }
}

/// The multi-stick VPU target. The paper couples the number of active
/// sticks to the batch size, so `run_throughput` requires
/// `batch == devices`.
pub struct IntelVpu {
    mv: MultiVpu,
    model: ModelBundle,
    /// Calibrated latency model for online dispatch: makespan of one
    /// pipeline wave (`devices` images) and the marginal cost of each
    /// further wave, measured on a throwaway pipeline at construction.
    svc_first_wave: Duration,
    svc_per_wave: Duration,
}

impl IntelVpu {
    pub fn new(model: ModelBundle, devices: usize) -> Self {
        IntelVpu::with_config(model, MultiVpuConfig::paper_testbed(devices))
    }

    pub fn with_config(model: ModelBundle, cfg: MultiVpuConfig) -> Self {
        let n = cfg.devices;
        // Calibrate the dispatch-time estimate on throwaway pipelines so
        // the served instance's virtual clock stays untouched: one wave
        // gives the fill latency, three waves give the steady-state
        // marginal wave cost.
        let one = MultiVpu::new(cfg.clone(), &model).run_pipeline(n).makespan();
        let three = MultiVpu::new(cfg.clone(), &model).run_pipeline(3 * n).makespan();
        let per_wave = if three > one { (three - one) / 2 } else { one };
        let mv = MultiVpu::new(cfg, &model);
        IntelVpu { mv, model, svc_first_wave: one, svc_per_wave: per_wave }
    }

    pub fn devices(&self) -> usize {
        self.mv.devices()
    }

    pub fn pipeline_mut(&mut self) -> &mut MultiVpu {
        &mut self.mv
    }

    pub fn pipeline(&self) -> &MultiVpu {
        &self.mv
    }

    /// `(first_wave, per_wave)` of the calibrated latency model.
    pub fn service_latency_model(&self) -> (Duration, Duration) {
        (self.svc_first_wave, self.svc_per_wave)
    }
}

impl TargetDevice for IntelVpu {
    fn name(&self) -> &str {
        "vpu"
    }

    fn tdp_w(&self, batch: usize) -> f64 {
        // One stick's peak TDP per active VPU (Fig. 8a's accounting).
        self.mv.api().fleet().devices[0].config().peak_power_w * batch as f64
    }

    fn run_throughput(&mut self, images: usize, batch: usize) -> ThroughputReport {
        assert_eq!(
            batch,
            self.mv.devices(),
            "the paper couples batch size to the number of active VPUs"
        );
        let report = self.mv.run_pipeline(images);
        // Windows of `batch` results give the per-window samples.
        let mut windows = Vec::new();
        let mut window_start = report.start;
        let mut i = 0;
        while i + batch <= images {
            let end =
                (i..i + batch).map(|k| report.result_times[k]).max().expect("non-empty window");
            windows.push(end - window_start);
            window_start = end;
            i += batch;
        }
        if windows.is_empty() {
            windows.push(report.end - report.start);
        }
        ThroughputReport::from_window_times("vpu", batch, batch, &windows)
    }

    fn classify(&self, image: &Tensor<f32>) -> Vec<f32> {
        let input = image.quantize_fp16();
        self.model.net16.forward(&input).as_slice().iter().map(|v| v.to_f32()).collect()
    }
}

/// Shared host-device throughput loop: serial batches, window = batch.
fn host_throughput(
    name: &str,
    images: usize,
    batch: usize,
    mut run: impl FnMut(usize, SimTime) -> (SimTime, SimTime),
) -> ThroughputReport {
    assert!(images >= batch, "need at least one full batch");
    let full_batches = images / batch;
    let mut windows: Vec<Duration> = Vec::with_capacity(full_batches);
    let mut t = SimTime::ZERO;
    for _ in 0..full_batches {
        let (start, end) = run(batch, t);
        windows.push(end - start);
        t = end;
    }
    ThroughputReport::from_window_times(name, batch, batch, &windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpu_nn::googlenet::Variant;

    fn model() -> ModelBundle {
        ModelBundle::googlenet_untrained(Variant::Full, 1)
    }

    fn tiny_model() -> ModelBundle {
        ModelBundle::googlenet_untrained(Variant::Tiny, 1)
    }

    #[test]
    fn cpu_throughput_matches_anchor() {
        let mut cpu = IntelCpu::new(model());
        let r = cpu.run_throughput(80, 8);
        // Paper: 44.0 img/s at batch 8.
        let ips = r.images_per_sec();
        assert!((42.0..46.0).contains(&ips), "CPU {ips} img/s");
        assert!(r.samples.stddev > 0.0, "expected jittered error bars");
    }

    #[test]
    fn gpu_throughput_matches_anchor() {
        let mut gpu = NvGpu::new(model());
        let r = gpu.run_throughput(80, 8);
        // Paper: 74.2 img/s at batch 8.
        let ips = r.images_per_sec();
        assert!((71.0..78.0).contains(&ips), "GPU {ips} img/s");
    }

    #[test]
    fn vpu_throughput_matches_anchor() {
        let mut vpu = IntelVpu::new(model(), 8);
        let r = vpu.run_throughput(64, 8);
        // Paper: 77.2 img/s at 8 sticks.
        let ips = r.images_per_sec();
        assert!((71.0..84.0).contains(&ips), "VPU {ips} img/s");
    }

    #[test]
    #[should_panic(expected = "couples batch size")]
    fn vpu_batch_must_equal_devices() {
        IntelVpu::new(model(), 4).run_throughput(16, 8);
    }

    #[test]
    fn tdp_accounting() {
        let cpu = IntelCpu::new(tiny_model());
        let gpu = NvGpu::new(tiny_model());
        let vpu = IntelVpu::new(tiny_model(), 2);
        assert_eq!(cpu.tdp_w(8), 80.0);
        assert_eq!(gpu.tdp_w(8), 80.0);
        assert_eq!(vpu.tdp_w(1), 2.5);
        assert_eq!(vpu.tdp_w(8), 20.0);
    }

    #[test]
    fn classify_agrees_between_hosts_and_differs_on_vpu() {
        use vpu_tensor::Shape;
        let m = tiny_model();
        let cpu = IntelCpu::new(m.clone());
        let gpu = NvGpu::new(m.clone());
        let vpu = IntelVpu::new(m, 1);
        let img = Tensor::<f32>::full(Shape::chw(3, 32, 32), 0.23);
        let pc = cpu.classify(&img);
        let pg = gpu.classify(&img);
        let pv = vpu.classify(&img);
        assert_eq!(pc, pg, "CPU and GPU share f32 numerics");
        assert_eq!(pc.len(), pv.len());
        let diff: f32 = pc.iter().zip(&pv).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 0.0, "fp16 must differ from fp32");
        assert!(diff < 0.1, "fp16 drift too large: {diff}");
    }

    #[test]
    fn names() {
        assert_eq!(IntelCpu::new(tiny_model()).name(), "cpu");
        assert_eq!(NvGpu::new(tiny_model()).name(), "gpu");
        assert_eq!(IntelVpu::new(tiny_model(), 1).name(), "vpu");
    }
}
