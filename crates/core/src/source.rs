//! Input sources (paper Fig. 3, left side).

use desim::{Duration, SimTime};
use ilsvrc_sim::{LabeledImage, ValidationSet};
use std::sync::Arc;

/// Abstract image source — `SourceImage` in the paper's class diagram.
///
/// A source yields preprocessed f32 image tensors with ground truth and
/// an *availability time* (when the image could first be handed to a
/// target): an image folder has everything at t=0, a stream delivers over
/// time.
pub trait SourceImage: Send + Sync {
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch image `i` (decoded and mean-centred).
    fn fetch(&self, i: usize) -> LabeledImage;

    /// Earliest virtual time image `i` exists on the host.
    fn available_at(&self, i: usize) -> SimTime {
        let _ = i;
        SimTime::ZERO
    }
}

/// A directory of decoded validation images (one subset of the paper's
/// 5 × 10 000 split). Decode time is excluded from measurements, matching
/// §IV ("we omit from our results the decoding time per image").
#[derive(Clone)]
pub struct ImageFolder {
    set: Arc<ValidationSet>,
    subset: usize,
}

impl ImageFolder {
    pub fn new(set: Arc<ValidationSet>, subset: usize) -> Self {
        assert!(subset < set.config().subsets, "subset {subset} out of range");
        ImageFolder { set, subset }
    }

    /// All subsets of a validation set as separate folders.
    pub fn all_subsets(set: Arc<ValidationSet>) -> Vec<ImageFolder> {
        (0..set.config().subsets).map(|s| ImageFolder::new(set.clone(), s)).collect()
    }

    pub fn subset(&self) -> usize {
        self.subset
    }
}

impl SourceImage for ImageFolder {
    fn len(&self) -> usize {
        self.set.config().images_per_subset()
    }

    fn fetch(&self, i: usize) -> LabeledImage {
        let range = self.set.subset_indices(self.subset);
        assert!(i < range.len(), "image {i} out of subset range");
        self.set.image(range.start + i)
    }
}

/// A streaming source (the paper's `MPIStream`): images arrive at a fixed
/// inter-arrival interval, as from an MPI data-streaming pipeline. Used
/// by the computation-offloading example to demonstrate load/get-result
/// overlap against a producer.
#[derive(Clone)]
pub struct MpiStream {
    set: Arc<ValidationSet>,
    interval: Duration,
    count: usize,
}

impl MpiStream {
    pub fn new(set: Arc<ValidationSet>, interval: Duration, count: usize) -> Self {
        assert!(count <= set.len(), "stream longer than backing dataset");
        MpiStream { set, interval, count }
    }

    pub fn interval(&self) -> Duration {
        self.interval
    }
}

impl SourceImage for MpiStream {
    fn len(&self) -> usize {
        self.count
    }

    fn fetch(&self, i: usize) -> LabeledImage {
        assert!(i < self.count, "image {i} beyond stream length");
        self.set.image(i)
    }

    fn available_at(&self, i: usize) -> SimTime {
        SimTime::ZERO + self.interval * (i as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilsvrc_sim::DatasetConfig;
    use vpu_tensor::Shape;

    fn set() -> Arc<ValidationSet> {
        Arc::new(ValidationSet::new(DatasetConfig::ilsvrc_like(10, 50, Shape::chw(3, 16, 16), 4)))
    }

    #[test]
    fn folder_covers_subset() {
        let s = set();
        let folder = ImageFolder::new(s.clone(), 1);
        assert_eq!(folder.len(), 10);
        // Image 0 of subset 1 is global image 10.
        assert_eq!(folder.fetch(0).index, 10);
        assert_eq!(folder.fetch(9).index, 19);
        assert_eq!(folder.available_at(5), SimTime::ZERO);
    }

    #[test]
    fn all_subsets_partition_the_set() {
        let s = set();
        let folders = ImageFolder::all_subsets(s);
        assert_eq!(folders.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for f in &folders {
            for i in 0..f.len() {
                assert!(seen.insert(f.fetch(i).index));
            }
        }
        assert_eq!(seen.len(), 50);
    }

    #[test]
    #[should_panic(expected = "out of subset range")]
    fn folder_bounds_checked() {
        ImageFolder::new(set(), 0).fetch(10);
    }

    #[test]
    fn stream_arrival_times() {
        let s = MpiStream::new(set(), Duration::from_millis(10.0), 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.available_at(0), SimTime::ZERO + Duration::from_millis(10.0));
        assert_eq!(s.available_at(4), SimTime::ZERO + Duration::from_millis(50.0));
        assert_eq!(s.fetch(2).index, 2);
    }

    #[test]
    #[should_panic(expected = "longer than backing")]
    fn stream_length_checked() {
        MpiStream::new(set(), Duration::from_millis(1.0), 51);
    }

    #[test]
    fn labels_travel_with_images() {
        let s = set();
        let folder = ImageFolder::new(s.clone(), 0);
        for i in 0..folder.len() {
            let img = folder.fetch(i);
            assert_eq!(img.label, s.label(img.index));
        }
    }
}
