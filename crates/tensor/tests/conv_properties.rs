//! Property tests: the production im2col+GEMM convolution agrees with
//! the naive direct reference for arbitrary geometries, and the kernel
//! algebra holds (linearity, translation of identity kernels).

use proptest::prelude::*;
use rand::Rng;
use vpu_tensor::kernels::conv::{conv2d, conv2d_direct_reference, ConvParams};
use vpu_tensor::kernels::gemm::AccumMode;
use vpu_tensor::{Shape, Tensor};

fn rand_tensor(shape: Shape, seed: u64) -> Tensor<f32> {
    let mut rng = vpu_num::rng::seeded(seed);
    Tensor::from_fn(shape, |_, _, _, _| rng.gen_range(-1.0..1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// im2col+GEMM == direct convolution for every geometry.
    #[test]
    fn gemm_conv_matches_direct(
        ic in 1usize..4,
        oc in 1usize..5,
        hw in 3usize..10,
        k in prop::sample::select(vec![1usize, 3]),
        stride in 1usize..3,
        pad in 0usize..2,
        batch in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let input = rand_tensor(Shape::new(batch, ic, hw, hw), seed);
        let p = ConvParams::new(oc, k, stride, pad);
        let w = rand_tensor(Shape::vector(1, p.weight_len(ic)), seed + 1).into_vec();
        let b = rand_tensor(Shape::vector(1, oc), seed + 2).into_vec();
        let fast = conv2d(&input, &w, &b, &p, AccumMode::Widened, false);
        let slow = conv2d_direct_reference(&input, &w, &b, &p);
        prop_assert_eq!(fast.shape(), slow.shape());
        for (a, e) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((a - e).abs() < 1e-4, "{a} vs {e}");
        }
    }

    /// Convolution is linear in the input: conv(2x) == 2*conv(x) with
    /// zero bias.
    #[test]
    fn conv_is_linear_in_input(
        ic in 1usize..3,
        oc in 1usize..4,
        hw in 4usize..8,
        seed in 0u64..1000,
    ) {
        let input = rand_tensor(Shape::new(1, ic, hw, hw), seed);
        let doubled = input.map(|v| v * 2.0);
        let p = ConvParams::new(oc, 3, 1, 1);
        let w = rand_tensor(Shape::vector(1, p.weight_len(ic)), seed + 9).into_vec();
        let zero_bias = vec![0.0f32; oc];
        let y1 = conv2d(&input, &w, &zero_bias, &p, AccumMode::Widened, false);
        let y2 = conv2d(&doubled, &w, &zero_bias, &p, AccumMode::Widened, false);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((2.0 * a - b).abs() < 1e-4);
        }
    }

    /// Fused ReLU equals conv-then-clamp.
    #[test]
    fn fused_relu_equals_postclamp(
        ic in 1usize..3,
        hw in 4usize..8,
        seed in 0u64..1000,
    ) {
        let input = rand_tensor(Shape::new(1, ic, hw, hw), seed);
        let p = ConvParams::new(3, 3, 1, 1);
        let w = rand_tensor(Shape::vector(1, p.weight_len(ic)), seed + 3).into_vec();
        let b = rand_tensor(Shape::vector(1, 3), seed + 4).into_vec();
        let fused = conv2d(&input, &w, &b, &p, AccumMode::Widened, true);
        let raw = conv2d(&input, &w, &b, &p, AccumMode::Widened, false);
        for (f, r) in fused.as_slice().iter().zip(raw.as_slice()) {
            prop_assert_eq!(*f, r.max(0.0));
        }
    }
}
