//! Tensor containers and compute kernels for the VPU reproduction.
//!
//! The crate is deliberately small and self-contained: NCHW dense tensors
//! over a precision-generic [`Element`] type (f32 on the host devices, the
//! software [`vpu_num::f16`] on the simulated Myriad 2), plus the exact set
//! of kernels GoogLeNet needs — im2col + blocked GEMM convolution, max/avg
//! pooling (with Caffe's ceil-mode), cross-channel LRN, fully-connected,
//! ReLU and softmax.
//!
//! Two design points matter for the experiments:
//!
//! * **Precision honesty.** The FP16 path stores *and* computes in binary16
//!   with per-operation rounding (the [`kernels::gemm::AccumMode`] ablation
//!   exposes FP32 accumulation as the alternative the Myriad's VAU can also
//!   do). The FP32-vs-FP16 deltas in the paper's Fig. 7 fall out of real
//!   arithmetic, not injected noise.
//! * **Host parallelism.** The f32 kernels are rayon-parallel blocked
//!   implementations, which is what stands in for Caffe-MKL in the CPU
//!   reference device.

pub mod element;
pub mod kernels;
pub mod shape;
pub mod tensor;

pub use element::Element;
pub use kernels::gemm::AccumMode;
pub use shape::Shape;
pub use tensor::Tensor;
