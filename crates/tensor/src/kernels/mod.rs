//! Compute kernels: the full operator set GoogLeNet inference needs.

pub mod activation;
pub mod conv;
pub mod dense;
pub mod gemm;
pub mod im2col;
pub mod lrn;
pub mod pool;
