//! General matrix multiply with selectable accumulation precision.
//!
//! `C[M×N] = A[M×K] · B[K×N]`, all row-major. This single kernel backs both
//! the host reference devices (f32) and the simulated VPU (f16), so the
//! accumulation behaviour is explicit:
//!
//! * [`AccumMode::Widened`] — products and the running sum are kept in f32
//!   and rounded to the element type once at the end. This is what MKL and
//!   cuDNN do for f32 (a no-op widening) and what the Myriad 2 VAU does
//!   when configured for mixed FP16-in / FP32-accumulate arithmetic.
//! * [`AccumMode::Native`] — every multiply and every add rounds to the
//!   element type, modelling a pure-FP16 MAC chain. This is the
//!   worst-case numerics the paper's FP16 experiments probe, and the
//!   `ablation-accum` experiment compares the two.

use crate::element::Element;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Accumulation precision for dot-product style kernels.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccumMode {
    /// Accumulate in f32, round once to the storage type at the end.
    #[default]
    Widened,
    /// Accumulate in the storage type with per-operation rounding.
    Native,
}

/// Sequential reference GEMM (used by tests to validate the parallel path).
pub fn gemm_seq<E: Element>(
    m: usize,
    k: usize,
    n: usize,
    a: &[E],
    b: &[E],
    c: &mut [E],
    mode: AccumMode,
) {
    check_dims(m, k, n, a.len(), b.len(), c.len());
    for i in 0..m {
        gemm_row(i, k, n, a, b, &mut c[i * n..(i + 1) * n], mode);
    }
}

/// Rayon-parallel GEMM over output rows.
pub fn gemm<E: Element>(
    m: usize,
    k: usize,
    n: usize,
    a: &[E],
    b: &[E],
    c: &mut [E],
    mode: AccumMode,
) {
    check_dims(m, k, n, a.len(), b.len(), c.len());
    // Row-parallel: each worker owns a disjoint slice of C, so the result
    // is bit-identical to the sequential kernel regardless of scheduling.
    c.par_chunks_mut(n).enumerate().for_each(|(i, row)| gemm_row(i, k, n, a, b, row, mode));
}

#[inline]
fn gemm_row<E: Element>(
    i: usize,
    k: usize,
    n: usize,
    a: &[E],
    b: &[E],
    row: &mut [E],
    mode: AccumMode,
) {
    match mode {
        AccumMode::Widened => {
            let mut acc = vec![0.0f32; n];
            for kk in 0..k {
                let aik = a[i * k + kk].to_f32();
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..kk * n + n];
                for (s, &bj) in acc.iter_mut().zip(brow) {
                    *s += aik * bj.to_f32();
                }
            }
            for (dst, s) in row.iter_mut().zip(acc) {
                *dst = E::from_f32(s);
            }
        }
        AccumMode::Native => {
            for v in row.iter_mut() {
                *v = E::ZERO;
            }
            for kk in 0..k {
                let aik = a[i * k + kk];
                let brow = &b[kk * n..kk * n + n];
                for (s, &bj) in row.iter_mut().zip(brow) {
                    // One rounding for the product, one for the add — a
                    // classic non-fused FP16 MAC.
                    *s += aik * bj;
                }
            }
        }
    }
}

fn check_dims(m: usize, k: usize, n: usize, la: usize, lb: usize, lc: usize) {
    assert_eq!(la, m * k, "A must be {m}x{k}");
    assert_eq!(lb, k * n, "B must be {k}x{n}");
    assert_eq!(lc, m * n, "C must be {m}x{n}");
}

/// Dot product with the same accumulation-mode semantics as [`gemm`].
pub fn dot<E: Element>(a: &[E], b: &[E], mode: AccumMode) -> E {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    match mode {
        AccumMode::Widened => {
            let mut s = 0.0f32;
            for (&x, &y) in a.iter().zip(b) {
                s += x.to_f32() * y.to_f32();
            }
            E::from_f32(s)
        }
        AccumMode::Native => {
            let mut s = E::ZERO;
            for (&x, &y) in a.iter().zip(b) {
                s += x * y;
            }
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpu_num::f16;

    fn naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn rand_mat(len: usize, seed: u64) -> Vec<f32> {
        use rand::Rng;
        let mut rng = vpu_num::rng::seeded(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn identity_times_matrix() {
        let n = 4;
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let b = rand_mat(n * n, 1);
        let mut c = vec![0.0f32; n * n];
        gemm(n, n, n, &a, &b, &mut c, AccumMode::Widened);
        assert_eq!(c, b);
    }

    #[test]
    fn matches_naive_f64_reference() {
        let (m, k, n) = (7, 13, 9);
        let a = rand_mat(m * k, 2);
        let b = rand_mat(k * n, 3);
        let mut c = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut c, AccumMode::Widened);
        let a64: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let b64: Vec<f64> = b.iter().map(|&x| x as f64).collect();
        let expect = naive(m, k, n, &a64, &b64);
        for (x, y) in c.iter().zip(expect) {
            assert!((*x as f64 - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let (m, k, n) = (33, 17, 21);
        let a = rand_mat(m * k, 4);
        let b = rand_mat(k * n, 5);
        let mut cp = vec![0.0f32; m * n];
        let mut cs = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut cp, AccumMode::Widened);
        gemm_seq(m, k, n, &a, &b, &mut cs, AccumMode::Widened);
        assert_eq!(cp, cs);
    }

    #[test]
    fn fp16_native_vs_widened_differ_in_last_bits() {
        let (m, k, n) = (4, 256, 4);
        let a: Vec<f16> = rand_mat(m * k, 6).iter().map(|&x| f16::from_f32(x)).collect();
        let b: Vec<f16> = rand_mat(k * n, 7).iter().map(|&x| f16::from_f32(x)).collect();
        let mut cw = vec![f16::ZERO; m * n];
        let mut cn = vec![f16::ZERO; m * n];
        gemm(m, k, n, &a, &b, &mut cw, AccumMode::Widened);
        gemm(m, k, n, &a, &b, &mut cn, AccumMode::Native);
        // Results must agree coarsely but differ in low bits somewhere —
        // proving per-op rounding actually happens.
        let mut any_diff = false;
        for (w, nn) in cw.iter().zip(&cn) {
            assert!((w.to_f32() - nn.to_f32()).abs() < 0.2, "{w:?} vs {nn:?}");
            if w.to_bits() != nn.to_bits() {
                any_diff = true;
            }
        }
        assert!(any_diff, "expected rounding differences between accumulation modes");
    }

    #[test]
    fn fp16_widened_matches_f32_then_round() {
        let (m, k, n) = (3, 32, 5);
        let af = rand_mat(m * k, 8);
        let bf = rand_mat(k * n, 9);
        let ah: Vec<f16> = af.iter().map(|&x| f16::from_f32(x)).collect();
        let bh: Vec<f16> = bf.iter().map(|&x| f16::from_f32(x)).collect();
        // f32 GEMM on the widened fp16 values, rounded once.
        let aw: Vec<f32> = ah.iter().map(|h| h.to_f32()).collect();
        let bw: Vec<f32> = bh.iter().map(|h| h.to_f32()).collect();
        let mut cf = vec![0.0f32; m * n];
        gemm(m, k, n, &aw, &bw, &mut cf, AccumMode::Widened);
        let mut ch = vec![f16::ZERO; m * n];
        gemm(m, k, n, &ah, &bh, &mut ch, AccumMode::Widened);
        for (h, f) in ch.iter().zip(cf) {
            assert_eq!(h.to_bits(), f16::from_f32(f).to_bits());
        }
    }

    #[test]
    fn dot_modes() {
        let a: Vec<f16> = (0..100).map(|i| f16::from_f32(0.01 * i as f32)).collect();
        let b: Vec<f16> = (0..100).map(|_| f16::from_f32(0.1)).collect();
        let w = dot(&a, &b, AccumMode::Widened).to_f32();
        let n = dot(&a, &b, AccumMode::Native).to_f32();
        let exact: f32 = (0..100).map(|i| 0.01 * i as f32 * 0.1).sum();
        assert!((w - exact).abs() < 0.05);
        assert!((n - exact).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "A must be")]
    fn dimension_check() {
        let mut c = vec![0.0f32; 4];
        gemm(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c, AccumMode::Widened);
    }

    #[test]
    fn empty_k_gives_zero() {
        let mut c = vec![1.0f32; 4];
        gemm(2, 0, 2, &[], &[], &mut c, AccumMode::Widened);
        assert_eq!(c, vec![0.0; 4]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// GEMM is linear in A: gemm(2A, B) == 2 * gemm(A, B).
        #[test]
        fn linearity(m in 1usize..6, k in 1usize..8, n in 1usize..6, seed in 0u64..1000) {
            use rand::Rng;
            let mut rng = vpu_num::rng::seeded(seed);
            let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let a2: Vec<f32> = a.iter().map(|x| 2.0 * x).collect();
            let mut c1 = vec![0.0f32; m * n];
            let mut c2 = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut c1, AccumMode::Widened);
            gemm(m, k, n, &a2, &b, &mut c2, AccumMode::Widened);
            for (x, y) in c1.iter().zip(&c2) {
                prop_assert!((2.0 * x - y).abs() < 1e-4);
            }
        }

        /// Parallel and sequential kernels agree bit-for-bit for any size.
        #[test]
        fn par_seq_agree(m in 1usize..12, k in 0usize..16, n in 1usize..12, seed in 0u64..1000) {
            use rand::Rng;
            let mut rng = vpu_num::rng::seeded(seed);
            let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let mut cp = vec![0.0f32; m * n];
            let mut cs = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut cp, AccumMode::Widened);
            gemm_seq(m, k, n, &a, &b, &mut cs, AccumMode::Widened);
            prop_assert_eq!(cp, cs);
        }
    }
}
