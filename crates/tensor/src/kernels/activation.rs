//! Element-wise activations and the softmax classifier head.

use crate::element::Element;
use crate::tensor::Tensor;

/// In-place ReLU.
pub fn relu_inplace<E: Element>(t: &mut Tensor<E>) {
    for v in t.as_mut_slice() {
        *v = v.maximum(E::ZERO);
    }
}

/// ReLU into a new tensor.
pub fn relu<E: Element>(t: &Tensor<E>) -> Tensor<E> {
    let mut out = t.clone();
    relu_inplace(&mut out);
    out
}

/// Numerically-stable softmax over each batch item's flattened features.
///
/// Internally computed in f32 (max-subtraction + exp + normalize) with the
/// output rounded to the element type — matching how FP16 inference stacks
/// implement their final softmax to avoid exp overflow at |x| > 11.
pub fn softmax<E: Element>(t: &Tensor<E>) -> Tensor<E> {
    let shape = t.shape();
    let mut out = Tensor::<E>::zeros(shape);
    for n in 0..shape.n {
        let x = t.item(n);
        let dst = out.item_mut(n);
        let max = x.iter().map(|v| v.to_f32()).fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let mut exps = vec![0.0f32; x.len()];
        for (e, v) in exps.iter_mut().zip(x) {
            *e = (v.to_f32() - max).exp();
            sum += *e;
        }
        for (d, e) in dst.iter_mut().zip(exps) {
            *d = E::from_f32(e / sum);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use vpu_num::f16;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::<f32>::from_f32_slice(Shape::vector(1, 4), &[-1., 0., 2., -0.5]);
        assert_eq!(relu(&t).as_slice(), &[0., 0., 2., 0.]);
    }

    #[test]
    fn relu_fp16() {
        let t = Tensor::<f16>::from_f32_slice(Shape::vector(1, 2), &[-3.0, 3.0]);
        let r = relu(&t);
        assert_eq!(r.as_slice()[0].to_f32(), 0.0);
        assert_eq!(r.as_slice()[1].to_f32(), 3.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let t = Tensor::<f32>::from_f32_slice(Shape::vector(2, 3), &[1., 2., 3., -1., 0., 1.]);
        let s = softmax(&t);
        for n in 0..2 {
            let sum: f32 = s.item(n).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: higher logit -> higher probability.
        assert!(s.item(0)[2] > s.item(0)[1]);
        assert!(s.item(0)[1] > s.item(0)[0]);
    }

    #[test]
    fn softmax_known_values() {
        let t = Tensor::<f32>::from_f32_slice(Shape::vector(1, 2), &[0.0, 0.0]);
        let s = softmax(&t);
        assert!((s.as_slice()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::<f32>::from_f32_slice(Shape::vector(1, 3), &[1., 2., 3.]);
        let b = Tensor::<f32>::from_f32_slice(Shape::vector(1, 3), &[101., 102., 103.]);
        let sa = softmax(&a);
        let sb = softmax(&b);
        for (x, y) in sa.as_slice().iter().zip(sb.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_large_fp16_logits() {
        // exp(30) overflows fp16; max-subtraction keeps it finite.
        let t = Tensor::<f16>::from_f32_slice(Shape::vector(1, 3), &[30.0, 29.0, -5.0]);
        let s = softmax(&t);
        assert!(!s.has_nan());
        let sum: f32 = s.item(0).iter().map(|v| v.to_f32()).sum();
        assert!((sum - 1.0).abs() < 1e-2);
        assert!(s.as_slice()[0].to_f32() > s.as_slice()[1].to_f32());
    }
}
