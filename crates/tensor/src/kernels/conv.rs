//! 2-D convolution: im2col + GEMM (production path) and a direct
//! reference implementation used to cross-validate it.

use crate::element::Element;
use crate::kernels::gemm::{gemm, AccumMode};
use crate::kernels::im2col::{im2col, Im2ColGeom};
use crate::shape::Shape;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Static parameters of a convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvParams {
    pub out_channels: usize,
    pub kernel: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvParams {
    pub fn new(out_channels: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        ConvParams { out_channels, kernel, stride, pad }
    }

    /// Output shape for a given input shape.
    pub fn out_shape(&self, input: Shape) -> Shape {
        let oh = Shape::conv_extent(input.h, self.kernel, self.pad, self.stride, false);
        let ow = Shape::conv_extent(input.w, self.kernel, self.pad, self.stride, false);
        Shape::new(input.n, self.out_channels, oh, ow)
    }

    /// Multiply-accumulate count for one batch item.
    pub fn macs(&self, input: Shape) -> u64 {
        let out = self.out_shape(input.with_batch(1));
        (out.c * out.h * out.w) as u64 * (input.c * self.kernel * self.kernel) as u64
    }

    /// Weight tensor element count: `OC · C · k · k`.
    pub fn weight_len(&self, in_channels: usize) -> usize {
        self.out_channels * in_channels * self.kernel * self.kernel
    }
}

/// im2col + GEMM convolution over a whole batch.
///
/// `weights` is `OC × (C·k·k)` row-major, `bias` has `OC` entries.
/// The optional fused ReLU mirrors how both Caffe and the NCSDK graph
/// compiler fold activation into the preceding convolution.
pub fn conv2d<E: Element>(
    input: &Tensor<E>,
    weights: &[E],
    bias: &[E],
    params: &ConvParams,
    mode: AccumMode,
    fuse_relu: bool,
) -> Tensor<E> {
    let ishape = input.shape();
    assert_eq!(weights.len(), params.weight_len(ishape.c), "weight length");
    assert_eq!(bias.len(), params.out_channels, "bias length");
    let oshape = params.out_shape(ishape);
    let geom =
        Im2ColGeom::new(ishape.c, ishape.h, ishape.w, params.kernel, params.pad, params.stride);
    let (rows, cols) = (geom.rows(), geom.cols());

    let mut out = Tensor::<E>::zeros(oshape);
    let mut scratch = vec![E::ZERO; rows * cols];
    for n in 0..ishape.n {
        im2col(&geom, input.item(n), &mut scratch);
        let dst = out.item_mut(n);
        gemm(params.out_channels, rows, cols, weights, &scratch, dst, mode);
        for oc in 0..params.out_channels {
            let b = bias[oc];
            let plane = &mut dst[oc * cols..(oc + 1) * cols];
            for v in plane.iter_mut() {
                *v += b;
                if fuse_relu {
                    *v = v.maximum(E::ZERO);
                }
            }
        }
    }
    out
}

/// Naive direct convolution, accumulating in f64. Slow; only used by tests
/// as an independent oracle for `conv2d`.
pub fn conv2d_direct_reference<E: Element>(
    input: &Tensor<E>,
    weights: &[E],
    bias: &[E],
    params: &ConvParams,
) -> Tensor<f32> {
    let ishape = input.shape();
    let oshape = params.out_shape(ishape);
    let mut out = Tensor::<f32>::zeros(oshape);
    let k = params.kernel;
    for n in 0..ishape.n {
        for oc in 0..oshape.c {
            for oy in 0..oshape.h {
                for ox in 0..oshape.w {
                    let mut acc = bias[oc].to_f32() as f64;
                    for ic in 0..ishape.c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * params.stride + ky) as isize - params.pad as isize;
                                let ix = (ox * params.stride + kx) as isize - params.pad as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= ishape.h as isize
                                    || ix >= ishape.w as isize
                                {
                                    continue;
                                }
                                let w = weights[((oc * ishape.c + ic) * k + ky) * k + kx].to_f32()
                                    as f64;
                                let x = input.at(n, ic, iy as usize, ix as usize).to_f32() as f64;
                                acc += w * x;
                            }
                        }
                    }
                    out.set(n, oc, oy, ox, acc as f32);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use vpu_num::f16;

    fn rand_tensor(shape: Shape, seed: u64) -> Tensor<f32> {
        let mut rng = vpu_num::rng::seeded(seed);
        Tensor::from_fn(shape, |_, _, _, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn out_shape_and_macs() {
        let p = ConvParams::new(64, 7, 2, 3);
        let s = Shape::new(1, 3, 224, 224);
        assert_eq!(p.out_shape(s), Shape::new(1, 64, 112, 112));
        // 64*112*112*3*49 MACs.
        assert_eq!(p.macs(s), 64 * 112 * 112 * 3 * 49);
        assert_eq!(p.weight_len(3), 64 * 3 * 49);
    }

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 conv with identity weights reproduces the input.
        let input = rand_tensor(Shape::new(2, 3, 5, 5), 11);
        let p = ConvParams::new(3, 1, 1, 0);
        let mut w = vec![0.0f32; p.weight_len(3)];
        for c in 0..3 {
            w[c * 3 + c] = 1.0;
        }
        let out = conv2d(&input, &w, &[0.0; 3], &p, AccumMode::Widened, false);
        for (a, b) in out.as_slice().iter().zip(input.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn matches_direct_reference() {
        let input = rand_tensor(Shape::new(2, 4, 9, 9), 21);
        let p = ConvParams::new(6, 3, 2, 1);
        let w: Vec<f32> = rand_tensor(Shape::vector(1, p.weight_len(4)), 22).into_vec();
        let b: Vec<f32> = rand_tensor(Shape::vector(1, 6), 23).into_vec();
        let fast = conv2d(&input, &w, &b, &p, AccumMode::Widened, false);
        let slow = conv2d_direct_reference(&input, &w, &b, &p);
        assert_eq!(fast.shape(), slow.shape());
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn bias_and_fused_relu() {
        let input = Tensor::<f32>::zeros(Shape::new(1, 1, 2, 2));
        let p = ConvParams::new(2, 1, 1, 0);
        let w = vec![1.0f32, 1.0];
        // Zero input, biases -1 and +2: ReLU clamps the first channel.
        let out = conv2d(&input, &w, &[-1.0, 2.0], &p, AccumMode::Widened, true);
        assert!(out.item(0)[..4].iter().all(|&v| v == 0.0));
        assert!(out.item(0)[4..].iter().all(|&v| v == 2.0));
        let raw = conv2d(&input, &w, &[-1.0, 2.0], &p, AccumMode::Widened, false);
        assert!(raw.item(0)[..4].iter().all(|&v| v == -1.0));
    }

    #[test]
    fn fp16_conv_close_to_fp32() {
        let input = rand_tensor(Shape::new(1, 3, 8, 8), 31);
        let p = ConvParams::new(4, 3, 1, 1);
        let w: Vec<f32> = rand_tensor(Shape::vector(1, p.weight_len(3)), 32).into_vec();
        let b = vec![0.05f32; 4];
        let out32 = conv2d(&input, &w, &b, &p, AccumMode::Widened, false);
        let ih: Tensor<f16> = input.cast();
        let wh: Vec<f16> = w.iter().map(|&x| f16::from_f32(x)).collect();
        let bh: Vec<f16> = b.iter().map(|&x| f16::from_f32(x)).collect();
        let out16 = conv2d(&ih, &wh, &bh, &p, AccumMode::Native, false);
        let mut max_err = 0.0f32;
        for (a, b) in out32.as_slice().iter().zip(out16.as_slice()) {
            max_err = max_err.max((a - b.to_f32()).abs());
        }
        // fp16 with native accumulation stays within ~1e-2 for unit-scale
        // inputs of this size, but is NOT exact.
        assert!(max_err > 0.0, "fp16 should differ from fp32");
        assert!(max_err < 5e-2, "fp16 error too large: {max_err}");
    }

    #[test]
    fn batch_items_are_independent() {
        let a = rand_tensor(Shape::new(1, 2, 6, 6), 41);
        let bt = rand_tensor(Shape::new(1, 2, 6, 6), 42);
        let both = Tensor::stack_items(&[a.clone(), bt.clone()]);
        let p = ConvParams::new(3, 3, 1, 1);
        let w: Vec<f32> = rand_tensor(Shape::vector(1, p.weight_len(2)), 43).into_vec();
        let bias = vec![0.1f32; 3];
        let o_batch = conv2d(&both, &w, &bias, &p, AccumMode::Widened, false);
        let oa = conv2d(&a, &w, &bias, &p, AccumMode::Widened, false);
        let ob = conv2d(&bt, &w, &bias, &p, AccumMode::Widened, false);
        assert_eq!(o_batch.item(0), oa.item(0));
        assert_eq!(o_batch.item(1), ob.item(0));
    }
}
