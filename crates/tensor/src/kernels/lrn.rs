//! Local Response Normalization (across channels), as used by GoogLeNet.
//!
//! `out[c] = in[c] / (k + alpha/n * sum_{c' in window} in[c']^2)^beta`
//! with the window of `local_size` channels centred on `c` (clipped at the
//! edges), exactly Caffe's `ACROSS_CHANNELS` LRN.
//!
//! The sum of squares is computed in f32 even on the FP16 path: binary16
//! overflows at 65504, which squared activations hit easily, and real
//! FP16 hardware implements LRN with a widened internal accumulator for
//! the same reason. Only the final division result is rounded to the
//! element type.

use crate::element::Element;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// LRN parameters (Caffe semantics: `alpha` is divided by `local_size`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrnParams {
    pub local_size: usize,
    pub alpha: f32,
    pub beta: f32,
    pub k: f32,
}

impl LrnParams {
    /// The GoogLeNet configuration: n=5, alpha=1e-4, beta=0.75, k=1.
    pub fn googlenet() -> Self {
        LrnParams { local_size: 5, alpha: 1e-4, beta: 0.75, k: 1.0 }
    }

    /// Arithmetic operations per batch item (for the cost models):
    /// roughly one square + one add per window tap, plus a power and a
    /// divide per element.
    pub fn ops(&self, shape: crate::shape::Shape) -> u64 {
        shape.item_len() as u64 * (self.local_size as u64 * 2 + 2)
    }
}

/// Apply across-channel LRN over a whole batch.
pub fn lrn<E: Element>(input: &Tensor<E>, params: &LrnParams) -> Tensor<E> {
    assert!(params.local_size % 2 == 1, "local_size must be odd");
    let shape = input.shape();
    let half = params.local_size / 2;
    let scale = params.alpha / params.local_size as f32;
    let mut out = Tensor::<E>::zeros(shape);
    for n in 0..shape.n {
        for h in 0..shape.h {
            for w in 0..shape.w {
                // Sliding sum of squares along the channel axis.
                let mut sumsq = 0.0f32;
                for c in 0..(half + 1).min(shape.c) {
                    let v = input.at(n, c, h, w).to_f32();
                    sumsq += v * v;
                }
                for c in 0..shape.c {
                    let denom = (params.k + scale * sumsq).powf(params.beta);
                    let v = input.at(n, c, h, w).to_f32();
                    out.set(n, c, h, w, E::from_f32(v / denom));
                    // Slide the window: add the entering channel, drop the
                    // leaving one.
                    let entering = c + half + 1;
                    if entering < shape.c {
                        let e = input.at(n, entering, h, w).to_f32();
                        sumsq += e * e;
                    }
                    if c >= half {
                        let l = input.at(n, c - half, h, w).to_f32();
                        sumsq -= l * l;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn naive_lrn(input: &Tensor<f32>, p: &LrnParams) -> Tensor<f32> {
        let shape = input.shape();
        let half = (p.local_size / 2) as isize;
        let mut out = Tensor::<f32>::zeros(shape);
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        let mut s = 0.0;
                        for d in -half..=half {
                            let cc = c as isize + d;
                            if cc >= 0 && cc < shape.c as isize {
                                let v = input.at(n, cc as usize, h, w);
                                s += v * v;
                            }
                        }
                        let denom = (p.k + p.alpha / p.local_size as f32 * s).powf(p.beta);
                        out.set(n, c, h, w, input.at(n, c, h, w) / denom);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn matches_naive_reference() {
        use rand::Rng;
        let mut rng = vpu_num::rng::seeded(77);
        let t =
            Tensor::<f32>::from_fn(Shape::new(2, 7, 3, 3), |_, _, _, _| rng.gen_range(-2.0..2.0));
        let p = LrnParams::googlenet();
        let fast = lrn(&t, &p);
        let slow = naive_lrn(&t, &p);
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_input_passes_through() {
        let t = Tensor::<f32>::zeros(Shape::new(1, 5, 2, 2));
        let out = lrn(&t, &LrnParams::googlenet());
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn normalization_shrinks_large_activations() {
        let p = LrnParams { local_size: 5, alpha: 1.0, beta: 0.75, k: 1.0 };
        let t = Tensor::<f32>::full(Shape::new(1, 5, 1, 1), 10.0);
        let out = lrn(&t, &p);
        // Middle channel sees the full window: denom = (1 + 1/5*500)^0.75.
        let expect = 10.0 / 101.0f32.powf(0.75);
        assert!((out.at(0, 2, 0, 0) - expect).abs() < 1e-4);
        // Edge channels have clipped windows (3 taps), so they are
        // normalized less aggressively.
        assert!(out.at(0, 0, 0, 0) > out.at(0, 2, 0, 0));
        assert!(out.at(0, 4, 0, 0) > out.at(0, 2, 0, 0));
    }

    #[test]
    fn single_channel_window_of_one() {
        let p = LrnParams { local_size: 1, alpha: 1.0, beta: 1.0, k: 0.0 };
        let t = Tensor::<f32>::from_f32_slice(Shape::new(1, 1, 1, 2), &[2.0, 4.0]);
        let out = lrn(&t, &p);
        // denom = in^2 -> out = 1/in.
        assert!((out.as_slice()[0] - 0.5).abs() < 1e-6);
        assert!((out.as_slice()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn fp16_lrn_does_not_overflow() {
        use vpu_num::f16;
        // Activations of 200: squared is 40000, sum over window 200k —
        // far beyond fp16 max. Internal f32 accumulation must survive.
        let t = Tensor::<f16>::full(Shape::new(1, 5, 1, 1), f16::from_f32(200.0));
        let out = lrn(&t, &LrnParams { local_size: 5, alpha: 1.0, beta: 0.5, k: 0.0 });
        for &v in out.as_slice() {
            assert!(v.is_finite(), "overflowed: {v:?}");
        }
        // Middle channel: 200 / sqrt(1/5 * 5 * 200^2) = 1.
        assert!((out.at(0, 2, 0, 0).to_f32() - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_window() {
        let t = Tensor::<f32>::zeros(Shape::new(1, 4, 1, 1));
        lrn(&t, &LrnParams { local_size: 4, alpha: 1.0, beta: 1.0, k: 1.0 });
    }
}
