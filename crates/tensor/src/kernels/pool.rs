//! Spatial pooling (max / average) with Caffe's ceil-mode geometry.

use crate::element::Element;
use crate::shape::Shape;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Pooling operator kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    Max,
    Avg,
}

/// Static pooling parameters.
///
/// Caffe computes pooled extents in **ceil** mode (windows may start inside
/// the image and hang off the end); windows are then clipped to the image.
/// Average pooling divides by the clipped window size (padding excluded),
/// matching Caffe's behaviour for the GoogLeNet geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolParams {
    pub kind: PoolKind,
    pub kernel: usize,
    pub stride: usize,
    pub pad: usize,
}

impl PoolParams {
    pub fn new(kind: PoolKind, kernel: usize, stride: usize, pad: usize) -> Self {
        PoolParams { kind, kernel, stride, pad }
    }

    /// Global pooling: one output pixel per channel.
    pub fn global(kind: PoolKind, extent: usize) -> Self {
        PoolParams { kind, kernel: extent, stride: 1, pad: 0 }
    }

    pub fn out_shape(&self, input: Shape) -> Shape {
        let oh = Shape::conv_extent(input.h, self.kernel, self.pad, self.stride, true);
        let ow = Shape::conv_extent(input.w, self.kernel, self.pad, self.stride, true);
        Shape::new(input.n, input.c, oh, ow)
    }

    /// Comparison/add operations per batch item (for the cost models).
    pub fn ops(&self, input: Shape) -> u64 {
        let out = self.out_shape(input.with_batch(1));
        out.len() as u64 * (self.kernel * self.kernel) as u64
    }
}

/// Apply pooling over a whole batch.
pub fn pool2d<E: Element>(input: &Tensor<E>, params: &PoolParams) -> Tensor<E> {
    let ishape = input.shape();
    let oshape = params.out_shape(ishape);
    let mut out = Tensor::<E>::zeros(oshape);
    let (ih, iw) = (ishape.h as isize, ishape.w as isize);
    for n in 0..ishape.n {
        for c in 0..ishape.c {
            for oy in 0..oshape.h {
                for ox in 0..oshape.w {
                    let y0 = (oy * params.stride) as isize - params.pad as isize;
                    let x0 = (ox * params.stride) as isize - params.pad as isize;
                    let y1 = (y0 + params.kernel as isize).min(ih);
                    let x1 = (x0 + params.kernel as isize).min(iw);
                    let y0 = y0.max(0);
                    let x0 = x0.max(0);
                    let v = match params.kind {
                        PoolKind::Max => {
                            let mut m = f32::NEG_INFINITY;
                            for y in y0..y1 {
                                for x in x0..x1 {
                                    m = m.max(input.at(n, c, y as usize, x as usize).to_f32());
                                }
                            }
                            E::from_f32(m)
                        }
                        PoolKind::Avg => {
                            let mut s = 0.0f32;
                            for y in y0..y1 {
                                for x in x0..x1 {
                                    s += input.at(n, c, y as usize, x as usize).to_f32();
                                }
                            }
                            let count = ((y1 - y0) * (x1 - x0)).max(1) as f32;
                            E::from_f32(s / count)
                        }
                    };
                    out.set(n, c, oy, ox, v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn googlenet_pool_geometries() {
        // pool1: 112 -> 56 (k3 s2 ceil)
        let p = PoolParams::new(PoolKind::Max, 3, 2, 0);
        assert_eq!(p.out_shape(Shape::new(1, 64, 112, 112)), Shape::new(1, 64, 56, 56));
        // pool5: global 7x7 avg -> 1x1
        let g = PoolParams::global(PoolKind::Avg, 7);
        assert_eq!(g.out_shape(Shape::new(1, 1024, 7, 7)), Shape::new(1, 1024, 1, 1));
        // inception in-module pool: k3 s1 p1 keeps extent
        let ip = PoolParams::new(PoolKind::Max, 3, 1, 1);
        assert_eq!(ip.out_shape(Shape::new(1, 192, 28, 28)), Shape::new(1, 192, 28, 28));
    }

    #[test]
    fn max_pool_values() {
        let t = Tensor::<f32>::from_f32_slice(
            Shape::new(1, 1, 4, 4),
            &[1., 2., 3., 4., 5., 6., 7., 8., 9., 10., 11., 12., 13., 14., 15., 16.],
        );
        let p = PoolParams::new(PoolKind::Max, 2, 2, 0);
        let out = pool2d(&t, &p);
        assert_eq!(out.as_slice(), &[6., 8., 14., 16.]);
    }

    #[test]
    fn avg_pool_values() {
        let t = Tensor::<f32>::from_f32_slice(Shape::new(1, 1, 2, 2), &[1., 3., 5., 7.]);
        let p = PoolParams::new(PoolKind::Avg, 2, 2, 0);
        let out = pool2d(&t, &p);
        assert_eq!(out.as_slice(), &[4.0]);
    }

    #[test]
    fn ceil_mode_creates_partial_windows() {
        // 5 wide, k2 s2: ceil -> 3 outputs, last window has one column.
        let t = Tensor::<f32>::from_f32_slice(
            Shape::new(1, 1, 2, 5),
            &[1., 2., 3., 4., 10., 1., 2., 3., 4., 10.],
        );
        let p = PoolParams::new(PoolKind::Max, 2, 2, 0);
        let out = pool2d(&t, &p);
        assert_eq!(out.shape().w, 3);
        assert_eq!(out.as_slice(), &[2., 4., 10.]);
        // Average over the clipped (2-element) last window divides by 2.
        let pa = PoolParams::new(PoolKind::Avg, 2, 2, 0);
        let oa = pool2d(&t, &pa);
        assert_eq!(oa.as_slice(), &[1.5, 3.5, 10.0]);
    }

    #[test]
    fn padding_is_neutral_for_max() {
        // With pad 1, border windows see out-of-image cells; max must not
        // treat them as zero when all values are negative.
        let t = Tensor::<f32>::from_f32_slice(Shape::new(1, 1, 2, 2), &[-5., -6., -7., -8.]);
        let p = PoolParams::new(PoolKind::Max, 3, 1, 1);
        let out = pool2d(&t, &p);
        assert_eq!(out.at(0, 0, 0, 0), -5.0);
        assert_eq!(out.at(0, 0, 1, 1), -5.0);
    }

    #[test]
    fn padding_excluded_from_avg_denominator() {
        let t = Tensor::<f32>::from_f32_slice(Shape::new(1, 1, 2, 2), &[2., 2., 2., 2.]);
        let p = PoolParams::new(PoolKind::Avg, 3, 1, 1);
        let out = pool2d(&t, &p);
        // Corner window covers 2x2 real cells -> average is 2, not 8/9.
        assert_eq!(out.at(0, 0, 0, 0), 2.0);
    }

    #[test]
    fn channels_pool_independently() {
        let t = Tensor::<f32>::from_fn(Shape::new(1, 2, 2, 2), |_, c, h, w| {
            (c * 100 + h * 2 + w) as f32
        });
        let p = PoolParams::new(PoolKind::Max, 2, 2, 0);
        let out = pool2d(&t, &p);
        assert_eq!(out.as_slice(), &[3.0, 103.0]);
    }

    #[test]
    fn ops_count() {
        let p = PoolParams::new(PoolKind::Max, 3, 2, 0);
        let s = Shape::new(1, 64, 112, 112);
        assert_eq!(p.ops(s), (64 * 56 * 56 * 9) as u64);
    }

    #[test]
    fn fp16_pooling() {
        use vpu_num::f16;
        let t = Tensor::<f16>::from_f32_slice(Shape::new(1, 1, 2, 2), &[1., 2., 3., 4.]);
        let p = PoolParams::new(PoolKind::Avg, 2, 2, 0);
        let out = pool2d(&t, &p);
        assert_eq!(out.as_slice()[0].to_f32(), 2.5);
    }
}
