//! Fully-connected (inner-product) layer.

use crate::element::Element;
use crate::kernels::gemm::{dot, AccumMode};
use crate::shape::Shape;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// `y = W·x + b` for every batch item.
///
/// `weights` is `out_features × in_features` row-major; the input tensor is
/// flattened per item (GoogLeNet's classifier consumes the 1024-element
/// global-average-pool output).
pub fn dense<E: Element>(
    input: &Tensor<E>,
    weights: &[E],
    bias: &[E],
    out_features: usize,
    mode: AccumMode,
) -> Tensor<E> {
    let in_features = input.shape().item_len();
    assert_eq!(weights.len(), out_features * in_features, "weight length");
    assert_eq!(bias.len(), out_features, "bias length");
    let batch = input.shape().n;
    let mut out = Tensor::<E>::zeros(Shape::vector(batch, out_features));
    for n in 0..batch {
        let x = input.item(n);
        let dst = out.item_mut(n);
        dst.par_iter_mut().enumerate().for_each(|(j, y)| {
            let w = &weights[j * in_features..(j + 1) * in_features];
            *y = dot(w, x, mode) + bias[j];
        });
    }
    out
}

/// MAC count per batch item.
pub fn dense_macs(in_features: usize, out_features: usize) -> u64 {
    in_features as u64 * out_features as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_weights() {
        let x = Tensor::<f32>::from_f32_slice(Shape::vector(1, 3), &[1., 2., 3.]);
        let mut w = vec![0.0f32; 9];
        for i in 0..3 {
            w[i * 3 + i] = 1.0;
        }
        let y = dense(&x, &w, &[0.0; 3], 3, AccumMode::Widened);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_product_with_bias() {
        let x = Tensor::<f32>::from_f32_slice(Shape::vector(1, 2), &[3., 5.]);
        // W = [[1, 2], [0, -1]], b = [10, 1]
        let w = vec![1.0f32, 2.0, 0.0, -1.0];
        let y = dense(&x, &w, &[10.0, 1.0], 2, AccumMode::Widened);
        assert_eq!(y.as_slice(), &[23.0, -4.0]);
    }

    #[test]
    fn batched_rows_independent() {
        let x = Tensor::<f32>::from_f32_slice(Shape::vector(2, 2), &[1., 0., 0., 1.]);
        let w = vec![2.0f32, 3.0];
        let y = dense(&x, &w, &[0.0], 1, AccumMode::Widened);
        assert_eq!(y.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn flattens_chw_input() {
        let x = Tensor::<f32>::from_f32_slice(Shape::new(1, 2, 1, 2), &[1., 2., 3., 4.]);
        let w = vec![1.0f32, 1.0, 1.0, 1.0];
        let y = dense(&x, &w, &[0.0], 1, AccumMode::Widened);
        assert_eq!(y.as_slice(), &[10.0]);
    }

    #[test]
    fn macs() {
        assert_eq!(dense_macs(1024, 1000), 1_024_000);
    }

    #[test]
    #[should_panic(expected = "weight length")]
    fn rejects_bad_weights() {
        let x = Tensor::<f32>::zeros(Shape::vector(1, 4));
        dense(&x, &[0.0; 7], &[0.0; 2], 2, AccumMode::Widened);
    }
}
