//! im2col unrolling: convolution as matrix multiplication.
//!
//! Caffe (and the NCSDK graph compiler) lower spatial convolution to GEMM
//! by unrolling every receptive field into a column. For one batch item of
//! shape `C×H×W`, a `kh×kw` kernel with padding `p` and stride `s` yields a
//! matrix of shape `(C·kh·kw) × (OH·OW)`; multiplying the `(OC) × (C·kh·kw)`
//! weight matrix by it produces the `OC × (OH·OW)` output feature map.

use crate::element::Element;
use crate::shape::Shape;

/// Geometry of one im2col unroll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Im2ColGeom {
    pub channels: usize,
    pub in_h: usize,
    pub in_w: usize,
    pub kernel_h: usize,
    pub kernel_w: usize,
    pub pad: usize,
    pub stride: usize,
    pub out_h: usize,
    pub out_w: usize,
}

impl Im2ColGeom {
    /// Derive the output geometry (floor mode, as Caffe convolution does).
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        pad: usize,
        stride: usize,
    ) -> Self {
        let out_h = Shape::conv_extent(in_h, kernel, pad, stride, false);
        let out_w = Shape::conv_extent(in_w, kernel, pad, stride, false);
        Im2ColGeom {
            channels,
            in_h,
            in_w,
            kernel_h: kernel,
            kernel_w: kernel,
            pad,
            stride,
            out_h,
            out_w,
        }
    }

    /// Rows of the unrolled matrix: one per (channel, ky, kx).
    pub fn rows(&self) -> usize {
        self.channels * self.kernel_h * self.kernel_w
    }

    /// Columns of the unrolled matrix: one per output pixel.
    pub fn cols(&self) -> usize {
        self.out_h * self.out_w
    }
}

/// Unroll one batch item (`input` of length `C·H·W`) into `out`
/// (length `rows() · cols()`). Out-of-image taps read as zero.
pub fn im2col<E: Element>(geom: &Im2ColGeom, input: &[E], out: &mut [E]) {
    assert_eq!(input.len(), geom.channels * geom.in_h * geom.in_w, "input length");
    assert_eq!(out.len(), geom.rows() * geom.cols(), "output length");
    let cols = geom.cols();
    let mut row = 0usize;
    for c in 0..geom.channels {
        let plane = &input[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for ky in 0..geom.kernel_h {
            for kx in 0..geom.kernel_w {
                let dst = &mut out[row * cols..(row + 1) * cols];
                let mut col = 0usize;
                for oy in 0..geom.out_h {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        for _ in 0..geom.out_w {
                            dst[col] = E::ZERO;
                            col += 1;
                        }
                        continue;
                    }
                    let src_row = &plane[iy as usize * geom.in_w..(iy as usize + 1) * geom.in_w];
                    for ox in 0..geom.out_w {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        dst[col] = if ix < 0 || ix >= geom.in_w as isize {
                            E::ZERO
                        } else {
                            src_row[ix as usize]
                        };
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let g = Im2ColGeom::new(3, 224, 224, 7, 3, 2);
        assert_eq!((g.out_h, g.out_w), (112, 112));
        assert_eq!(g.rows(), 3 * 49);
        assert_eq!(g.cols(), 112 * 112);
    }

    #[test]
    fn identity_1x1() {
        // A 1x1 kernel with no padding unrolls to the input itself.
        let g = Im2ColGeom::new(2, 2, 2, 1, 0, 1);
        let input: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; g.rows() * g.cols()];
        im2col(&g, &input, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn three_by_three_padded_center() {
        // 1 channel, 3x3 input, 3x3 kernel, pad 1, stride 1 -> 9 rows x 9 cols.
        let g = Im2ColGeom::new(1, 3, 3, 3, 1, 1);
        let input: Vec<f32> = (1..=9).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; g.rows() * g.cols()];
        im2col(&g, &input, &mut out);
        // Row for (ky=1, kx=1) — the kernel centre — must equal the input.
        let centre = 4; // ky * 3 + kx with ky = kx = 1
        assert_eq!(&out[centre * 9..(centre + 1) * 9], input.as_slice());
        // Row for (ky=0, kx=0): the up-left shifted image, zero padded.
        assert_eq!(&out[0..9], &[0., 0., 0., 0., 1., 2., 0., 4., 5.]);
        // Row for (ky=2, kx=2): down-right shifted.
        let dr = 2 * 3 + 2;
        assert_eq!(&out[dr * 9..(dr + 1) * 9], &[5., 6., 0., 8., 9., 0., 0., 0., 0.]);
    }

    #[test]
    fn stride_two_subsamples() {
        let g = Im2ColGeom::new(1, 4, 4, 1, 0, 2);
        assert_eq!((g.out_h, g.out_w), (2, 2));
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; g.rows() * g.cols()];
        im2col(&g, &input, &mut out);
        assert_eq!(out, vec![0., 2., 8., 10.]);
    }

    #[test]
    fn channels_stack_as_row_blocks() {
        let g = Im2ColGeom::new(2, 2, 2, 1, 0, 1);
        let input: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; g.rows() * g.cols()];
        im2col(&g, &input, &mut out);
        assert_eq!(&out[0..4], &[0., 1., 2., 3.]);
        assert_eq!(&out[4..8], &[4., 5., 6., 7.]);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn rejects_bad_input_len() {
        let g = Im2ColGeom::new(1, 3, 3, 3, 1, 1);
        let mut out = vec![0.0f32; g.rows() * g.cols()];
        im2col(&g, &[0.0f32; 5], &mut out);
    }
}
