//! Precision-generic scalar element trait.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};
use vpu_num::f16;

/// A scalar element a tensor can hold and the kernels can compute on.
///
/// Implemented for `f32` (host reference devices) and the software
/// [`vpu_num::f16`] (simulated VPU). Every arithmetic op on `f16` rounds to
/// binary16, so running the same kernel with `E = f16` reproduces the
/// device's numerics.
pub trait Element:
    Copy
    + Debug
    + Default
    + Send
    + Sync
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + 'static
{
    const ZERO: Self;
    const ONE: Self;

    /// Lossy conversion from f32 (rounds for f16).
    fn from_f32(v: f32) -> Self;
    /// Widening conversion to f32 (exact for both implementations).
    fn to_f32(self) -> f32;
    /// IEEE maxNum semantics (NaN loses to a number).
    fn maximum(self, other: Self) -> Self;
    /// Bytes per element as stored on the device.
    fn width() -> usize;
    /// Short precision label used in reports ("fp32" / "fp16").
    fn precision_name() -> &'static str;
    fn is_nan_e(self) -> bool;
    fn exp_e(self) -> Self;
    fn powf_e(self, p: f32) -> Self;
}

impl Element for f32 {
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;

    #[inline]
    fn from_f32(v: f32) -> f32 {
        v
    }

    #[inline]
    fn to_f32(self) -> f32 {
        self
    }

    #[inline]
    fn maximum(self, other: f32) -> f32 {
        self.max(other)
    }

    #[inline]
    fn width() -> usize {
        4
    }

    fn precision_name() -> &'static str {
        "fp32"
    }

    #[inline]
    fn is_nan_e(self) -> bool {
        self.is_nan()
    }

    #[inline]
    fn exp_e(self) -> f32 {
        self.exp()
    }

    #[inline]
    fn powf_e(self, p: f32) -> f32 {
        self.powf(p)
    }
}

impl Element for f16 {
    const ZERO: f16 = f16::ZERO;
    const ONE: f16 = f16::ONE;

    #[inline]
    fn from_f32(v: f32) -> f16 {
        f16::from_f32(v)
    }

    #[inline]
    fn to_f32(self) -> f32 {
        f16::to_f32(self)
    }

    #[inline]
    fn maximum(self, other: f16) -> f16 {
        self.max(other)
    }

    #[inline]
    fn width() -> usize {
        2
    }

    fn precision_name() -> &'static str {
        "fp16"
    }

    #[inline]
    fn is_nan_e(self) -> bool {
        self.is_nan()
    }

    #[inline]
    fn exp_e(self) -> f16 {
        self.exp()
    }

    #[inline]
    fn powf_e(self, p: f32) -> f16 {
        self.powf(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::eq_op)] // x/x and x*x are the point of the smoke test
    fn generic_smoke<E: Element>() {
        let two = E::ONE + E::ONE;
        assert_eq!(two.to_f32(), 2.0);
        assert_eq!((two * two).to_f32(), 4.0);
        assert_eq!((two - E::ONE).to_f32(), 1.0);
        assert_eq!((two / two).to_f32(), 1.0);
        assert_eq!((-E::ONE).to_f32(), -1.0);
        assert_eq!(E::ZERO.maximum(E::ONE).to_f32(), 1.0);
        assert!(!E::ONE.is_nan_e());
        assert_eq!(E::ZERO.exp_e().to_f32(), 1.0);
        assert_eq!(two.powf_e(2.0).to_f32(), 4.0);
    }

    #[test]
    fn f32_element() {
        generic_smoke::<f32>();
        assert_eq!(f32::width(), 4);
        assert_eq!(f32::precision_name(), "fp32");
    }

    #[test]
    fn f16_element() {
        generic_smoke::<f16>();
        assert_eq!(f16::width(), 2);
        assert_eq!(f16::precision_name(), "fp16");
    }

    #[test]
    fn f16_element_rounds() {
        // 1 + 2^-11 rounds back to 1 in fp16 but not fp32 — the trait
        // preserves the per-type numerics.
        let small = 2.0f32.powi(-11);
        let h = <f16 as Element>::from_f32(1.0) + <f16 as Element>::from_f32(small);
        assert_eq!(h.to_f32(), 1.0);
        let s = <f32 as Element>::from_f32(1.0) + small;
        assert!(s > 1.0);
    }
}
