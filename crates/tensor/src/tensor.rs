//! Dense NCHW tensor container.

use crate::element::Element;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use vpu_num::f16;

/// A dense, owned NCHW tensor of elements `E`.
///
/// ```
/// use vpu_tensor::{Tensor, Shape};
/// let t = Tensor::<f32>::from_fn(Shape::chw(1, 2, 2), |_, _, h, w| (h * 2 + w) as f32);
/// assert_eq!(t.at(0, 0, 1, 1), 3.0);
/// // Quantizing to the NCS wire format rounds to binary16.
/// let h = t.quantize_fp16();
/// assert_eq!(h.shape(), t.shape());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<E> {
    shape: Shape,
    data: Vec<E>,
}

impl<E: Element> Tensor<E> {
    /// All-zero tensor.
    pub fn zeros(shape: Shape) -> Self {
        Tensor { shape, data: vec![E::ZERO; shape.len()] }
    }

    /// Tensor filled with one value.
    pub fn full(shape: Shape, value: E) -> Self {
        Tensor { shape, data: vec![value; shape.len()] }
    }

    /// Wrap an existing buffer; length must match the shape.
    pub fn from_vec(shape: Shape, data: Vec<E>) -> Self {
        assert_eq!(
            shape.len(),
            data.len(),
            "shape {shape} needs {} elements, got {}",
            shape.len(),
            data.len()
        );
        Tensor { shape, data }
    }

    /// Build from f32 values with per-element conversion (rounds for f16).
    pub fn from_f32_slice(shape: Shape, values: &[f32]) -> Self {
        assert_eq!(shape.len(), values.len());
        Tensor { shape, data: values.iter().map(|&v| E::from_f32(v)).collect() }
    }

    /// Build by evaluating `f(n, c, h, w)`.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize, usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        data.push(E::from_f32(f(n, c, h, w)));
                    }
                }
            }
        }
        Tensor { shape, data }
    }

    pub fn shape(&self) -> Shape {
        self.shape
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [E] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<E> {
        self.data
    }

    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> E {
        self.data[self.shape.index(n, c, h, w)]
    }

    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: E) {
        let i = self.shape.index(n, c, h, w);
        self.data[i] = v;
    }

    /// Contiguous slice of one batch item.
    pub fn item(&self, n: usize) -> &[E] {
        let il = self.shape.item_len();
        &self.data[n * il..(n + 1) * il]
    }

    /// Mutable slice of one batch item.
    pub fn item_mut(&mut self, n: usize) -> &mut [E] {
        let il = self.shape.item_len();
        &mut self.data[n * il..(n + 1) * il]
    }

    /// Copy a batch item out as a batch-of-one tensor.
    pub fn extract_item(&self, n: usize) -> Tensor<E> {
        Tensor::from_vec(self.shape.with_batch(1), self.item(n).to_vec())
    }

    /// Concatenate batch-of-one tensors into one batch tensor.
    pub fn stack_items(items: &[Tensor<E>]) -> Tensor<E> {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let base = items[0].shape();
        assert_eq!(base.n, 1, "stack_items expects batch-of-one inputs");
        let mut data = Vec::with_capacity(base.item_len() * items.len());
        for t in items {
            assert_eq!(t.shape(), base, "mismatched item shapes");
            data.extend_from_slice(t.as_slice());
        }
        Tensor::from_vec(base.with_batch(items.len()), data)
    }

    /// Reinterpret the buffer under a new shape of the same length.
    pub fn reshape(self, shape: Shape) -> Tensor<E> {
        assert_eq!(shape.len(), self.data.len(), "reshape to {shape} changes element count");
        Tensor { shape, data: self.data }
    }

    /// Element-wise map (same precision).
    pub fn map(&self, f: impl Fn(E) -> E + Sync) -> Tensor<E> {
        Tensor { shape: self.shape, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Convert every element to f32.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        self.data.iter().map(|&v| v.to_f32()).collect()
    }

    /// Convert to another element precision (rounds when narrowing).
    pub fn cast<T: Element>(&self) -> Tensor<T> {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| T::from_f32(v.to_f32())).collect(),
        }
    }

    /// Largest |x| in the tensor (0 for empty).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().map(|&v| v.to_f32().abs()).fold(0.0, f32::max)
    }

    /// Index and value of the maximum element of one batch item
    /// (first maximum wins on ties).
    pub fn argmax_item(&self, n: usize) -> (usize, f32) {
        let mut best = (0usize, f32::NEG_INFINITY);
        for (i, &v) in self.item(n).iter().enumerate() {
            let x = v.to_f32();
            if x > best.1 {
                best = (i, x);
            }
        }
        best
    }

    /// True if any element is NaN.
    pub fn has_nan(&self) -> bool {
        self.data.iter().any(|&v| v.is_nan_e())
    }
}

impl Tensor<f32> {
    /// Round-trip through binary16: the wire format the NCS accepts
    /// (`mvncLoadTensor` takes `half*`).
    pub fn quantize_fp16(&self) -> Tensor<f16> {
        self.cast()
    }
}

impl Tensor<f16> {
    /// Widen back to f32 (exact).
    pub fn widen(&self) -> Tensor<f32> {
        self.cast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = Shape::new(2, 2, 2, 2);
        let mut t = Tensor::<f32>::zeros(s);
        assert_eq!(t.len(), 16);
        t.set(1, 1, 1, 1, 7.0);
        assert_eq!(t.at(1, 1, 1, 1), 7.0);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
        let u = Tensor::<f32>::full(s, 3.0);
        assert!(u.as_slice().iter().all(|&v| v == 3.0));
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_length_mismatch() {
        Tensor::<f32>::from_vec(Shape::new(1, 1, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn from_fn_layout() {
        let t = Tensor::<f32>::from_fn(Shape::new(1, 2, 2, 2), |_, c, h, w| {
            (c * 100 + h * 10 + w) as f32
        });
        assert_eq!(t.as_slice(), &[0., 1., 10., 11., 100., 101., 110., 111.]);
    }

    #[test]
    fn items_and_stack() {
        let t = Tensor::<f32>::from_fn(Shape::new(3, 1, 1, 2), |n, _, _, w| (n * 10 + w) as f32);
        assert_eq!(t.item(1), &[10.0, 11.0]);
        let one = t.extract_item(2);
        assert_eq!(one.shape(), Shape::new(1, 1, 1, 2));
        assert_eq!(one.as_slice(), &[20.0, 21.0]);
        let re = Tensor::stack_items(&[t.extract_item(0), t.extract_item(1), t.extract_item(2)]);
        assert_eq!(re, t);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::<f32>::from_f32_slice(Shape::new(1, 1, 2, 3), &[1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape(Shape::vector(1, 6));
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_rejects_size_change() {
        Tensor::<f32>::zeros(Shape::new(1, 1, 2, 2)).reshape(Shape::vector(1, 5));
    }

    #[test]
    fn cast_rounds_to_fp16() {
        let t = Tensor::<f32>::from_f32_slice(Shape::vector(1, 2), &[1.0, 1.0 + 2.0f32.powi(-11)]);
        let h = t.quantize_fp16();
        assert_eq!(h.as_slice()[1].to_f32(), 1.0); // rounded
        let w = h.widen();
        assert_eq!(w.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn argmax_and_max_abs() {
        let t =
            Tensor::<f32>::from_f32_slice(Shape::vector(2, 3), &[0.1, -5.0, 2.0, 9.0, 1.0, 9.0]);
        assert_eq!(t.argmax_item(0), (2, 2.0));
        // first maximum wins on ties
        assert_eq!(t.argmax_item(1), (0, 9.0));
        assert_eq!(t.max_abs(), 9.0);
    }

    #[test]
    fn nan_detection() {
        let mut t = Tensor::<f32>::zeros(Shape::vector(1, 4));
        assert!(!t.has_nan());
        t.as_mut_slice()[2] = f32::NAN;
        assert!(t.has_nan());
    }

    #[test]
    fn map_applies_elementwise() {
        let t = Tensor::<f32>::from_f32_slice(Shape::vector(1, 3), &[-1.0, 0.0, 2.0]);
        let r = t.map(|v| Element::maximum(v, 0.0));
        assert_eq!(r.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn serde_round_trip_fp16() {
        let t = Tensor::<f16>::from_f32_slice(Shape::vector(1, 3), &[0.5, -1.25, 3.0]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor<f16> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
