//! NCHW tensor shapes and index arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense NCHW shape (batch, channels, height, width).
///
/// All layers in the reproduction use the Caffe memory layout: the W axis
/// is contiguous, then H, then C, then N.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    pub n: usize,
    pub c: usize,
    pub h: usize,
    pub w: usize,
}

impl Shape {
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape { n, c, h, w }
    }

    /// Shape of a single feature-map stack (batch of one).
    pub const fn chw(c: usize, h: usize, w: usize) -> Self {
        Shape::new(1, c, h, w)
    }

    /// Flat vector shape (e.g. classifier logits).
    pub const fn vector(n: usize, len: usize) -> Self {
        Shape::new(n, len, 1, 1)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements per batch item.
    pub fn item_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Flat offset of (n, c, h, w).
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.n && c < self.c && h < self.h && w < self.w,
            "index ({n},{c},{h},{w}) out of {self}"
        );
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Same spatial/channel extents with a different batch size.
    pub fn with_batch(&self, n: usize) -> Shape {
        Shape { n, ..*self }
    }

    /// Spatial output extent of a conv/pool window: floor or ceil mode.
    ///
    /// Caffe uses floor for convolution and ceil for pooling; both layers
    /// in this repo call through here so the two modes share one tested
    /// implementation.
    pub fn conv_extent(
        input: usize,
        kernel: usize,
        pad: usize,
        stride: usize,
        ceil: bool,
    ) -> usize {
        assert!(stride > 0, "stride must be positive");
        let padded = input + 2 * pad;
        assert!(padded >= kernel, "kernel {kernel} larger than padded input {padded}");
        let num = padded - kernel;
        if ceil {
            num.div_ceil(stride) + 1
        } else {
            num / stride + 1
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.item_len(), 60);
        assert!(!s.is_empty());
        assert_eq!(Shape::new(0, 3, 4, 5).len(), 0);
        assert!(Shape::new(0, 3, 4, 5).is_empty());
    }

    #[test]
    fn indexing_is_nchw_row_major() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 1), 1);
        assert_eq!(s.index(0, 0, 1, 0), 5);
        assert_eq!(s.index(0, 1, 0, 0), 20);
        assert_eq!(s.index(1, 0, 0, 0), 60);
        assert_eq!(s.index(1, 2, 3, 4), 119);
    }

    #[test]
    fn helpers() {
        assert_eq!(Shape::chw(3, 224, 224), Shape::new(1, 3, 224, 224));
        assert_eq!(Shape::vector(8, 1000), Shape::new(8, 1000, 1, 1));
        assert_eq!(Shape::new(1, 3, 4, 5).with_batch(7), Shape::new(7, 3, 4, 5));
    }

    #[test]
    fn conv_extent_floor_vs_ceil() {
        // GoogLeNet conv1: 224, k=7, p=3, s=2 -> 112 (floor).
        assert_eq!(Shape::conv_extent(224, 7, 3, 2, false), 112);
        // GoogLeNet pool1: 112, k=3, p=0, s=2 -> ceil((112-3)/2)+1 = 56.
        assert_eq!(Shape::conv_extent(112, 3, 0, 2, true), 56);
        // floor mode on the same geometry gives 55.
        assert_eq!(Shape::conv_extent(112, 3, 0, 2, false), 55);
        // 1x1 conv preserves extent.
        assert_eq!(Shape::conv_extent(28, 1, 0, 1, false), 28);
        // Same padding 3x3.
        assert_eq!(Shape::conv_extent(28, 3, 1, 1, false), 28);
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn conv_extent_rejects_oversized_kernel() {
        Shape::conv_extent(2, 5, 0, 1, false);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(8, 3, 224, 224).to_string(), "8x3x224x224");
    }
}
