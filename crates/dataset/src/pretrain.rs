//! Pseudo-training: make a seeded network a real working classifier.
//!
//! The BVLC GoogLeNet weights are not redistributable, and training a
//! replacement is out of scope. What Fig. 7 needs is a *fixed model that
//! classifies the evaluation dataset at a controlled error rate*, so the
//! FP32/FP16 comparison has a realistic operating point. That is achieved
//! with nearest-class-mean classification on a fixed random feature
//! extractor (a standard random-features readout):
//!
//! 1. keep the convolutional trunk at its seeded Xavier weights — a
//!    random but fixed feature extractor;
//! 2. draw `train_per_class` **training** images per class (a stream
//!    disjoint from the validation set), push them through the trunk, and
//!    average into class centroids φ̂_c — this absorbs the non-linear
//!    feature shift that noise + clipping induce through a ReLU trunk;
//! 3. set the classifier to the nearest-centroid discriminant in the
//!    mean-centred feature space: row `c` ∝ ψ_c = φ̂_c − φ̄ with bias
//!    −(‖ψ_c‖²/2 + ψ_c·φ̄), i.e. `argmin_c ‖(f−φ̄) − ψ_c‖²`.
//!
//! Accuracy then degrades smoothly with the generator's σ (within-class
//! feature scatter grows against fixed between-centroid distances), and
//! the resulting network runs end-to-end through the exact code paths a
//! trained model would.

use crate::image::ImageGen;
use rayon::prelude::*;
use std::sync::Arc;
use vpu_nn::graph::{CompiledNetwork, NetworkSpec};
use vpu_nn::init;
use vpu_nn::layer::LayerKind;
use vpu_nn::weights::Weights;
use vpu_tensor::kernels::gemm::AccumMode;
use vpu_tensor::Element;

/// Target logit spread between the correct class and the field (sets the
/// confidence scale of correct predictions to a realistic 0.3–0.9 band).
const TARGET_LOGIT_SPREAD: f32 = 6.0;

/// Default training draws per class.
pub const DEFAULT_TRAIN_PER_CLASS: usize = 12;

/// Build pseudo-trained weights for `spec` against `gen`'s distribution
/// with the default training-set size.
pub fn pseudo_train(spec: &Arc<NetworkSpec>, gen: &ImageGen, seed: u64) -> Weights {
    pseudo_train_with(spec, gen, seed, DEFAULT_TRAIN_PER_CLASS)
}

/// Build pseudo-trained weights with `train_per_class` training draws per
/// class (0 falls back to the clean prototypes — useful for tests).
///
/// Panics if the spec has no dense classifier or if the generator's
/// class count does not match the classifier width.
pub fn pseudo_train_with(
    spec: &Arc<NetworkSpec>,
    gen: &ImageGen,
    seed: u64,
    train_per_class: usize,
) -> Weights {
    let (dense_idx, out_features) = spec
        .nodes
        .iter()
        .enumerate()
        .rev()
        .find_map(|(i, n)| match n.kind {
            LayerKind::Dense { out_features } => Some((i, out_features)),
            _ => None,
        })
        .expect("network has no dense classifier");
    let classes = gen.config().classes;
    assert_eq!(out_features, classes, "classifier width {out_features} != classes {classes}");

    let mut weights = init::xavier(spec, seed);
    let feature_node = spec.nodes[dense_idx].inputs[0];

    // Class centroids in trunk-feature space, averaged over the training
    // draws (rayon-parallel across classes; each class is deterministic).
    let net = CompiledNetwork::<f32>::compile(spec.clone(), &weights, AccumMode::Widened);
    let features: Vec<Vec<f32>> = (0..classes)
        .into_par_iter()
        .map(|c| {
            let extract = |input: &vpu_tensor::Tensor<f32>| {
                let mut feat: Vec<f32> = Vec::new();
                net.forward_observed(input, |i, _, out| {
                    if i == feature_node {
                        feat = out.as_slice().iter().map(|v| v.to_f32()).collect();
                    }
                });
                assert!(!feat.is_empty(), "feature node produced no activation");
                feat
            };
            if train_per_class == 0 {
                return extract(&gen.prototype_input(c));
            }
            let mut acc: Vec<f32> = Vec::new();
            for t in 0..train_per_class {
                let feat = extract(&gen.train_sample(c, t as u64));
                if acc.is_empty() {
                    acc = feat;
                } else {
                    for (a, x) in acc.iter_mut().zip(feat) {
                        *a += x;
                    }
                }
            }
            for a in &mut acc {
                *a /= train_per_class as f32;
            }
            acc
        })
        .collect();

    let dim = features[0].len();
    // Mean feature across classes: random trunks respond similarly to
    // everything, so uncentred matched filters would all fire together.
    let mut mean = vec![0.0f32; dim];
    for f in &features {
        for (m, &x) in mean.iter_mut().zip(f) {
            *m += x / classes as f32;
        }
    }

    let centred: Vec<Vec<f32>> =
        features.iter().map(|f| f.iter().zip(&mean).map(|(x, m)| x - m).collect()).collect();
    // Gain normalizes the logit scale to the typical centroid energy so
    // confidences are comparable across network variants.
    let msd: f32 = centred.iter().map(|psi| psi.iter().map(|x| x * x).sum::<f32>()).sum::<f32>()
        / classes as f32;
    assert!(msd > 1e-12, "degenerate prototype features");
    let gain = TARGET_LOGIT_SPREAD / msd;

    let mut w = vec![0.0f32; classes * dim];
    let mut b = vec![0.0f32; classes];
    for (c, psi) in centred.iter().enumerate() {
        let norm_sq: f32 = psi.iter().map(|x| x * x).sum();
        let row = &mut w[c * dim..(c + 1) * dim];
        for (dst, x) in row.iter_mut().zip(psi) {
            *dst = gain * x;
        }
        // -gain * (‖ψ_c‖²/2 + ψ_c·φ̄): completes the nearest-centroid
        // discriminant in the centred feature space.
        let psi_dot_mean: f32 = psi.iter().zip(&mean).map(|(x, m)| x * m).sum();
        b[c] = -gain * (0.5 * norm_sq + psi_dot_mean);
    }
    let name = spec.nodes[dense_idx].name.clone();
    weights.insert(name, w, b);
    weights
}

/// Fraction of `samples` the network top-1 misclassifies (utility shared
/// by the calibrator and tests).
pub fn top1_error<E: Element>(
    net: &CompiledNetwork<E>,
    samples: impl Iterator<Item = (vpu_tensor::Tensor<E>, usize)>,
) -> f64 {
    let mut total = 0usize;
    let mut wrong = 0usize;
    for (input, label) in samples {
        let out = net.forward(&input);
        let (pred, _) = out.argmax_item(0);
        total += 1;
        if pred != label {
            wrong += 1;
        }
    }
    assert!(total > 0, "no samples");
    wrong as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageGenConfig;
    use vpu_nn::googlenet;
    use vpu_tensor::Shape;

    fn setup(sigma: f64, mix: f32) -> (Arc<NetworkSpec>, ImageGen, Weights) {
        let spec = Arc::new(googlenet::tiny());
        let mut cfg = ImageGenConfig::new(10, Shape::chw(3, 32, 32), 5);
        cfg.sigma = sigma;
        cfg.distractor_mix = mix;
        let gen = ImageGen::new(cfg);
        let w = pseudo_train(&spec, &gen, 5);
        (spec, gen, w)
    }

    #[test]
    fn clean_prototypes_classify_perfectly() {
        // With no noise, training draws equal the prototype and the
        // nearest-centroid construction classifies it exactly.
        let (spec, gen, w) = setup(0.0, 0.0);
        let net = CompiledNetwork::<f32>::compile(spec, &w, AccumMode::Widened);
        for c in 0..10 {
            let out = net.forward(&gen.prototype_input(c));
            let (pred, conf) = out.argmax_item(0);
            assert_eq!(pred, c, "prototype {c} misclassified");
            assert!(conf > 0.2, "confidence {conf} too low for clean prototype");
        }
    }

    #[test]
    fn mild_noise_mostly_correct() {
        let (spec, gen, w) = setup(0.08, 0.0);
        let net = CompiledNetwork::<f32>::compile(spec, &w, AccumMode::Widened);
        let samples = (0..60).map(|i| {
            let c = i % 10;
            (gen.sample(c, i as u64 / 10), c)
        });
        let err = top1_error(&net, samples);
        // Chance level is 0.9 for 10 balanced classes; low noise must be
        // far below it (the exact value varies with the trunk seed).
        assert!(err < 0.4, "error {err} too high at low noise");
    }

    #[test]
    fn heavy_noise_degrades_accuracy() {
        let (spec, gen, w) = setup(1.5, 0.45);
        let net = CompiledNetwork::<f32>::compile(spec, &w, AccumMode::Widened);
        let samples = (0..60).map(|i| {
            let c = i % 10;
            (gen.sample(c, i as u64 / 10), c)
        });
        let err = top1_error(&net, samples);
        assert!(err > 0.2, "error {err} suspiciously low at heavy noise");
    }

    #[test]
    fn deterministic_weights() {
        let (_, _, w1) = setup(0.3, 0.2);
        let (_, _, w2) = setup(0.3, 0.2);
        assert_eq!(w1, w2);
    }

    #[test]
    #[should_panic(expected = "classifier width")]
    fn class_count_mismatch_rejected() {
        let spec = Arc::new(googlenet::tiny()); // 10-way classifier
        let gen = ImageGen::new(ImageGenConfig::new(7, Shape::chw(3, 32, 32), 1));
        pseudo_train(&spec, &gen, 1);
    }

    #[test]
    fn probabilities_form_distribution() {
        let (spec, gen, w) = setup(0.3, 0.2);
        let net = CompiledNetwork::<f32>::compile(spec, &w, AccumMode::Widened);
        let out = net.forward(&gen.sample(4, 0));
        let sum: f32 = out.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(out.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn training_stream_is_disjoint_from_validation() {
        let (_, gen, _) = setup(0.2, 0.1);
        assert_ne!(gen.train_sample(3, 0), gen.sample(3, 0));
    }
}
