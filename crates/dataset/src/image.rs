//! Synthetic image generation.
//!
//! Each class owns a **prototype**: a smooth random field built by
//! bilinearly upsampling a seeded low-resolution pattern (smoothness
//! matters — convolutional trunks average locally, so class identity must
//! survive downsampling the way real object appearance does). A sample is
//!
//! `image = (1 - mix) · prototype(class) + mix · prototype(distractor) + σ·noise`
//!
//! clipped to `[0, 1]` and mean-centred (the Caffe preprocessing step the
//! paper applies with the ILSVRC-2012 training means). `σ` and `mix` set
//! task difficulty; [`crate::calibrate`] tunes σ to the paper's error
//! rate.

use rand::Rng;
use vpu_num::rng;
use vpu_tensor::{Shape, Tensor};

/// Geometry and difficulty of the generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ImageGenConfig {
    pub classes: usize,
    /// Output image shape (one item, NCHW with n=1).
    pub shape: Shape,
    /// Low-res prototype lattice extent (upsampled to `shape`).
    pub lattice: usize,
    /// Gaussian pixel noise σ.
    pub sigma: f64,
    /// Blend weight of a distractor class prototype.
    pub distractor_mix: f32,
    /// Master seed.
    pub seed: u64,
}

impl ImageGenConfig {
    pub fn new(classes: usize, shape: Shape, seed: u64) -> Self {
        ImageGenConfig { classes, shape, lattice: 8, sigma: 0.35, distractor_mix: 0.25, seed }
    }
}

/// Per-channel means subtracted after generation (the ILSVRC-2012 BGR
/// means 104/117/123 rescaled to \[0,1\]).
pub const CHANNEL_MEANS: [f32; 3] = [104.0 / 255.0, 117.0 / 255.0, 123.0 / 255.0];

/// The generator; prototypes are materialized lazily and cached.
#[derive(Debug, Clone)]
pub struct ImageGen {
    cfg: ImageGenConfig,
    prototypes: Vec<Tensor<f32>>,
}

impl ImageGen {
    pub fn new(cfg: ImageGenConfig) -> Self {
        assert!(cfg.classes > 0, "need at least one class");
        assert!(cfg.lattice >= 2, "lattice must be at least 2");
        let prototypes = (0..cfg.classes).map(|c| prototype(&cfg, c)).collect();
        ImageGen { cfg, prototypes }
    }

    pub fn config(&self) -> &ImageGenConfig {
        &self.cfg
    }

    /// The clean prototype of a class (pixel space, before mean-centring).
    pub fn prototype(&self, class: usize) -> &Tensor<f32> {
        &self.prototypes[class]
    }

    /// Prototype preprocessed the way samples are (mean-centred): what the
    /// pseudo-trainer pushes through the trunk.
    pub fn prototype_input(&self, class: usize) -> Tensor<f32> {
        center(self.prototypes[class].clone())
    }

    /// Generate validation image `index` of class `class` (bit-exact for
    /// a given `(seed, class, index)`).
    pub fn sample(&self, class: usize, index: u64) -> Tensor<f32> {
        self.sample_tagged(class, index, "image")
    }

    /// Generate a *training* image: same distribution as [`ImageGen::sample`]
    /// but from a disjoint random stream, so pseudo-training never sees a
    /// validation image.
    pub fn train_sample(&self, class: usize, index: u64) -> Tensor<f32> {
        self.sample_tagged(class, index, "train-image")
    }

    fn sample_tagged(&self, class: usize, index: u64, tag: &str) -> Tensor<f32> {
        assert!(class < self.cfg.classes, "class {class} out of range");
        let mut stream = rng::indexed_stream(self.cfg.seed, tag, (class as u64) << 32 | index);
        let distractor = if self.cfg.classes > 1 {
            let d: usize = stream.gen_range(0..self.cfg.classes - 1);
            if d >= class {
                d + 1
            } else {
                d
            }
        } else {
            0
        };
        let proto = &self.prototypes[class];
        let dproto = &self.prototypes[distractor];
        let mix = self.cfg.distractor_mix;
        let sigma = self.cfg.sigma;
        let mut img = Tensor::<f32>::zeros(self.cfg.shape);
        {
            let dst = img.as_mut_slice();
            let p = proto.as_slice();
            let d = dproto.as_slice();
            for i in 0..dst.len() {
                let noise = rng::normal(&mut stream) as f32 * sigma as f32;
                dst[i] = ((1.0 - mix) * p[i] + mix * d[i] + noise).clamp(0.0, 1.0);
            }
        }
        center(img)
    }
}

/// Subtract the per-channel ILSVRC means (Caffe preprocessing).
fn center(mut img: Tensor<f32>) -> Tensor<f32> {
    let shape = img.shape();
    let plane = shape.h * shape.w;
    let data = img.as_mut_slice();
    for c in 0..shape.c {
        let mean = CHANNEL_MEANS[c % CHANNEL_MEANS.len()];
        for v in &mut data[c * plane..(c + 1) * plane] {
            *v -= mean;
        }
    }
    img
}

/// Build the smooth prototype field for one class.
fn prototype(cfg: &ImageGenConfig, class: usize) -> Tensor<f32> {
    let mut stream = rng::indexed_stream(cfg.seed, "prototype", class as u64);
    let l = cfg.lattice;
    let shape = cfg.shape;
    // Low-res control lattice in [0, 1].
    let lattice: Vec<f32> = (0..shape.c * l * l).map(|_| stream.gen_range(0.0..1.0)).collect();
    Tensor::from_fn(shape, |_, c, y, x| {
        // Bilinear upsample of the lattice.
        let fy = y as f32 / (shape.h - 1).max(1) as f32 * (l - 1) as f32;
        let fx = x as f32 / (shape.w - 1).max(1) as f32 * (l - 1) as f32;
        let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
        let (y1, x1) = ((y0 + 1).min(l - 1), (x0 + 1).min(l - 1));
        let (wy, wx) = (fy - y0 as f32, fx - x0 as f32);
        let at = |yy: usize, xx: usize| lattice[(c * l + yy) * l + xx];
        at(y0, x0) * (1.0 - wy) * (1.0 - wx)
            + at(y0, x1) * (1.0 - wy) * wx
            + at(y1, x0) * wy * (1.0 - wx)
            + at(y1, x1) * wy * wx
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> ImageGen {
        ImageGen::new(ImageGenConfig::new(10, Shape::chw(3, 32, 32), 7))
    }

    #[test]
    fn deterministic_generation() {
        let g1 = gen();
        let g2 = gen();
        assert_eq!(g1.sample(3, 17), g2.sample(3, 17));
        assert_eq!(g1.prototype(5), g2.prototype(5));
    }

    #[test]
    fn distinct_indices_differ() {
        let g = gen();
        assert_ne!(g.sample(0, 0), g.sample(0, 1));
        assert_ne!(g.sample(0, 0), g.sample(1, 0));
    }

    #[test]
    fn prototypes_are_distinct_across_classes() {
        let g = gen();
        let a = g.prototype(0).as_slice().to_vec();
        let b = g.prototype(1).as_slice().to_vec();
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32;
        assert!(diff > 0.1, "prototypes too similar: {diff}");
    }

    #[test]
    fn prototypes_are_smooth() {
        // Neighbouring pixels of the upsampled field must be close —
        // much closer than white noise would be.
        let g = gen();
        let p = g.prototype(0);
        let mut grad = 0.0f32;
        let mut count = 0;
        for y in 0..31 {
            for x in 0..31 {
                grad += (p.at(0, 0, y, x) - p.at(0, 0, y, x + 1)).abs();
                grad += (p.at(0, 0, y, x) - p.at(0, 0, y + 1, x)).abs();
                count += 2;
            }
        }
        let avg = grad / count as f32;
        // White noise in [0,1] has mean |gradient| ~ 0.33; the upsampled
        // lattice must be far below that.
        assert!(avg < 0.12, "prototype not smooth: mean gradient {avg}");
    }

    #[test]
    fn samples_are_mean_centred() {
        let g = gen();
        let img = g.sample(2, 5);
        // Pixel values were clipped to [0,1] then mean-subtracted.
        for (i, &v) in img.as_slice().iter().enumerate() {
            let c = i / (32 * 32);
            let m = CHANNEL_MEANS[c];
            assert!(v >= -m - 1e-6 && v <= 1.0 - m + 1e-6, "pixel {v} at channel {c}");
        }
    }

    #[test]
    fn noise_level_scales_with_sigma() {
        let mut cfg = ImageGenConfig::new(4, Shape::chw(3, 16, 16), 9);
        cfg.distractor_mix = 0.0;
        cfg.sigma = 0.0;
        let clean = ImageGen::new(cfg.clone());
        cfg.sigma = 0.5;
        let noisy = ImageGen::new(cfg);
        let c = clean.sample(1, 0);
        let n = noisy.sample(1, 0);
        let dev: f32 =
            c.as_slice().iter().zip(n.as_slice()).map(|(a, b)| (a - b).abs()).sum::<f32>()
                / c.len() as f32;
        assert!(dev > 0.1, "sigma had no effect: {dev}");
        // Zero-sigma, zero-mix sample equals the centred prototype.
        let proto_centred = clean.prototype_input(1);
        for (a, b) in c.as_slice().iter().zip(proto_centred.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_bounds_checked() {
        gen().sample(10, 0);
    }

    #[test]
    fn single_class_dataset_works() {
        let g = ImageGen::new(ImageGenConfig::new(1, Shape::chw(3, 8, 8), 1));
        let img = g.sample(0, 0);
        assert!(!img.has_nan());
    }
}
