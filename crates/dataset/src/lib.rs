//! Synthetic ILSVRC-2012 stand-in.
//!
//! The paper evaluates on the 50 000-image ILSVRC-2012 validation set
//! with the pre-trained BVLC GoogLeNet. Neither the images nor the
//! weights are redistributable, so this crate builds the closest
//! synthetic equivalent that preserves what the accuracy experiments
//! measure — the *difference* between FP32 and FP16 inference on one
//! fixed model and dataset:
//!
//! 1. [`synset`] — a deterministic 1000-entry WordNet-style class table.
//! 2. [`image`] — per-class prototype images (smooth seeded random
//!    fields) plus controlled Gaussian noise and distractor blending;
//!    every image is generated bit-identically from `(seed, index)`.
//! 3. [`pretrain`] — "pseudo-training": the convolutional trunk keeps its
//!    seeded Xavier weights and the classifier is set to matched filters
//!    of the class prototypes *as seen through that trunk*, yielding a
//!    real working classifier with tunable difficulty.
//! 4. [`calibrate`] — bisects the noise level until top-1 error hits the
//!    paper's ~32 %, so Fig. 7 is reproduced at the right operating
//!    point.
//!
//! The decode stage (OpenCV JPEG + OpenEXR half conversion in NCSw) is
//! represented by the FP32→FP16 quantization in `vpu-tensor`; the paper
//! excludes decode time from its measurements, and so do we.

pub mod calibrate;
pub mod dataset;
pub mod image;
pub mod ppm;
pub mod pretrain;
pub mod synset;
pub mod transform;

pub use dataset::{DatasetConfig, LabeledImage, ValidationSet};
pub use pretrain::pseudo_train;
pub use synset::SynsetTable;
