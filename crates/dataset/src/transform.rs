//! Caffe-style input preprocessing: resize and crop.
//!
//! The real NCSw path decodes an arbitrary-sized JPEG with OpenCV,
//! resizes the short side to 256, center-crops 224×224 and subtracts the
//! channel means. The generator in [`crate::image`] produces images at
//! the network geometry directly, but these transforms make the on-disk
//! pipeline (PPM files of any size) exercise the same path as the real
//! tool — and they are reused for augmentation (mirroring) in
//! pseudo-training experiments.

use vpu_tensor::{Shape, Tensor};

/// Bilinear resize of a pixel-space image (NCHW, n=1) to `out_h × out_w`.
pub fn resize_bilinear(image: &Tensor<f32>, out_h: usize, out_w: usize) -> Tensor<f32> {
    let s = image.shape();
    assert_eq!(s.n, 1, "one image at a time");
    assert!(out_h > 0 && out_w > 0, "empty target");
    Tensor::from_fn(Shape::chw(s.c, out_h, out_w), |_, c, y, x| {
        // Map output pixel centres onto input pixel centres.
        let fy = if out_h == 1 { 0.0 } else { y as f32 * (s.h - 1) as f32 / (out_h - 1) as f32 };
        let fx = if out_w == 1 { 0.0 } else { x as f32 * (s.w - 1) as f32 / (out_w - 1) as f32 };
        let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
        let (y1, x1) = ((y0 + 1).min(s.h - 1), (x0 + 1).min(s.w - 1));
        let (wy, wx) = (fy - y0 as f32, fx - x0 as f32);
        image.at(0, c, y0, x0) * (1.0 - wy) * (1.0 - wx)
            + image.at(0, c, y0, x1) * (1.0 - wy) * wx
            + image.at(0, c, y1, x0) * wy * (1.0 - wx)
            + image.at(0, c, y1, x1) * wy * wx
    })
}

/// Resize so the *short side* equals `short` (aspect preserved, as the
/// Caffe transformer does before cropping).
pub fn resize_short_side(image: &Tensor<f32>, short: usize) -> Tensor<f32> {
    let s = image.shape();
    let (h, w) = if s.h <= s.w {
        let w = (s.w as f64 * short as f64 / s.h as f64).round() as usize;
        (short, w.max(1))
    } else {
        let h = (s.h as f64 * short as f64 / s.w as f64).round() as usize;
        (h.max(1), short)
    };
    resize_bilinear(image, h, w)
}

/// Center crop to `crop_h × crop_w` (panics if the image is smaller).
pub fn center_crop(image: &Tensor<f32>, crop_h: usize, crop_w: usize) -> Tensor<f32> {
    let s = image.shape();
    assert!(s.h >= crop_h && s.w >= crop_w, "crop {crop_h}x{crop_w} larger than {s}");
    let oy = (s.h - crop_h) / 2;
    let ox = (s.w - crop_w) / 2;
    Tensor::from_fn(Shape::chw(s.c, crop_h, crop_w), |_, c, y, x| image.at(0, c, oy + y, ox + x))
}

/// Horizontal mirror (the classic training augmentation).
pub fn mirror(image: &Tensor<f32>) -> Tensor<f32> {
    let s = image.shape();
    Tensor::from_fn(s.with_batch(1), |_, c, y, x| image.at(0, c, y, s.w - 1 - x))
}

/// The full Caffe deploy transform: short side → 256, center crop to the
/// network geometry.
pub fn caffe_deploy(image: &Tensor<f32>, target: Shape) -> Tensor<f32> {
    let resized = resize_short_side(image, 256.max(target.h.max(target.w)));
    center_crop(&resized, target.h, target.w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(h: usize, w: usize) -> Tensor<f32> {
        Tensor::from_fn(Shape::chw(3, h, w), |_, c, y, x| {
            c as f32 * 0.1 + y as f32 / h as f32 + x as f32 / w as f32 * 0.5
        })
    }

    #[test]
    fn identity_resize_is_exact() {
        let img = gradient(9, 7);
        let out = resize_bilinear(&img, 9, 7);
        for (a, b) in img.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn resize_preserves_corners() {
        let img = gradient(8, 8);
        let out = resize_bilinear(&img, 17, 5);
        assert!((out.at(0, 0, 0, 0) - img.at(0, 0, 0, 0)).abs() < 1e-6);
        assert!((out.at(0, 2, 16, 4) - img.at(0, 2, 7, 7)).abs() < 1e-6);
    }

    #[test]
    fn resize_is_bounded_by_input_range() {
        let img = gradient(6, 11);
        let lo = img.as_slice().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = img.as_slice().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let out = resize_bilinear(&img, 23, 3);
        for &v in out.as_slice() {
            assert!(v >= lo - 1e-6 && v <= hi + 1e-6);
        }
    }

    #[test]
    fn short_side_logic() {
        // Landscape 100x200 -> short side 50 -> 50x100.
        let img = gradient(100, 200);
        let out = resize_short_side(&img, 50);
        assert_eq!((out.shape().h, out.shape().w), (50, 100));
        // Portrait 200x100 -> 100x50.
        let img = gradient(200, 100);
        let out = resize_short_side(&img, 50);
        assert_eq!((out.shape().h, out.shape().w), (100, 50));
    }

    #[test]
    fn center_crop_takes_the_middle() {
        let img = Tensor::from_fn(Shape::chw(1, 5, 5), |_, _, y, x| (y * 5 + x) as f32);
        let out = center_crop(&img, 3, 3);
        assert_eq!(out.at(0, 0, 0, 0), 6.0);
        assert_eq!(out.at(0, 0, 2, 2), 18.0);
    }

    #[test]
    #[should_panic(expected = "larger than")]
    fn oversized_crop_rejected() {
        center_crop(&gradient(4, 4), 5, 5);
    }

    #[test]
    fn mirror_is_involutive() {
        let img = gradient(6, 9);
        let twice = mirror(&mirror(&img));
        assert_eq!(twice, img);
        let once = mirror(&img);
        assert_eq!(once.at(0, 0, 0, 0), img.at(0, 0, 0, 8));
    }

    #[test]
    fn caffe_deploy_hits_network_geometry() {
        // An odd-sized "photo" lands exactly on 224x224.
        let photo = gradient(300, 467);
        let out = caffe_deploy(&photo, Shape::chw(3, 224, 224));
        assert_eq!(out.shape(), Shape::chw(3, 224, 224));
        // And on the mini geometry (short side rule still uses >=256).
        let out = caffe_deploy(&photo, Shape::chw(3, 64, 64));
        assert_eq!(out.shape(), Shape::chw(3, 64, 64));
    }

    #[test]
    fn disk_pipeline_composes_with_ppm() {
        // PPM save -> load -> deploy transform -> quantize: the full
        // "OpenCV" path of the real NCSw, end to end.
        let photo = gradient(70, 90);
        let bytes = crate::ppm::encode(&photo);
        let loaded = crate::ppm::decode(&bytes).unwrap();
        let net_input = caffe_deploy(&loaded, Shape::chw(3, 64, 64));
        assert_eq!(net_input.shape(), Shape::chw(3, 64, 64));
        let fp16 = net_input.quantize_fp16();
        assert!(!fp16.widen().has_nan());
    }
}
