//! Binary PPM (P6) image codec.
//!
//! The real NCSw decodes ILSVRC JPEGs through OpenCV. JPEG is out of
//! scope here, but a dataset that exists only in memory would skip the
//! decode-and-preprocess stage entirely, so the synthetic images can be
//! materialized to disk as PPM — a complete, standard, dependency-free
//! raster format — and read back through the same preprocessing path
//! (u8 RGB → f32 → mean-centred NCHW) that OpenCV feeds Caffe.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use vpu_tensor::{Shape, Tensor};

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PpmError {
    NotP6,
    Malformed(String),
    UnsupportedDepth(u32),
}

impl std::fmt::Display for PpmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PpmError::NotP6 => write!(f, "not a binary PPM (P6) file"),
            PpmError::Malformed(m) => write!(f, "malformed PPM: {m}"),
            PpmError::UnsupportedDepth(d) => write!(f, "unsupported max value {d}"),
        }
    }
}

impl std::error::Error for PpmError {}

/// Encode a 3-channel pixel-space tensor (values in `[0,1]`, NCHW, n=1)
/// as binary PPM bytes.
pub fn encode(image: &Tensor<f32>) -> Vec<u8> {
    let s = image.shape();
    assert_eq!(s.n, 1, "one image at a time");
    assert_eq!(s.c, 3, "PPM is RGB");
    let mut out = Vec::with_capacity(s.h * s.w * 3 + 32);
    let _ = write!(out, "P6\n{} {}\n255\n", s.w, s.h);
    for y in 0..s.h {
        for x in 0..s.w {
            for c in 0..3 {
                let v = (image.at(0, c, y, x).clamp(0.0, 1.0) * 255.0).round() as u8;
                out.push(v);
            }
        }
    }
    out
}

/// Decode binary PPM bytes into a `[0,1]` pixel-space tensor (3×H×W).
pub fn decode(bytes: &[u8]) -> Result<Tensor<f32>, PpmError> {
    // Header: "P6" <ws> width <ws> height <ws> maxval <single ws> data.
    fn next_token(bytes: &[u8], pos: &mut usize) -> Result<(usize, usize), PpmError> {
        let mut start = *pos;
        // Skip whitespace and comments.
        loop {
            while start < bytes.len() && bytes[start].is_ascii_whitespace() {
                start += 1;
            }
            if start < bytes.len() && bytes[start] == b'#' {
                while start < bytes.len() && bytes[start] != b'\n' {
                    start += 1;
                }
            } else {
                break;
            }
        }
        let mut end = start;
        while end < bytes.len() && !bytes[end].is_ascii_whitespace() {
            end += 1;
        }
        if start == end {
            return Err(PpmError::Malformed("unexpected end of header".into()));
        }
        *pos = end;
        Ok((start, end))
    }

    let mut pos = 0usize;
    let (s, e) = next_token(bytes, &mut pos)?;
    if &bytes[s..e] != b"P6" {
        return Err(PpmError::NotP6);
    }
    let mut dims = [0u32; 3];
    for d in &mut dims {
        let (s, e) = next_token(bytes, &mut pos)?;
        let text = std::str::from_utf8(&bytes[s..e])
            .map_err(|_| PpmError::Malformed("non-ASCII header".into()))?;
        *d = text.parse().map_err(|_| PpmError::Malformed(format!("bad number '{text}'")))?;
    }
    let (w, h, maxval) = (dims[0] as usize, dims[1] as usize, dims[2]);
    if maxval != 255 {
        return Err(PpmError::UnsupportedDepth(maxval));
    }
    // Exactly one whitespace byte separates header and data.
    pos += 1;
    let need = w * h * 3;
    if bytes.len() < pos + need {
        return Err(PpmError::Malformed(format!(
            "pixel data truncated: need {need}, have {}",
            bytes.len().saturating_sub(pos)
        )));
    }
    let data = &bytes[pos..pos + need];
    Ok(Tensor::from_fn(Shape::chw(3, h, w), |_, c, y, x| data[(y * w + x) * 3 + c] as f32 / 255.0))
}

/// Write one image to disk.
pub fn save(image: &Tensor<f32>, path: &Path) -> io::Result<()> {
    fs::write(path, encode(image))
}

/// Read one image from disk.
pub fn load(path: &Path) -> io::Result<Tensor<f32>> {
    let bytes = fs::read(path)?;
    decode(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(h: usize, w: usize) -> Tensor<f32> {
        Tensor::from_fn(Shape::chw(3, h, w), |_, c, y, x| {
            ((c * 37 + y * 11 + x * 3) % 256) as f32 / 255.0
        })
    }

    #[test]
    fn encode_decode_round_trip_is_exact_at_8_bits() {
        let img = sample(7, 5);
        let back = decode(&encode(&img)).unwrap();
        assert_eq!(back.shape(), img.shape());
        for (a, b) in img.as_slice().iter().zip(back.as_slice()) {
            // Values were exact multiples of 1/255, so lossless.
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn quantizes_to_8_bits() {
        let img = Tensor::from_fn(Shape::chw(3, 1, 1), |_, _, _, _| 0.5001);
        let back = decode(&encode(&img)).unwrap();
        assert!((back.as_slice()[0] - 128.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn header_is_standard() {
        let bytes = encode(&sample(2, 3));
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 2 * 3 * 3);
    }

    #[test]
    fn accepts_comments_and_flexible_whitespace() {
        let mut bytes = b"P6 # comment\n# another\n 2\t1 \n255\n".to_vec();
        bytes.extend_from_slice(&[0, 0, 0, 255, 255, 255]);
        let img = decode(&bytes).unwrap();
        assert_eq!(img.shape(), Shape::chw(3, 1, 2));
        assert_eq!(img.at(0, 0, 0, 1), 1.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(decode(b"P5\n1 1\n255\n\0").unwrap_err(), PpmError::NotP6);
        assert!(matches!(
            decode(b"P6\n2 2\n65535\n").unwrap_err(),
            PpmError::UnsupportedDepth(65535)
        ));
        assert!(matches!(decode(b"P6\n4 4\n255\n\0\0").unwrap_err(), PpmError::Malformed(_)));
        assert!(matches!(decode(b"P6\n").unwrap_err(), PpmError::Malformed(_)));
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join("vpu-ppm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("img.ppm");
        let img = sample(4, 4);
        save(&img, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.shape(), img.shape());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synthetic_dataset_survives_the_disk_pipeline() {
        use crate::image::{ImageGen, ImageGenConfig};
        // Generate -> clamp to pixel space -> PPM -> decode -> centre:
        // classification-relevant content must survive 8-bit quantization.
        let gen = ImageGen::new(ImageGenConfig::new(4, Shape::chw(3, 16, 16), 3));
        let proto = gen.prototype(2);
        let back = decode(&encode(proto)).unwrap();
        let mut max_err = 0.0f32;
        for (a, b) in proto.as_slice().iter().zip(back.as_slice()) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err <= 0.5 / 255.0 + 1e-6, "8-bit error {max_err}");
    }
}
