//! WordNet-style synset table.
//!
//! ImageNet organizes classes as WordNet synsets (`n01440764` = "tench").
//! The table here is synthetic but structurally faithful: stable
//! eight-digit noun IDs, human-readable names, and a gloss — enough for
//! the NCSw result listings ("a list of labels with the correspondent
//! confidence") to look and behave like the real pipeline's.

use serde::{Deserialize, Serialize};

/// One synthetic synset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Synset {
    /// WordNet-style id, e.g. `n03000247`.
    pub wnid: String,
    /// Short label.
    pub name: String,
    /// One-line gloss.
    pub gloss: String,
}

/// The class table for one dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynsetTable {
    synsets: Vec<Synset>,
}

/// Noun stems combined to produce deterministic readable names.
const STEMS: [&str; 20] = [
    "tench", "terrier", "beacon", "gondola", "abacus", "crane", "lynx", "bobsled", "minaret",
    "zeppelin", "parsnip", "quill", "sundial", "kayak", "lantern", "marmot", "obelisk", "pagoda",
    "sextant", "tripod",
];

const MODIFIERS: [&str; 10] = [
    "common", "lesser", "greater", "northern", "southern", "striped", "spotted", "dwarf", "giant",
    "alpine",
];

impl SynsetTable {
    /// Build a table of `classes` synthetic synsets.
    pub fn generate(classes: usize) -> Self {
        let synsets = (0..classes)
            .map(|i| {
                let stem = STEMS[i % STEMS.len()];
                let modifier = MODIFIERS[(i / STEMS.len()) % MODIFIERS.len()];
                let variant = i / (STEMS.len() * MODIFIERS.len());
                let name = if variant == 0 {
                    format!("{modifier} {stem}")
                } else {
                    format!("{modifier} {stem} {variant}")
                };
                Synset {
                    wnid: format!("n{:08}", 1_000_000 + i * 4241 % 89_999_999),
                    name: name.clone(),
                    gloss: format!("synthetic ILSVRC class {i}: {name}"),
                }
            })
            .collect();
        SynsetTable { synsets }
    }

    pub fn len(&self) -> usize {
        self.synsets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.synsets.is_empty()
    }

    pub fn get(&self, class: usize) -> &Synset {
        &self.synsets[class]
    }

    pub fn iter(&self) -> impl Iterator<Item = &Synset> {
        self.synsets.iter()
    }

    /// Class index by WordNet id.
    pub fn index_of(&self, wnid: &str) -> Option<usize> {
        self.synsets.iter().position(|s| s.wnid == wnid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        assert_eq!(SynsetTable::generate(1000).len(), 1000);
        assert_eq!(SynsetTable::generate(10).len(), 10);
        assert!(SynsetTable::generate(0).is_empty());
    }

    #[test]
    fn ids_are_wordnet_shaped_and_unique() {
        let t = SynsetTable::generate(1000);
        let mut seen = std::collections::HashSet::new();
        for s in t.iter() {
            assert!(s.wnid.starts_with('n'), "{}", s.wnid);
            assert_eq!(s.wnid.len(), 9, "{}", s.wnid);
            assert!(s.wnid[1..].chars().all(|c| c.is_ascii_digit()));
            assert!(seen.insert(s.wnid.clone()), "duplicate wnid {}", s.wnid);
        }
    }

    #[test]
    fn names_unique_within_1000() {
        let t = SynsetTable::generate(1000);
        let mut seen = std::collections::HashSet::new();
        for s in t.iter() {
            assert!(seen.insert(s.name.clone()), "duplicate name {}", s.name);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(SynsetTable::generate(100), SynsetTable::generate(100));
    }

    #[test]
    fn lookup() {
        let t = SynsetTable::generate(50);
        let id = t.get(7).wnid.clone();
        assert_eq!(t.index_of(&id), Some(7));
        assert_eq!(t.index_of("n99999999"), None);
    }
}
