//! The synthetic validation set and its ground-truth annotations.

use crate::image::{ImageGen, ImageGenConfig};
use crate::synset::SynsetTable;
use rand::seq::SliceRandom;
use vpu_num::rng;
use vpu_tensor::{Shape, Tensor};

/// Dataset parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetConfig {
    pub classes: usize,
    /// Total validation images (the real set has 50 000).
    pub total_images: usize,
    /// Number of evaluation subsets (the paper uses 5 × 10 000).
    pub subsets: usize,
    pub image_shape: Shape,
    pub sigma: f64,
    pub distractor_mix: f32,
    pub seed: u64,
}

impl DatasetConfig {
    /// Paper-shaped config at an arbitrary scale: `total_images` spread
    /// over 5 subsets, labels balanced over `classes`.
    pub fn ilsvrc_like(classes: usize, total_images: usize, image_shape: Shape, seed: u64) -> Self {
        DatasetConfig {
            classes,
            total_images,
            subsets: 5,
            image_shape,
            sigma: 0.35,
            distractor_mix: 0.25,
            seed,
        }
    }

    pub fn images_per_subset(&self) -> usize {
        self.total_images / self.subsets
    }
}

/// One annotated validation image (the ground-truth label plays the role
/// of the ILSVRC *Validation Bounding Box Annotations* the paper extracts
/// labels from).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledImage {
    /// Global index in the validation set.
    pub index: usize,
    /// Ground-truth class.
    pub label: usize,
    /// Preprocessed input tensor (mean-centred f32 pixel data).
    pub pixels: Tensor<f32>,
}

/// The validation set: deterministic labels + on-demand image synthesis.
#[derive(Debug, Clone)]
pub struct ValidationSet {
    cfg: DatasetConfig,
    synsets: SynsetTable,
    generator: ImageGen,
    labels: Vec<usize>,
    /// Per-image sample index within its class.
    occurrence: Vec<u64>,
}

impl ValidationSet {
    pub fn new(cfg: DatasetConfig) -> Self {
        assert!(cfg.subsets > 0, "need at least one subset");
        assert!(
            cfg.total_images.is_multiple_of(cfg.subsets),
            "total_images must divide evenly into subsets"
        );
        let synsets = SynsetTable::generate(cfg.classes);
        let mut gen_cfg = ImageGenConfig::new(cfg.classes, cfg.image_shape, cfg.seed);
        gen_cfg.sigma = cfg.sigma;
        gen_cfg.distractor_mix = cfg.distractor_mix;
        let generator = ImageGen::new(gen_cfg);
        // Balanced labels, shuffled deterministically (validation order in
        // ILSVRC is not sorted by class).
        let mut labels: Vec<usize> = (0..cfg.total_images).map(|i| i % cfg.classes).collect();
        labels.shuffle(&mut rng::stream(cfg.seed, "label-order"));
        let mut seen = vec![0u64; cfg.classes];
        let occurrence = labels
            .iter()
            .map(|&c| {
                let o = seen[c];
                seen[c] += 1;
                o
            })
            .collect();
        ValidationSet { cfg, synsets, generator, labels, occurrence }
    }

    pub fn config(&self) -> &DatasetConfig {
        &self.cfg
    }

    pub fn synsets(&self) -> &SynsetTable {
        &self.synsets
    }

    pub fn generator(&self) -> &ImageGen {
        &self.generator
    }

    pub fn len(&self) -> usize {
        self.cfg.total_images
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ground-truth label of image `index`.
    pub fn label(&self, index: usize) -> usize {
        self.labels[index]
    }

    /// Materialize one image.
    pub fn image(&self, index: usize) -> LabeledImage {
        let label = self.labels[index];
        let pixels = self.generator.sample(label, self.occurrence[index]);
        LabeledImage { index, label, pixels }
    }

    /// Global indices of one evaluation subset.
    pub fn subset_indices(&self, subset: usize) -> std::ops::Range<usize> {
        assert!(subset < self.cfg.subsets, "subset {subset} out of range");
        let n = self.cfg.images_per_subset();
        subset * n..(subset + 1) * n
    }

    /// Iterate one subset's images.
    pub fn subset(&self, subset: usize) -> impl Iterator<Item = LabeledImage> + '_ {
        self.subset_indices(subset).map(|i| self.image(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> ValidationSet {
        ValidationSet::new(DatasetConfig::ilsvrc_like(10, 100, Shape::chw(3, 16, 16), 3))
    }

    #[test]
    fn sizes_and_subsets() {
        let s = set();
        assert_eq!(s.len(), 100);
        assert_eq!(s.config().images_per_subset(), 20);
        assert_eq!(s.subset_indices(0), 0..20);
        assert_eq!(s.subset_indices(4), 80..100);
        assert_eq!(s.subset(2).count(), 20);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subset_bounds() {
        set().subset_indices(5);
    }

    #[test]
    fn labels_are_balanced() {
        let s = set();
        let mut counts = vec![0usize; 10];
        for i in 0..s.len() {
            counts[s.label(i)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn labels_are_shuffled() {
        let s = set();
        let first: Vec<usize> = (0..10).map(|i| s.label(i)).collect();
        assert_ne!(first, (0..10).collect::<Vec<_>>(), "labels look unshuffled");
    }

    #[test]
    fn images_deterministic_and_distinct() {
        let a = set();
        let b = set();
        assert_eq!(a.image(7), b.image(7));
        // Two images of the same class still differ (occurrence index).
        let same_class: Vec<usize> =
            (0..a.len()).filter(|&i| a.label(i) == a.label(0)).take(2).collect();
        assert_ne!(a.image(same_class[0]).pixels, a.image(same_class[1]).pixels);
    }

    #[test]
    fn image_matches_label() {
        let s = set();
        for i in [0, 13, 57, 99] {
            let img = s.image(i);
            assert_eq!(img.label, s.label(i));
            assert_eq!(img.index, i);
            assert_eq!(img.pixels.shape(), Shape::chw(3, 16, 16));
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_subsets_rejected() {
        ValidationSet::new(DatasetConfig {
            subsets: 3,
            ..DatasetConfig::ilsvrc_like(10, 100, Shape::chw(3, 8, 8), 1)
        });
    }

    #[test]
    fn synset_table_matches_classes() {
        let s = set();
        assert_eq!(s.synsets().len(), 10);
    }
}
