//! Noise calibration: hit the paper's top-1 error operating point.
//!
//! The paper measures ~32 % top-1 error for GoogLeNet on ILSVRC-2012.
//! Task difficulty here is set by the generator's noise σ; error is
//! monotone (in expectation) in σ, so a bisection over σ on a probe
//! sample lands the synthetic pipeline at the same operating point. The
//! pseudo-training (noise-trained centroids) is repeated at each probe σ,
//! exactly as a real training run would see the operating distribution.

use crate::dataset::{DatasetConfig, ValidationSet};
use crate::image::{ImageGen, ImageGenConfig};
use crate::pretrain::pseudo_train;
use rayon::prelude::*;
use std::sync::Arc;
use vpu_nn::graph::{CompiledNetwork, NetworkSpec};
use vpu_nn::weights::Weights;
use vpu_tensor::kernels::gemm::AccumMode;

/// Outcome of a calibration run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Calibration {
    /// Noise level that achieves the target.
    pub sigma: f64,
    /// Error measured on the probe at `sigma`.
    pub achieved_error: f64,
    /// Bisection iterations used.
    pub iterations: usize,
    /// Probe sample size per iteration.
    pub probe_images: usize,
}

/// Pseudo-train at one σ and return the weights with their generator.
pub fn train_at_sigma(
    spec: &Arc<NetworkSpec>,
    base: &DatasetConfig,
    sigma: f64,
) -> (ImageGen, Weights) {
    let mut gen_cfg = ImageGenConfig::new(base.classes, base.image_shape, base.seed);
    gen_cfg.sigma = sigma;
    gen_cfg.distractor_mix = base.distractor_mix;
    let gen = ImageGen::new(gen_cfg);
    let weights = pseudo_train(spec, &gen, base.seed);
    (gen, weights)
}

/// Probe error at one σ: balanced classes, rayon-parallel inference.
pub fn probe_error(
    spec: &Arc<NetworkSpec>,
    weights: &Weights,
    base: &DatasetConfig,
    sigma: f64,
    probe_images: usize,
) -> f64 {
    let net = CompiledNetwork::<f32>::compile(spec.clone(), weights, AccumMode::Widened);
    let mut gen_cfg = ImageGenConfig::new(base.classes, base.image_shape, base.seed);
    gen_cfg.sigma = sigma;
    gen_cfg.distractor_mix = base.distractor_mix;
    let gen = ImageGen::new(gen_cfg);
    let wrong: usize = (0..probe_images)
        .into_par_iter()
        .map(|i| {
            let class = i % base.classes;
            let img = gen.sample(class, (i / base.classes) as u64 + 100_000);
            let out = net.forward(&img);
            usize::from(out.argmax_item(0).0 != class)
        })
        .sum();
    wrong as f64 / probe_images as f64
}

/// Bisect σ until the probe error is within `tolerance` of `target`.
pub fn calibrate_sigma(
    spec: &Arc<NetworkSpec>,
    base: &DatasetConfig,
    target_error: f64,
    probe_images: usize,
    tolerance: f64,
    max_iterations: usize,
) -> (Calibration, Weights) {
    assert!((0.0..1.0).contains(&target_error), "target error must be in [0,1)");
    let (mut lo, mut hi) = (0.0f64, 2.0f64);
    let mut best: Option<(f64, f64, f64, Weights)> = None; // (|gap|, sigma, err, weights)
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let mid = 0.5 * (lo + hi);
        // Retrain at this σ: the centroids must see the same noise level
        // the validation images carry.
        let (_, weights) = train_at_sigma(spec, base, mid);
        let err = probe_error(spec, &weights, base, mid, probe_images);
        let gap = (err - target_error).abs();
        let better = best.as_ref().is_none_or(|(g, ..)| gap < *g);
        if better {
            best = Some((gap, mid, err, weights));
        }
        if gap <= tolerance {
            break;
        }
        if err < target_error {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (_, sigma, err, weights) = best.expect("at least one iteration");
    (Calibration { sigma, achieved_error: err, iterations, probe_images }, weights)
}

/// Build a fully calibrated validation set + weights for an experiment:
/// the dataset's σ is replaced by the calibrated value.
pub fn calibrated_set(
    spec: &Arc<NetworkSpec>,
    mut cfg: DatasetConfig,
    target_error: f64,
    probe_images: usize,
) -> (ValidationSet, Weights, Calibration) {
    let (cal, weights) = calibrate_sigma(spec, &cfg, target_error, probe_images, 0.015, 12);
    cfg.sigma = cal.sigma;
    (ValidationSet::new(cfg), weights, cal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpu_nn::googlenet;
    use vpu_tensor::Shape;

    fn base() -> (Arc<NetworkSpec>, DatasetConfig) {
        let spec = Arc::new(googlenet::tiny());
        let cfg = DatasetConfig::ilsvrc_like(10, 100, Shape::chw(3, 32, 32), 11);
        (spec, cfg)
    }

    #[test]
    fn error_is_monotone_in_sigma() {
        let (spec, cfg) = base();
        let (_, w_low) = train_at_sigma(&spec, &cfg, 0.05);
        let e_low = probe_error(&spec, &w_low, &cfg, 0.05, 60);
        let (_, w_high) = train_at_sigma(&spec, &cfg, 1.6);
        let e_high = probe_error(&spec, &w_high, &cfg, 1.6, 60);
        assert!(e_high > e_low + 0.05, "noise must hurt accuracy: {e_low} vs {e_high}");
    }

    #[test]
    fn calibration_hits_target() {
        let (spec, cfg) = base();
        let (cal, _w) = calibrate_sigma(&spec, &cfg, 0.32, 120, 0.05, 8);
        assert!(
            (cal.achieved_error - 0.32).abs() <= 0.08,
            "calibrated error {} too far from 0.32 (sigma {})",
            cal.achieved_error,
            cal.sigma
        );
        assert!(cal.sigma > 0.0 && cal.sigma < 2.0);
    }

    #[test]
    fn calibrated_set_uses_found_sigma() {
        let (spec, cfg) = base();
        let (set, _w, cal) = calibrated_set(&spec, cfg, 0.32, 80);
        assert_eq!(set.config().sigma, cal.sigma);
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn calibration_is_deterministic() {
        let (spec, cfg) = base();
        let (a, _) = calibrate_sigma(&spec, &cfg, 0.3, 60, 0.03, 6);
        let (b, _) = calibrate_sigma(&spec, &cfg, 0.3, 60, 0.03, 6);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "target error")]
    fn bad_target_rejected() {
        let (spec, cfg) = base();
        calibrate_sigma(&spec, &cfg, 1.5, 10, 0.1, 2);
    }
}
