//! Streaming Image Processing Pipeline (SIPP) model.
//!
//! The Myriad 2 carries fully programmable hardware-accelerated kernels
//! for common 5×5-neighbourhood image operations (tone mapping, Harris,
//! HoG, denoise, …), each with a local controller that reads/writes CMX
//! through a crossbar and can retire one completed output pixel per cycle
//! (paper §II-A). For CNN inference the NCSDK can route pooling-style
//! sliding-window layers through these filters, freeing SHAVE issue slots
//! — modelled here as a parallel FIFO engine with per-pixel throughput.

use crate::arch::Myriad2Config;
use desim::resource::Busy;
use desim::{Duration, FifoResource, SimTime};
use serde::{Deserialize, Serialize};

/// Hardware filter kinds exposed by the pipeline (subset relevant to CNN
/// layer offload plus the classic ISP ones for completeness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SippKernel {
    /// Sliding-window reduce (used for max/avg pooling offload).
    WindowReduce,
    /// Separable 5×5 convolution filter (ISP-style).
    Conv5x5,
    /// Tone mapping / LUT.
    ToneMap,
    /// Harris corner response.
    Harris,
    /// Luma/chroma denoise.
    Denoise,
}

/// The filter pipeline: a chain of kernels sharing one streaming engine.
#[derive(Debug, Clone)]
pub struct SippPipeline {
    engine: FifoResource,
    pixels_per_cycle: f64,
    clock_hz: f64,
    enabled: bool,
}

impl SippPipeline {
    pub fn new(cfg: &Myriad2Config) -> Self {
        SippPipeline {
            engine: FifoResource::new("sipp"),
            pixels_per_cycle: cfg.sipp_pixels_per_cycle,
            clock_hz: cfg.clock_hz,
            enabled: cfg.sipp_enabled,
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Can this layer kind be routed to the pipeline? Only local
    /// fixed-window operations qualify; GEMM-lowered convolutions and
    /// fully-connected layers stay on the SHAVEs.
    pub fn eligible(&self, mnemonic: &str) -> bool {
        self.enabled && matches!(mnemonic, "maxpool" | "avgpool" | "lrn")
    }

    /// Stream `pixels` output pixels through one kernel.
    pub fn run(&mut self, ready: SimTime, _kernel: SippKernel, pixels: u64) -> Busy {
        if pixels == 0 {
            return Busy { start: ready, end: ready };
        }
        let cycles = (pixels as f64 / self.pixels_per_cycle).ceil() as u64;
        self.engine.acquire(ready, Duration::for_cycles(cycles, self.clock_hz))
    }

    pub fn busy_total(&self) -> Duration {
        self.engine.busy_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sipp() -> SippPipeline {
        SippPipeline::new(&Myriad2Config::default())
    }

    #[test]
    fn pixel_throughput() {
        let mut s = sipp();
        // 600k pixels at 1 px/cycle @600 MHz = 1 ms.
        let b = s.run(SimTime(0), SippKernel::WindowReduce, 600_000);
        assert_eq!(b.end - b.start, Duration::from_millis(1.0));
    }

    #[test]
    fn filters_share_the_engine() {
        let mut s = sipp();
        let a = s.run(SimTime(0), SippKernel::Harris, 1_000);
        let b = s.run(SimTime(0), SippKernel::Denoise, 1_000);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn eligibility() {
        let s = sipp();
        assert!(s.eligible("maxpool"));
        assert!(s.eligible("avgpool"));
        assert!(s.eligible("lrn"));
        assert!(!s.eligible("conv"));
        assert!(!s.eligible("fc"));
        assert!(!s.eligible("softmax"));
    }

    #[test]
    fn disabled_pipeline_rejects_offload() {
        let cfg = Myriad2Config::default().without_sipp();
        let s = SippPipeline::new(&cfg);
        assert!(!s.eligible("maxpool"));
    }

    #[test]
    fn zero_pixels_instant() {
        let mut s = sipp();
        let b = s.run(SimTime(3), SippKernel::ToneMap, 0);
        assert_eq!(b.start, b.end);
    }
}
