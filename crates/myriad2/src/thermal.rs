//! First-order thermal model of the NCS stick.
//!
//! The paper's §V closes with "actual power measurements would be
//! required in future work to understand the practical differences (i.e.,
//! the TDP can be far from the real power draws per device)". This module
//! takes the step the paper defers: the simulator produces real power
//! traces (per-island activity integration), and a lumped RC model turns
//! them into junction temperature — confirming that the passively cooled
//! stick never approaches throttling at inference load, unlike the 80 W
//! hosts it replaces.
//!
//! Model: `C_th · dT/dt = P(t) − (T − T_amb)/R_th`, forward-Euler over
//! the activity timeline.

use crate::power::ActivitySummary;
use serde::{Deserialize, Serialize};

/// Lumped thermal parameters of the stick (chip + PCB + plastic case,
/// free convection).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Junction-to-ambient thermal resistance, K/W. Small passive USB
    /// sticks land near 25–35 K/W; the NCS's aluminium case is at the
    /// good end.
    pub r_th: f64,
    /// Lumped thermal capacitance, J/K (a few grams of silicon + board).
    pub c_th: f64,
    /// Ambient, °C.
    pub t_ambient: f64,
    /// Vendor throttle threshold, °C (the NCSDK reports a thermal
    /// warning at 70 °C and throttles beyond 80 °C).
    pub t_throttle: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel { r_th: 28.0, c_th: 6.0, t_ambient: 25.0, t_throttle: 80.0 }
    }
}

/// Temperature trace produced by integrating a power profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalTrace {
    /// (seconds, °C) samples.
    pub samples: Vec<(f64, f64)>,
    pub peak_c: f64,
    pub steady_state_c: f64,
    pub throttled: bool,
}

impl ThermalModel {
    /// Steady-state junction temperature at a constant power draw.
    pub fn steady_state(&self, power_w: f64) -> f64 {
        self.t_ambient + self.r_th * power_w
    }

    /// Thermal time constant in seconds.
    pub fn tau(&self) -> f64 {
        self.r_th * self.c_th
    }

    /// Integrate a constant-power phase list: `(watts, seconds)` pairs
    /// (e.g. alternating inference/idle), starting from ambient.
    pub fn integrate(&self, phases: &[(f64, f64)]) -> ThermalTrace {
        let dt = 0.05;
        let mut t = self.t_ambient;
        let mut clock = 0.0;
        let mut samples = vec![(0.0, t)];
        let mut peak = t;
        for &(p, secs) in phases {
            let steps = (secs / dt).ceil() as usize;
            for _ in 0..steps {
                let d_t = (p - (t - self.t_ambient) / self.r_th) / self.c_th * dt;
                t += d_t;
                clock += dt;
                peak = peak.max(t);
            }
            samples.push((clock, t));
        }
        let avg_power =
            if clock > 0.0 { phases.iter().map(|&(p, s)| p * s).sum::<f64>() / clock } else { 0.0 };
        ThermalTrace {
            samples,
            peak_c: peak,
            steady_state_c: self.steady_state(avg_power),
            throttled: peak >= self.t_throttle,
        }
    }

    /// Convenience: temperature after running one activity summary in a
    /// loop indefinitely (steady state at its average power).
    pub fn steady_state_of(
        &self,
        activity: &ActivitySummary,
        power_model: &crate::power::PowerModel,
    ) -> f64 {
        self.steady_state(power_model.avg_power(activity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Myriad2, Myriad2Config};
    use desim::SimTime;
    use vpu_nn::cost::NetworkCost;
    use vpu_num::f16;

    #[test]
    fn steady_state_math() {
        let m = ThermalModel::default();
        assert_eq!(m.steady_state(0.0), 25.0);
        // 1 W through 28 K/W: 53 °C.
        assert!((m.steady_state(1.0) - 53.0).abs() < 1e-12);
        assert!((m.tau() - 168.0).abs() < 1e-9);
    }

    #[test]
    fn integration_converges_to_steady_state() {
        let m = ThermalModel::default();
        // Run 10 time constants at constant 0.7 W.
        let trace = m.integrate(&[(0.7, m.tau() * 10.0)]);
        let expect = m.steady_state(0.7);
        let last = trace.samples.last().unwrap().1;
        assert!((last - expect).abs() < 0.2, "{last} vs {expect}");
        assert!(!trace.throttled);
    }

    #[test]
    fn stick_never_throttles_at_inference_load() {
        // Real chip activity from the simulator: continuous GoogLeNet.
        let cost = NetworkCost::of::<f16>(&vpu_nn::googlenet::full());
        let mut chip = Myriad2::new(Myriad2Config::default());
        let run = chip.run_cost(&cost, SimTime::ZERO);
        let m = ThermalModel::default();
        let t = m.steady_state_of(&run.activity, chip.power_model());
        // ~0.68 W sustained -> ~44 °C: far below the 80 °C throttle.
        assert!((38.0..55.0).contains(&t), "steady state {t} °C");
        assert!(t < m.t_throttle - 20.0);
    }

    #[test]
    fn an_80w_part_would_throttle_on_this_cooling() {
        // The contrast that motivates the paper: the hosts' class of
        // power draw is impossible in this form factor.
        let m = ThermalModel::default();
        let trace = m.integrate(&[(5.0, 120.0)]);
        assert!(trace.throttled, "5 W in a passive stick must overheat");
    }

    #[test]
    fn duty_cycling_cools_the_chip() {
        let m = ThermalModel::default();
        let busy = m.integrate(&[(0.7, 600.0)]);
        // 50% duty cycle: inference / idle alternation.
        let phases: Vec<(f64, f64)> = (0..60).flat_map(|_| [(0.7, 5.0), (0.17, 5.0)]).collect();
        let duty = m.integrate(&phases);
        assert!(duty.peak_c < busy.peak_c);
    }
}
