//! Layer-by-layer execution of a network on the simulated chip.
//!
//! The NCSDK runtime executes graph layers in order: the LEON RISC
//! scheduler dispatches each layer, DMA streams weights (and activation
//! spill) through the LPDDR3 channel, activations move through the CMX
//! crossbar, and the layer's arithmetic runs fork-join across the SHAVE
//! pool — or on the SIPP pipeline for window ops. A layer completes when
//! its slowest resource finishes; the fabric overlaps the rest (§II-A:
//! "designed for low latency by endorsing data locality").
//!
//! Two entry points:
//! * [`Myriad2::run_cost`] — timing only, from a [`NetworkCost`] profile.
//!   Used by the throughput experiments, where the full 224×224 GoogLeNet
//!   work profile is simulated without executing 1.6 GMAC per image.
//! * [`Myriad2::run_inference`] — timing plus **real FP16 numerics**
//!   through `vpu_nn`, used by the accuracy experiments.

use crate::arch::Myriad2Config;
use crate::cmx::Cmx;
use crate::ddr::DdrChannel;
use crate::power::{ActivitySummary, PowerModel};
use crate::shave;
use crate::sipp::{SippKernel, SippPipeline};
use desim::{Duration, ServerPool, SimTime, TraceLog};
use serde::{Deserialize, Serialize};
use vpu_nn::cost::NetworkCost;
use vpu_nn::graph::CompiledNetwork;
use vpu_num::f16;
use vpu_tensor::Tensor;

/// Timing record of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    pub name: String,
    pub mnemonic: String,
    pub start: SimTime,
    pub end: SimTime,
    /// Busy time on the compute resource (SHAVE pool or SIPP).
    pub compute: Duration,
    /// Busy time on the DDR channel.
    pub memory: Duration,
    /// Whether the SIPP pipeline executed this layer.
    pub on_sipp: bool,
}

impl LayerTiming {
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// Result of simulating one inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkRun {
    pub network: String,
    pub start: SimTime,
    pub end: SimTime,
    pub layers: Vec<LayerTiming>,
    pub activity: ActivitySummary,
    /// Joules consumed by the chip during this run.
    pub energy_j: f64,
}

impl NetworkRun {
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// The layer that dominated the run.
    pub fn slowest_layer(&self) -> Option<&LayerTiming> {
        self.layers.iter().max_by_key(|l| l.duration())
    }
}

/// A hand-written compute kernel (MDK path): raw work quantities for the
/// chip's resources, with optional overrides for code that is tuned
/// differently than the NCSDK's convolution kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelWork {
    pub name: String,
    /// Multiply-accumulates.
    pub macs: u64,
    /// Scalar/compare operations.
    pub aux_ops: u64,
    /// Bytes moved through the CMX crossbar.
    pub cmx_bytes: u64,
    /// Bytes streamed over the LPDDR3 channel.
    pub ddr_bytes: u64,
    /// VAU lanes used per issue (8 for FP16, 4 for FP32); `None` uses
    /// the chip default.
    pub vau_lanes: Option<usize>,
    /// Sustained issue efficiency; `None` uses the chip default (tuned
    /// for NCSDK conv kernels). Hand-written GEMM sustains more.
    pub issue_efficiency: Option<f64>,
}

/// One simulated Myriad 2 chip with its private virtual clock.
///
/// ```
/// use myriad2::{Myriad2, Myriad2Config};
/// use desim::SimTime;
/// use vpu_nn::cost::NetworkCost;
/// let cost = NetworkCost::of::<vpu_num::f16>(&vpu_nn::googlenet::full());
/// let mut chip = Myriad2::new(Myriad2Config::default());
/// let run = chip.run_cost(&cost, SimTime::ZERO);
/// // One GoogLeNet inference lands near the paper's 100.7 ms anchor.
/// assert!((90.0..105.0).contains(&run.duration().as_millis()));
/// ```
#[derive(Debug, Clone)]
pub struct Myriad2 {
    cfg: Myriad2Config,
    shaves: ServerPool,
    cmx: Cmx,
    ddr: DdrChannel,
    sipp: SippPipeline,
    power: PowerModel,
    now: SimTime,
    trace: TraceLog,
    lane: String,
}

impl Myriad2 {
    pub fn new(cfg: Myriad2Config) -> Self {
        Myriad2::with_lane(cfg, "vpu")
    }

    /// `lane` names this chip in trace output (e.g. `"vpu3"`).
    pub fn with_lane(cfg: Myriad2Config, lane: impl Into<String>) -> Self {
        Myriad2 {
            shaves: ServerPool::new("shaves", cfg.shaves),
            cmx: Cmx::new(&cfg),
            ddr: DdrChannel::new(&cfg),
            sipp: SippPipeline::new(&cfg),
            power: PowerModel { shave_islands: cfg.shaves, ..PowerModel::default() },
            cfg,
            now: SimTime::ZERO,
            trace: TraceLog::new(),
            lane: lane.into(),
        }
    }

    pub fn config(&self) -> &Myriad2Config {
        &self.cfg
    }

    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    pub fn take_trace(&mut self) -> TraceLog {
        std::mem::take(&mut self.trace)
    }

    /// Aggregate busy time since simulation start — the power-integration
    /// input for lifetime energy/thermal queries.
    pub fn lifetime_activity(&self) -> ActivitySummary {
        let (sh, cm, dd, si) = self.busy_totals();
        ActivitySummary {
            shave_busy: sh,
            cmx_busy: cm,
            ddr_busy: dd,
            sipp_busy: si,
            span: self.now - SimTime::ZERO,
        }
    }

    /// Load the graph file into DDR (called by the NCS firmware when the
    /// host allocates a graph). Returns false if DDR is exhausted.
    pub fn load_graph(&mut self, weight_bytes: u64) -> bool {
        self.ddr.reserve(weight_bytes)
    }

    /// Simulate one inference from a cost profile; the device clock
    /// advances to the completion instant, which is also returned.
    pub fn run_cost(&mut self, cost: &NetworkCost, ready: SimTime) -> NetworkRun {
        let start = SimTime::max_of(ready, self.now);
        let (sh0, cm0, dd0, si0) = self.busy_totals();
        let mut t = start;
        let mut layers = Vec::with_capacity(cost.layers.len());
        for layer in &cost.layers {
            // With pipelined DMA the whole weight stream is issued ahead
            // in layer order (the DDR channel serializes it; the CMX
            // staging buffers are assumed deep enough). Without it, each
            // layer's DMA waits for its own dispatch.
            let dma_from = if self.cfg.weight_prefetch { start } else { t };
            let timing = self.run_layer(layer, t, dma_from);
            t = timing.end;
            layers.push(timing);
        }
        let (sh1, cm1, dd1, si1) = self.busy_totals();
        self.now = t;
        let activity = ActivitySummary {
            shave_busy: sh1 - sh0,
            cmx_busy: cm1 - cm0,
            ddr_busy: dd1 - dd0,
            sipp_busy: si1 - si0,
            span: t - start,
        };
        let energy_j = self.power.energy(&activity);
        self.trace.push(&self.lane, "exec", start, t);
        NetworkRun { network: cost.network.clone(), start, end: t, layers, activity, energy_j }
    }

    /// Run a batch of hand-written kernels back-to-back (the MDK
    /// general-purpose path). Returns the same record as a network run.
    pub fn run_kernels(&mut self, works: &[KernelWork], ready: SimTime) -> NetworkRun {
        let start = SimTime::max_of(ready, self.now);
        let (sh0, cm0, dd0, si0) = self.busy_totals();
        let mut t = start;
        let mut layers = Vec::with_capacity(works.len());
        for w in works {
            let mut cfg = self.cfg.clone();
            if let Some(l) = w.vau_lanes {
                cfg.vau_lanes = l;
            }
            if let Some(e) = w.issue_efficiency {
                cfg.issue_efficiency = e;
            }
            let t0 = t + Duration::from_nanos(self.cfg.risc_dispatch_ns);
            let ddr_busy = self.ddr.transfer(t0, w.ddr_bytes);
            self.cmx.reset();
            let cmx_busy = self.cmx.access(t0, 0, w.cmx_bytes.min(self.cmx.capacity()));
            let wc = shave::layer_cycles(&cfg, w.macs, w.aux_ops, w.cmx_bytes);
            let total = Duration::for_cycles(wc.total(), cfg.clock_hz);
            let compute_busy = if total == Duration::ZERO {
                desim::resource::Busy { start: t0, end: t0 }
            } else {
                self.shaves.acquire_parallel(t0, total, cfg.shaves)
            };
            let end = compute_busy.end.max(ddr_busy.end).max(cmx_busy.end);
            layers.push(LayerTiming {
                name: w.name.clone(),
                mnemonic: "kernel".into(),
                start: t,
                end,
                compute: compute_busy.end - compute_busy.start,
                memory: ddr_busy.end - ddr_busy.start,
                on_sipp: false,
            });
            t = end;
        }
        let (sh1, cm1, dd1, si1) = self.busy_totals();
        self.now = t;
        let activity = ActivitySummary {
            shave_busy: sh1 - sh0,
            cmx_busy: cm1 - cm0,
            ddr_busy: dd1 - dd0,
            sipp_busy: si1 - si0,
            span: t - start,
        };
        let energy_j = self.power.energy(&activity);
        self.trace.push(&self.lane, "kernel", start, t);
        NetworkRun { network: "mdk".into(), start, end: t, layers, activity, energy_j }
    }

    /// Simulate one inference *and* execute the real FP16 arithmetic.
    ///
    /// The returned tensor is bit-exact FP16 inference output; the timing
    /// comes from the same cost model as [`Myriad2::run_cost`] so the two
    /// entry points always agree on performance.
    pub fn run_inference(
        &mut self,
        net: &CompiledNetwork<f16>,
        cost: &NetworkCost,
        input: &Tensor<f16>,
        ready: SimTime,
    ) -> (Tensor<f16>, NetworkRun) {
        let output = net.forward(input);
        let run = self.run_cost(cost, ready);
        (output, run)
    }

    fn busy_totals(&self) -> (Duration, Duration, Duration, Duration) {
        (
            self.shaves.busy_total(),
            self.cmx.busy_total(),
            self.ddr.busy_total(),
            self.sipp.busy_total(),
        )
    }

    /// Execute one layer's resource schedule starting no earlier than
    /// `ready` (its DMA may begin at `dma_from <= ready` when weight
    /// prefetching is on); returns its timing record.
    fn run_layer(
        &mut self,
        layer: &vpu_nn::cost::LayerCost,
        ready: SimTime,
        dma_from: SimTime,
    ) -> LayerTiming {
        // Input nodes carry no on-device work (the host link already
        // placed the tensor in DDR); dropout is an inference no-op.
        if layer.mnemonic == "input" || layer.mnemonic == "dropout" {
            return LayerTiming {
                name: layer.name.clone(),
                mnemonic: layer.mnemonic.clone(),
                start: ready,
                end: ready,
                compute: Duration::ZERO,
                memory: Duration::ZERO,
                on_sipp: false,
            };
        }

        // LEON dispatch.
        let t0 = ready + Duration::from_nanos(self.cfg.risc_dispatch_ns);

        // DDR traffic: weights always stream (13 MB of GoogLeNet weights
        // cannot live in the 2 MB CMX); activations spill only when the
        // layer's working set exceeds the scratchpad.
        let working_set = layer.in_bytes + layer.out_bytes;
        let spill = working_set.saturating_sub(self.cmx.capacity());
        let ddr_bytes = layer.weight_bytes + spill;
        // Weight streaming may be issued early (prefetch); activation
        // spill cannot (it depends on this layer's input), so it keeps
        // the dispatch-time lower bound via the FIFO DDR channel.
        let ddr_busy = self.ddr.transfer(dma_from.min(t0), ddr_bytes);

        // CMX crossbar traffic for the activation stream.
        self.cmx.reset();
        let cmx_busy = self.cmx.access(t0, 0, working_set.min(self.cmx.capacity()));

        // Compute: SIPP for window ops when enabled, SHAVEs otherwise.
        let on_sipp = self.sipp.eligible(&layer.mnemonic);
        let compute_busy = if on_sipp {
            let pixels = layer.out_shape.len() as u64;
            self.sipp.run(t0, SippKernel::WindowReduce, pixels)
        } else {
            let w = shave::layer_cycles(&self.cfg, layer.macs, layer.aux_ops, working_set);
            let total = Duration::for_cycles(w.total(), self.cfg.clock_hz);
            if total == Duration::ZERO {
                desim::resource::Busy { start: t0, end: t0 }
            } else {
                self.shaves.acquire_parallel(t0, total, self.cfg.shaves)
            }
        };

        let end = compute_busy.end.max(ddr_busy.end).max(cmx_busy.end);
        LayerTiming {
            name: layer.name.clone(),
            mnemonic: layer.mnemonic.clone(),
            start: ready,
            end,
            compute: compute_busy.end - compute_busy.start,
            memory: ddr_busy.end - ddr_busy.start,
            on_sipp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vpu_nn::googlenet;
    use vpu_nn::init;
    use vpu_tensor::kernels::gemm::AccumMode;
    use vpu_tensor::Shape;

    fn full_cost() -> NetworkCost {
        NetworkCost::of::<f16>(&googlenet::full())
    }

    #[test]
    fn googlenet_latency_near_paper_anchor() {
        // Paper: 100.7 ms per inference on one NCS. The on-chip part here
        // must land close (the NCS crate adds ~2-4 ms of USB/host time).
        let mut vpu = Myriad2::new(Myriad2Config::default());
        let run = vpu.run_cost(&full_cost(), SimTime::ZERO);
        let ms = run.duration().as_millis();
        assert!((85.0..105.0).contains(&ms), "GoogLeNet on-chip latency {ms} ms");
    }

    #[test]
    fn back_to_back_runs_serialize_on_one_chip() {
        let mut vpu = Myriad2::new(Myriad2Config::default());
        let cost = full_cost();
        let a = vpu.run_cost(&cost, SimTime::ZERO);
        let b = vpu.run_cost(&cost, SimTime::ZERO);
        assert!(b.start >= a.end);
        // Identical work takes identical time.
        assert_eq!(a.duration(), b.duration());
    }

    #[test]
    fn fewer_shaves_run_slower() {
        let cost = full_cost();
        let mut v12 = Myriad2::new(Myriad2Config::default());
        let mut v6 = Myriad2::new(Myriad2Config::default().with_shaves(6));
        let mut v1 = Myriad2::new(Myriad2Config::default().with_shaves(1));
        let t12 = v12.run_cost(&cost, SimTime::ZERO).duration();
        let t6 = v6.run_cost(&cost, SimTime::ZERO).duration();
        let t1 = v1.run_cost(&cost, SimTime::ZERO).duration();
        assert!(t6 > t12);
        assert!(t1 > t6);
        // Compute-bound network: halving SHAVEs costs roughly 2x.
        let ratio = t6.nanos() as f64 / t12.nanos() as f64;
        assert!((1.6..2.2).contains(&ratio), "6-vs-12 ratio {ratio}");
    }

    #[test]
    fn energy_well_under_cpu_class() {
        let mut vpu = Myriad2::new(Myriad2Config::default());
        let run = vpu.run_cost(&full_cost(), SimTime::ZERO);
        // Average power bounded by the chip's ~1 W envelope.
        let avg_w = vpu.power_model().avg_power(&run.activity);
        assert!(avg_w < 1.0, "avg power {avg_w} W");
        assert!(avg_w > 0.1, "implausibly low power {avg_w} W");
        assert!(run.energy_j < 0.12, "energy {} J per inference", run.energy_j);
    }

    #[test]
    fn layers_cover_the_whole_run() {
        let mut vpu = Myriad2::new(Myriad2Config::default());
        let run = vpu.run_cost(&full_cost(), SimTime::ZERO);
        assert_eq!(run.layers.len(), full_cost().layers.len());
        assert_eq!(run.layers.first().unwrap().start, run.start);
        assert_eq!(run.layers.last().unwrap().end, run.end);
        // Layers execute in order.
        for w in run.layers.windows(2) {
            assert!(w[1].start >= w[0].start);
        }
    }

    #[test]
    fn sipp_offloads_pool_layers() {
        let mut vpu = Myriad2::new(Myriad2Config::default());
        let run = vpu.run_cost(&full_cost(), SimTime::ZERO);
        let pools: Vec<_> = run.layers.iter().filter(|l| l.mnemonic == "maxpool").collect();
        assert!(!pools.is_empty());
        assert!(pools.iter().all(|l| l.on_sipp));
        let convs: Vec<_> = run.layers.iter().filter(|l| l.mnemonic == "conv").collect();
        assert!(convs.iter().all(|l| !l.on_sipp));
    }

    #[test]
    fn disabling_sipp_shifts_pool_work_to_shaves() {
        let cost = full_cost();
        let mut with = Myriad2::new(Myriad2Config::default());
        let mut without = Myriad2::new(Myriad2Config::default().without_sipp());
        let a = with.run_cost(&cost, SimTime::ZERO);
        let b = without.run_cost(&cost, SimTime::ZERO);
        assert!(b.activity.sipp_busy == Duration::ZERO);
        assert!(a.activity.sipp_busy > Duration::ZERO);
        assert!(b.activity.shave_busy > a.activity.shave_busy);
    }

    #[test]
    fn graph_loading_respects_ddr_capacity() {
        let mut vpu = Myriad2::new(Myriad2Config::default());
        assert!(vpu.load_graph(14 << 20)); // GoogLeNet fp16 graph ~13.4 MB
        assert!(!vpu.load_graph(5 << 30)); // would exceed the 4 GB stack
    }

    #[test]
    fn real_inference_matches_plain_forward() {
        let spec = Arc::new(googlenet::tiny());
        let weights = init::xavier(&spec, 3);
        let net = CompiledNetwork::<f16>::compile(spec.clone(), &weights, AccumMode::Native);
        let cost = NetworkCost::of::<f16>(&spec);
        let input = Tensor::<f32>::full(Shape::chw(3, 32, 32), 0.2).quantize_fp16();
        let mut vpu = Myriad2::new(Myriad2Config::default());
        let (out, run) = vpu.run_inference(&net, &cost, &input, SimTime::ZERO);
        let plain = net.forward(&input);
        assert_eq!(out, plain, "device numerics must equal plain fp16 forward");
        assert!(run.duration() > Duration::ZERO);
    }

    #[test]
    fn trace_records_runs() {
        let mut vpu = Myriad2::with_lane(Myriad2Config::default(), "vpu7");
        vpu.run_cost(&full_cost(), SimTime::ZERO);
        let trace = vpu.trace();
        assert_eq!(trace.lanes(), vec!["vpu7".to_string()]);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn slowest_layer_is_an_expensive_conv() {
        let mut vpu = Myriad2::new(Myriad2Config::default());
        let run = vpu.run_cost(&full_cost(), SimTime::ZERO);
        let slow = run.slowest_layer().unwrap();
        assert_eq!(slow.mnemonic, "conv", "slowest layer {} ({})", slow.name, slow.mnemonic);
    }
}
