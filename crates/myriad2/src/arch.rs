//! Architectural parameters of the Myriad 2 (MA2450 variant, as shipped
//! in the Neural Compute Stick).
//!
//! Sources: the paper's §II, Moloney et al. (Hot Chips 2014) and Barry et
//! al. (IEEE Micro 2015). Where a parameter is not publicly specified the
//! default is chosen so the calibration anchor (100.7 ms per GoogLeNet
//! inference) holds; such values are marked "calibrated".

use serde::{Deserialize, Serialize};

/// Tunable description of one Myriad 2 chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Myriad2Config {
    /// Number of SHAVE vector processors (12 on MA2450).
    pub shaves: usize,
    /// Nominal clock, Hz (600 MHz).
    pub clock_hz: f64,
    /// FP16 lanes per VAU issue (128-bit VAU = 8 × binary16).
    pub vau_lanes: usize,
    /// Fraction of peak VAU issue slots a compiled conv kernel sustains.
    /// **Calibrated** so full-GoogLeNet inference ≈ 100.7 ms on the NCS.
    pub issue_efficiency: f64,
    /// Scalar ops retired per cycle per SHAVE for non-MAC work
    /// (SAU + IAU + CMU working together on pooling/activation code).
    pub scalar_ops_per_cycle: f64,
    /// CMX scratchpad: number of independently arbitrated banks (16).
    pub cmx_banks: usize,
    /// Bytes per CMX bank (128 KB; 16 × 128 KB = 2 MB total).
    pub cmx_bank_bytes: u64,
    /// CMX port width in bytes per cycle per bank (64-bit words).
    pub cmx_bytes_per_cycle: u64,
    /// LPDDR3 effective bandwidth, bytes/s. **Calibrated** from the
    /// 4 GB LPDDR3-933 x32 stack at ~60 % efficiency.
    pub ddr_bandwidth: f64,
    /// First-access DDR latency, ns.
    pub ddr_latency_ns: u64,
    /// LPDDR3 capacity in bytes (4 GB on the NCS variant).
    pub ddr_capacity: u64,
    /// Per-layer dispatch overhead on the LEON RISC runtime scheduler, ns.
    pub risc_dispatch_ns: u64,
    /// SIPP filter pipeline: pixels retired per cycle when a layer is
    /// eligible for hardware filtering.
    pub sipp_pixels_per_cycle: f64,
    /// Whether pooling/LRN layers may use the SIPP pipeline.
    pub sipp_enabled: bool,
    /// Pipelined weight DMA: issue every layer's weight stream ahead in
    /// layer order, bounded only by the DDR channel (idealized deep CMX
    /// staging). Off by default — NCSDK v1.12 streamed weights at layer
    /// dispatch, and the calibration anchors assume that. Ablation-only.
    pub weight_prefetch: bool,
}

impl Myriad2Config {
    /// A config whose every timing source runs `f`× as long (`0.5` = a
    /// chip twice as fast): rate-shaped fields divided by `f`, fixed
    /// latencies multiplied. Used by the causal profiler's what-if exec
    /// scaling; every internal unit clock (SHAVE, CMX, DDR, SIPP, LEON
    /// dispatch) stays mutually consistent because they all derive from
    /// these four fields. `1.0` returns the config unchanged,
    /// byte-identically.
    pub fn time_scaled(&self, f: f64) -> Myriad2Config {
        assert!(f > 0.0, "time scale must be positive");
        if f == 1.0 {
            return self.clone();
        }
        Myriad2Config {
            clock_hz: self.clock_hz / f,
            ddr_bandwidth: self.ddr_bandwidth / f,
            ddr_latency_ns: (self.ddr_latency_ns as f64 * f).round() as u64,
            risc_dispatch_ns: (self.risc_dispatch_ns as f64 * f).round() as u64,
            ..self.clone()
        }
    }
}

impl Default for Myriad2Config {
    fn default() -> Self {
        Myriad2Config {
            shaves: 12,
            clock_hz: 600e6,
            vau_lanes: 8,
            issue_efficiency: 0.2955,
            scalar_ops_per_cycle: 4.0,
            cmx_banks: 16,
            cmx_bank_bytes: 128 * 1024,
            cmx_bytes_per_cycle: 8,
            ddr_bandwidth: 4.0e9,
            ddr_latency_ns: 120,
            ddr_capacity: 4 << 30,
            risc_dispatch_ns: 25_000,
            sipp_pixels_per_cycle: 1.0,
            sipp_enabled: true,
            weight_prefetch: false,
        }
    }
}

impl Myriad2Config {
    /// Peak FP16 multiply-accumulate rate, MACs/s, across all SHAVEs.
    pub fn peak_macs_per_sec(&self) -> f64 {
        self.shaves as f64 * self.vau_lanes as f64 * self.clock_hz
    }

    /// Peak FP16 FLOP/s (2 flops per MAC). The headline marketing number
    /// for the chip counts further datapaths and reaches 1 TFLOPS; the
    /// VAU-only figure here is ~115 GFLOPS.
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.peak_macs_per_sec()
    }

    /// Total CMX capacity in bytes (2 MB).
    pub fn cmx_bytes(&self) -> u64 {
        self.cmx_banks as u64 * self.cmx_bank_bytes
    }

    /// A config with a different SHAVE count (ablation A3).
    pub fn with_shaves(mut self, shaves: usize) -> Self {
        assert!((1..=12).contains(&shaves), "MA2450 has 1..=12 SHAVEs");
        self.shaves = shaves;
        self
    }

    /// A config with the SIPP pipeline disabled (ablation).
    pub fn without_sipp(mut self) -> Self {
        self.sipp_enabled = false;
        self
    }

    /// A config with double-buffered weight DMA enabled (ablation).
    pub fn with_prefetch(mut self) -> Self {
        self.weight_prefetch = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_architecture() {
        let c = Myriad2Config::default();
        assert_eq!(c.shaves, 12);
        assert_eq!(c.clock_hz, 600e6);
        assert_eq!(c.cmx_banks, 16);
        assert_eq!(c.cmx_bytes(), 2 * 1024 * 1024);
        assert_eq!(c.ddr_capacity, 4 << 30);
        assert_eq!(c.vau_lanes, 8);
    }

    #[test]
    fn peak_rates() {
        let c = Myriad2Config::default();
        // 12 SHAVEs * 8 lanes * 600 MHz = 57.6 GMAC/s = 115.2 GFLOP/s.
        assert!((c.peak_macs_per_sec() - 57.6e9).abs() < 1e6);
        assert!((c.peak_flops() - 115.2e9).abs() < 1e6);
    }

    #[test]
    fn shave_ablation_bounds() {
        let c = Myriad2Config::default().with_shaves(4);
        assert_eq!(c.shaves, 4);
    }

    #[test]
    #[should_panic(expected = "1..=12")]
    fn rejects_excess_shaves() {
        Myriad2Config::default().with_shaves(13);
    }

    #[test]
    fn sipp_toggle() {
        assert!(Myriad2Config::default().sipp_enabled);
        assert!(!Myriad2Config::default().without_sipp().sipp_enabled);
    }
}
