//! VLIW software-pipelining micro-model.
//!
//! The chip-level cost model uses two sustained-efficiency constants —
//! ~0.30 of VAU peak for NCSDK convolution kernels and ~0.55 for the
//! hand-tuned MDK GEMM. This module derives those numbers from the
//! machine itself instead of leaving them as magic: a SHAVE issues one
//! Variable-Length Long Instruction Word per cycle, steering at most one
//! operation to each functional unit (VAU, SAU, IAU, CMU, two LSUs, PEU,
//! BRU — paper Fig. 1). For a software-pipelined inner loop the steady
//! state initiation interval (II) is bounded by
//!
//! * **resources** — the busiest unit's operations per iteration, and
//! * **recurrences** — cyclic dependency latency / distance,
//!
//! and the sustained VAU efficiency of a whole kernel is the VAU's
//! occupancy within the II, discounted by the prologue/epilogue cycles
//! that bracket every (finite) loop.

use serde::{Deserialize, Serialize};

/// SHAVE functional units that can each accept one op per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    Vau,
    Sau,
    Iau,
    Cmu,
    Lsu0,
    Lsu1,
    Peu,
    Bru,
}

pub const ALL_UNITS: [Unit; 8] =
    [Unit::Vau, Unit::Sau, Unit::Iau, Unit::Cmu, Unit::Lsu0, Unit::Lsu1, Unit::Peu, Unit::Bru];

/// One operation of a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Op {
    pub unit: Unit,
    /// Result latency in cycles (pipelined: the unit is busy one cycle).
    pub latency: u32,
}

/// A software-pipelined inner loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopBody {
    pub ops: Vec<Op>,
    /// Loop-carried dependency: (latency around the cycle, iteration
    /// distance). `None` if fully parallel across iterations.
    pub recurrence: Option<(u32, u32)>,
    /// Average memory stall cycles per iteration (CMX bank conflicts,
    /// DMA synchronization) — the part static scheduling cannot hide.
    pub stall: u32,
}

impl LoopBody {
    /// Ops steered at each unit per iteration.
    pub fn unit_load(&self, unit: Unit) -> u32 {
        self.ops.iter().filter(|o| o.unit == unit).count() as u32
    }

    /// Resource-constrained initiation interval.
    pub fn resource_ii(&self) -> u32 {
        ALL_UNITS.iter().map(|&u| self.unit_load(u)).max().unwrap_or(0).max(1)
    }

    /// Recurrence-constrained initiation interval.
    pub fn recurrence_ii(&self) -> u32 {
        match self.recurrence {
            Some((lat, dist)) => lat.div_ceil(dist.max(1)),
            None => 1,
        }
    }

    /// Steady-state initiation interval, including unhidden stalls.
    pub fn ii(&self) -> u32 {
        self.resource_ii().max(self.recurrence_ii()) + self.stall
    }

    /// VAU slot occupancy in steady state (1.0 = a MAC every cycle).
    pub fn vau_utilization(&self) -> f64 {
        self.unit_load(Unit::Vau) as f64 / self.ii() as f64
    }

    /// Pipeline fill depth: the longest op latency (cycles before the
    /// first iteration's results retire).
    pub fn depth(&self) -> u32 {
        self.ops.iter().map(|o| o.latency).max().unwrap_or(1)
    }
}

/// A whole kernel: a pipelined inner loop plus the setup work around it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelModel {
    pub body: LoopBody,
    /// Cycles before the loop (address setup, coefficient preload) plus
    /// pipeline fill.
    pub prologue: u32,
    /// Cycles after the loop (writeback, drain).
    pub epilogue: u32,
}

impl KernelModel {
    /// Total cycles for `trips` iterations of the inner loop, run
    /// `invocations` times (e.g. once per output row).
    pub fn cycles(&self, trips: u64, invocations: u64) -> u64 {
        let per = self.prologue as u64
            + self.body.depth() as u64
            + trips * self.body.ii() as u64
            + self.epilogue as u64;
        per * invocations
    }

    /// Sustained VAU efficiency over the whole kernel: useful VAU ops
    /// issued per cycle, relative to one per cycle.
    pub fn effective_vau_efficiency(&self, trips: u64, invocations: u64) -> f64 {
        let vau_ops = self.body.unit_load(Unit::Vau) as u64 * trips * invocations;
        vau_ops as f64 / self.cycles(trips, invocations) as f64
    }
}

/// The NCSDK convolution inner loop, reconstructed from the kernel shape
/// the SDK documents: per 2 VAU MACs it issues 6 operand/patch loads
/// (three per LSU — the im2col repack rides in the loop), 4
/// address/index updates (IAU), 2 predicate compares (CMU) and a scalar
/// fix-up (SAU); row-crossing bookkeeping forms an 8-cycle recurrence
/// every 2 iterations, and about one stall cycle per iteration survives
/// scheduling (CMX bank conflicts on the patch buffer).
pub fn ncsdk_conv_kernel() -> KernelModel {
    KernelModel {
        body: LoopBody {
            ops: vec![
                Op { unit: Unit::Vau, latency: 4 },
                Op { unit: Unit::Vau, latency: 4 },
                Op { unit: Unit::Lsu0, latency: 3 },
                Op { unit: Unit::Lsu0, latency: 3 },
                Op { unit: Unit::Lsu0, latency: 3 },
                Op { unit: Unit::Lsu1, latency: 3 },
                Op { unit: Unit::Lsu1, latency: 3 },
                Op { unit: Unit::Lsu1, latency: 3 },
                Op { unit: Unit::Iau, latency: 1 },
                Op { unit: Unit::Iau, latency: 1 },
                Op { unit: Unit::Iau, latency: 1 },
                Op { unit: Unit::Iau, latency: 1 },
                Op { unit: Unit::Cmu, latency: 1 },
                Op { unit: Unit::Cmu, latency: 1 },
                Op { unit: Unit::Sau, latency: 2 },
                Op { unit: Unit::Bru, latency: 1 },
            ],
            recurrence: Some((8, 2)),
            stall: 1,
        },
        // im2col patch staging + coefficient preload per output row.
        prologue: 34,
        epilogue: 12,
    }
}

/// The hand-scheduled MDK GEMM inner loop: 4 VAU MACs per iteration fed
/// by 8 vector loads (four per LSU — A broadcast + B panel), pointer
/// bumps on the IAU, accumulator chains broken by register rotation
/// (recurrence 4 cycles / 4 iterations), and ~2 unhidden stall cycles
/// from CMX bank conflicts between the two LSU streams.
pub fn mdk_gemm_kernel() -> KernelModel {
    KernelModel {
        body: LoopBody {
            ops: vec![
                Op { unit: Unit::Vau, latency: 4 },
                Op { unit: Unit::Vau, latency: 4 },
                Op { unit: Unit::Vau, latency: 4 },
                Op { unit: Unit::Vau, latency: 4 },
                Op { unit: Unit::Lsu0, latency: 3 },
                Op { unit: Unit::Lsu0, latency: 3 },
                Op { unit: Unit::Lsu0, latency: 3 },
                Op { unit: Unit::Lsu0, latency: 3 },
                Op { unit: Unit::Lsu1, latency: 3 },
                Op { unit: Unit::Lsu1, latency: 3 },
                Op { unit: Unit::Lsu1, latency: 3 },
                Op { unit: Unit::Lsu1, latency: 3 },
                Op { unit: Unit::Iau, latency: 1 },
                Op { unit: Unit::Iau, latency: 1 },
                Op { unit: Unit::Bru, latency: 1 },
            ],
            recurrence: Some((4, 4)),
            stall: 2,
        },
        prologue: 24,
        epilogue: 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ii_is_bounded_by_busiest_unit() {
        let body = LoopBody {
            ops: vec![
                Op { unit: Unit::Vau, latency: 4 },
                Op { unit: Unit::Iau, latency: 1 },
                Op { unit: Unit::Iau, latency: 1 },
                Op { unit: Unit::Iau, latency: 1 },
            ],
            recurrence: None,
            stall: 0,
        };
        assert_eq!(body.resource_ii(), 3);
        assert_eq!(body.ii(), 3);
        assert!((body.vau_utilization() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recurrence_can_dominate() {
        let body = LoopBody {
            ops: vec![Op { unit: Unit::Vau, latency: 4 }],
            recurrence: Some((8, 1)),
            stall: 0,
        };
        assert_eq!(body.resource_ii(), 1);
        assert_eq!(body.recurrence_ii(), 8);
        assert_eq!(body.ii(), 8);
    }

    #[test]
    fn empty_body_is_sane() {
        let body = LoopBody { ops: vec![], recurrence: None, stall: 0 };
        assert_eq!(body.ii(), 1);
        assert_eq!(body.vau_utilization(), 0.0);
    }

    #[test]
    fn conv_kernel_derives_the_calibrated_efficiency() {
        // GoogLeNet-like trip counts: ~28 output pixels per row chunk,
        // one invocation per (output row × channel block) — the exact
        // counts matter little once prologue amortization is modelled.
        let k = ncsdk_conv_kernel();
        let eff = k.effective_vau_efficiency(28, 1000);
        assert!(
            (0.25..0.36).contains(&eff),
            "conv VLIW model gives {eff}, calibrated constant is 0.2955"
        );
    }

    #[test]
    fn gemm_kernel_derives_the_mdk_efficiency() {
        // Long K strips (tile_k = 64) amortize the prologue.
        let k = mdk_gemm_kernel();
        let eff = k.effective_vau_efficiency(64, 1000);
        assert!((0.48..0.65).contains(&eff), "GEMM VLIW model gives {eff}, MDK constant is 0.55");
    }

    #[test]
    fn gemm_beats_conv_because_of_leaner_bookkeeping() {
        let conv = ncsdk_conv_kernel().effective_vau_efficiency(28, 100);
        let gemm = mdk_gemm_kernel().effective_vau_efficiency(64, 100);
        assert!(gemm > conv * 1.5, "gemm {gemm} vs conv {conv}");
    }

    #[test]
    fn short_loops_pay_for_their_prologue() {
        let k = ncsdk_conv_kernel();
        let short = k.effective_vau_efficiency(4, 100);
        let long = k.effective_vau_efficiency(112, 100);
        assert!(short < long * 0.6, "short {short} vs long {long}");
    }

    #[test]
    fn cycles_scale_linearly_in_invocations() {
        let k = mdk_gemm_kernel();
        assert_eq!(k.cycles(64, 10) * 10, k.cycles(64, 100));
    }
}
