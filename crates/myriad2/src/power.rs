//! Power-island model of the Myriad 2 SoC.
//!
//! The NCS implementation uses 20 power islands, one per SHAVE plus
//! islands for the RISC processors, CMX, DDR interface and peripherals
//! (paper §II-B). Idle islands are gated to near zero; the model
//! integrates active power over the busy spans the simulator produces,
//! yielding per-inference energy alongside the paper's TDP-based
//! throughput/W metric.

use desim::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Static power parameters (Watts). Defaults decompose the chip's 0.9 W
/// TDP across islands in proportion to published die-area estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Active power of one SHAVE island.
    pub shave_active_w: f64,
    /// Gated (idle) power of one SHAVE island.
    pub shave_idle_w: f64,
    /// CMX + crossbar active power.
    pub cmx_active_w: f64,
    /// DDR interface active power.
    pub ddr_active_w: f64,
    /// SIPP pipeline active power.
    pub sipp_active_w: f64,
    /// Always-on islands: 2× LEON RISC, clocks, peripherals.
    pub base_w: f64,
    /// Number of SHAVE islands.
    pub shave_islands: usize,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            shave_active_w: 0.045,
            shave_idle_w: 0.001,
            cmx_active_w: 0.08,
            ddr_active_w: 0.12,
            sipp_active_w: 0.05,
            base_w: 0.16,
            shave_islands: 12,
        }
    }
}

/// Busy-time summary of one simulated interval, produced by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ActivitySummary {
    /// Sum of per-SHAVE busy time (12 SHAVEs fully busy for 1 ms = 12 ms).
    pub shave_busy: Duration,
    pub cmx_busy: Duration,
    pub ddr_busy: Duration,
    pub sipp_busy: Duration,
    /// Wall-clock (virtual) span of the interval.
    pub span: Duration,
}

impl PowerModel {
    /// Worst-case chip power with everything switching: the TDP the
    /// paper quotes as 0.9 W.
    pub fn tdp(&self) -> f64 {
        self.base_w
            + self.shave_islands as f64 * self.shave_active_w
            + self.cmx_active_w
            + self.ddr_active_w
            + self.sipp_active_w
    }

    /// Energy in Joules consumed over one activity summary.
    pub fn energy(&self, a: &ActivitySummary) -> f64 {
        let span_s = a.span.as_secs();
        let shave_busy_s = a.shave_busy.as_secs();
        let shave_idle_s = (span_s * self.shave_islands as f64 - shave_busy_s).max(0.0);
        self.base_w * span_s
            + self.shave_active_w * shave_busy_s
            + self.shave_idle_w * shave_idle_s
            + self.cmx_active_w * a.cmx_busy.as_secs()
            + self.ddr_active_w * a.ddr_busy.as_secs()
            + self.sipp_active_w * a.sipp_busy.as_secs()
    }

    /// Average power over the summary's span (Watts).
    pub fn avg_power(&self, a: &ActivitySummary) -> f64 {
        let span = a.span.as_secs();
        if span == 0.0 {
            0.0
        } else {
            self.energy(a) / span
        }
    }

    /// Power with `active` of the SHAVE islands unga­ted and the rest
    /// gated — the steady-state draw of a partially occupied chip.
    pub fn steady_power(&self, active_shaves: usize) -> f64 {
        assert!(active_shaves <= self.shave_islands);
        self.base_w
            + active_shaves as f64 * self.shave_active_w
            + (self.shave_islands - active_shaves) as f64 * self.shave_idle_w
            + self.cmx_active_w
            + self.ddr_active_w
    }

    /// Chip draw while an inference batch occupies it, in integer
    /// milliwatts: all SHAVE islands plus CMX and DDR active (the SIPP
    /// imaging pipeline stays gated on the inference path). Integer
    /// because the online energy meter needs `pJ = mW × ns` to hold
    /// exactly; 900 mW with the default decomposition.
    pub fn busy_mw(&self) -> u64 {
        (self.steady_power(self.shave_islands) * 1e3).round() as u64
    }

    /// Gated draw between batches, in integer milliwatts: always-on
    /// islands plus every SHAVE island power-gated (172 mW default).
    pub fn gated_mw(&self) -> u64 {
        ((self.base_w + self.shave_islands as f64 * self.shave_idle_w) * 1e3).round() as u64
    }
}

/// Convenience: build an [`ActivitySummary`] from raw busy totals and a
/// start/end pair.
pub fn summary(
    shave_busy: Duration,
    cmx_busy: Duration,
    ddr_busy: Duration,
    sipp_busy: Duration,
    start: SimTime,
    end: SimTime,
) -> ActivitySummary {
    ActivitySummary { shave_busy, cmx_busy, ddr_busy, sipp_busy, span: end - start }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdp_close_to_published() {
        let p = PowerModel::default();
        // Paper: 0.9 W TDP for the Myriad 2.
        assert!((p.tdp() - 0.95).abs() < 0.1, "TDP {} too far from 0.9W", p.tdp());
    }

    #[test]
    fn idle_chip_draws_base_power() {
        let p = PowerModel::default();
        let a = ActivitySummary { span: Duration::from_secs(1.0), ..Default::default() };
        let e = p.energy(&a);
        // Base + 12 gated SHAVEs.
        let expect = p.base_w + 12.0 * p.shave_idle_w;
        assert!((e - expect).abs() < 1e-9, "{e} vs {expect}");
    }

    #[test]
    fn busy_chip_draws_near_tdp() {
        let p = PowerModel::default();
        let s = Duration::from_secs(1.0);
        let a = ActivitySummary {
            shave_busy: Duration::from_secs(12.0),
            cmx_busy: s,
            ddr_busy: s,
            sipp_busy: s,
            span: s,
        };
        let e = p.energy(&a);
        assert!((e - p.tdp()).abs() < 1e-9);
        assert!((p.avg_power(&a) - p.tdp()).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_activity() {
        let p = PowerModel::default();
        let half = ActivitySummary {
            shave_busy: Duration::from_secs(6.0),
            span: Duration::from_secs(1.0),
            ..Default::default()
        };
        let full = ActivitySummary {
            shave_busy: Duration::from_secs(12.0),
            span: Duration::from_secs(1.0),
            ..Default::default()
        };
        assert!(p.energy(&half) < p.energy(&full));
    }

    #[test]
    fn steady_power_monotone_in_shaves() {
        let p = PowerModel::default();
        let mut last = 0.0;
        for k in 0..=12 {
            let w = p.steady_power(k);
            assert!(w > last);
            last = w;
        }
        assert!(p.steady_power(12) < 1.0, "full chip under 1 W");
    }

    #[test]
    fn milliwatt_rates_match_the_island_decomposition() {
        let p = PowerModel::default();
        // 160 + 12×45 + 80 + 120 = 900 mW busy; 160 + 12×1 = 172 gated.
        assert_eq!(p.busy_mw(), 900);
        assert_eq!(p.gated_mw(), 172);
        // The integer rates reproduce `energy` on a batch-shaped
        // summary: all SHAVEs + CMX + DDR busy for B inside span H.
        let (b, h) = (Duration(3_000_000), Duration(10_000_000));
        let a = ActivitySummary {
            shave_busy: Duration(12 * b.nanos()),
            cmx_busy: b,
            ddr_busy: b,
            sipp_busy: Duration::ZERO,
            span: h,
        };
        let meter_j =
            (p.busy_mw() * b.nanos() + p.gated_mw() * (h.nanos() - b.nanos())) as f64 / 1e12;
        assert!(
            (meter_j - p.energy(&a)).abs() < 1e-9 * p.energy(&a),
            "{meter_j} vs {}",
            p.energy(&a)
        );
    }

    #[test]
    fn zero_span_power_is_zero() {
        let p = PowerModel::default();
        assert_eq!(p.avg_power(&ActivitySummary::default()), 0.0);
    }

    #[test]
    fn summary_builder() {
        let a = summary(
            Duration(10),
            Duration(20),
            Duration(30),
            Duration(40),
            SimTime(100),
            SimTime(200),
        );
        assert_eq!(a.span, Duration(100));
        assert_eq!(a.ddr_busy, Duration(30));
    }
}
