//! LPDDR3 stacked-memory channel model.
//!
//! The MA2450 stacks 4 GB of LPDDR3 on package, reached through the
//! 128-bit AXI fabric (paper Fig. 1). The channel is modelled as a serial
//! FIFO resource with a fixed first-word latency plus bandwidth-limited
//! streaming — adequate for layer-granularity simulation where transfers
//! are hundreds of kilobytes.

use crate::arch::Myriad2Config;
use desim::resource::Busy;
use desim::{Duration, FifoResource, SimTime};

/// The DDR channel plus a simple footprint accountant.
#[derive(Debug, Clone)]
pub struct DdrChannel {
    chan: FifoResource,
    bandwidth: f64,
    latency: Duration,
    capacity: u64,
    allocated: u64,
}

impl DdrChannel {
    pub fn new(cfg: &Myriad2Config) -> Self {
        DdrChannel {
            chan: FifoResource::new("lpddr3"),
            bandwidth: cfg.ddr_bandwidth,
            latency: Duration::from_nanos(cfg.ddr_latency_ns),
            capacity: cfg.ddr_capacity,
            allocated: 0,
        }
    }

    /// Transfer `bytes` through the channel starting no earlier than
    /// `ready`; returns the busy interval.
    pub fn transfer(&mut self, ready: SimTime, bytes: u64) -> Busy {
        if bytes == 0 {
            return Busy { start: ready, end: ready };
        }
        let service = self.latency + Duration::for_bytes(bytes, self.bandwidth);
        self.chan.acquire(ready, service)
    }

    /// Record a resident allocation (graph file, activation arenas).
    /// Returns false if the 4 GB stack would overflow.
    pub fn reserve(&mut self, bytes: u64) -> bool {
        if self.allocated + bytes > self.capacity {
            return false;
        }
        self.allocated += bytes;
        true
    }

    pub fn release(&mut self, bytes: u64) {
        self.allocated = self.allocated.saturating_sub(bytes);
    }

    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn busy_total(&self) -> Duration {
        self.chan.busy_total()
    }

    pub fn available_at(&self) -> SimTime {
        self.chan.available_at()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ddr() -> DdrChannel {
        DdrChannel::new(&Myriad2Config::default())
    }

    #[test]
    fn transfer_time_is_latency_plus_streaming() {
        let mut d = ddr();
        // 4 MB at 4 GB/s = 1 ms, plus 120 ns latency.
        let b = d.transfer(SimTime(0), 4_000_000);
        let expect = Duration::from_nanos(120) + Duration::for_bytes(4_000_000, 4.0e9);
        assert_eq!(b.end - b.start, expect);
    }

    #[test]
    fn transfers_serialize() {
        let mut d = ddr();
        let a = d.transfer(SimTime(0), 1_000_000);
        let b = d.transfer(SimTime(0), 1_000_000);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn zero_bytes_instant() {
        let mut d = ddr();
        let b = d.transfer(SimTime(9), 0);
        assert_eq!(b.start, b.end);
    }

    #[test]
    fn capacity_accounting() {
        let mut d = ddr();
        assert!(d.reserve(1 << 30));
        assert!(d.reserve(2 << 30));
        assert_eq!(d.allocated(), 3 << 30);
        // Fourth gigabyte fits exactly; a fifth does not.
        assert!(d.reserve(1 << 30));
        assert!(!d.reserve(1));
        d.release(1 << 30);
        assert!(d.reserve(512 << 20));
    }

    #[test]
    fn busy_accumulates() {
        let mut d = ddr();
        d.transfer(SimTime(0), 4_000_000);
        d.transfer(SimTime(0), 4_000_000);
        assert!(d.busy_total() >= Duration::from_millis(2.0));
    }
}
