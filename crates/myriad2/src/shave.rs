//! SHAVE VLIW vector processor issue model.
//!
//! Each SHAVE issues Variable-Length Long Instruction Word packets that
//! can drive its functional units in parallel (paper Fig. 1): the 128-bit
//! VAU performs 8 FP16 MACs per cycle, while the SAU/IAU/CMU handle
//! scalar, integer and compare/move work, and the two 64-bit LSUs feed
//! data from CMX. The issue model converts a layer's operation counts
//! into SHAVE cycles.

use crate::arch::Myriad2Config;
use serde::{Deserialize, Serialize};

/// Functional units of one SHAVE (used for profiling attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionalUnit {
    /// 128-bit Vector Arithmetic Unit.
    Vau,
    /// 32-bit Scalar Arithmetic Unit.
    Sau,
    /// 32-bit Integer Arithmetic Unit.
    Iau,
    /// 128-bit Compare-and-Move Unit.
    Cmu,
    /// Load-Store Units (2 × 64-bit).
    Lsu,
    /// Predicate/branch units.
    Bru,
}

/// Cycle estimate for a block of work on the SHAVE cluster, before
/// splitting across processors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkCycles {
    /// Cycles spent on VAU MAC issue.
    pub vau: u64,
    /// Cycles spent on scalar/compare work (pool, ReLU, LRN).
    pub scalar: u64,
    /// Cycles the LSUs need to stream operands from CMX.
    pub lsu: u64,
}

impl WorkCycles {
    /// Total cycles assuming VLIW overlap: the VAU stream dominates when
    /// compute-bound, the LSU stream when load-bound; scalar work rides
    /// in otherwise-empty slots up to half its volume.
    pub fn total(&self) -> u64 {
        let dominant = self.vau.max(self.lsu);
        dominant.max(self.scalar) + self.scalar.min(dominant) / 2
    }
}

/// Convert a MAC count into cluster-wide VAU cycles.
///
/// `macs / lanes` is the ideal issue count; dividing by the calibrated
/// issue efficiency accounts for software pipelining gaps, edge handling
/// and im2col address arithmetic that real NCSDK kernels exhibit.
pub fn mac_cycles(cfg: &Myriad2Config, macs: u64) -> u64 {
    if macs == 0 {
        return 0;
    }
    let ideal = macs as f64 / cfg.vau_lanes as f64;
    (ideal / cfg.issue_efficiency).ceil() as u64
}

/// Convert scalar op counts (pooling windows, ReLU clamps, LRN taps)
/// into cycles.
pub fn scalar_cycles(cfg: &Myriad2Config, ops: u64) -> u64 {
    if ops == 0 {
        return 0;
    }
    (ops as f64 / cfg.scalar_ops_per_cycle).ceil() as u64
}

/// LSU cycles to stream `bytes` through the two 64-bit load/store ports
/// (16 bytes per cycle total).
pub fn lsu_cycles(bytes: u64) -> u64 {
    bytes.div_ceil(16)
}

/// Estimate the cycles one layer occupies on the SHAVE cluster (not yet
/// divided by the number of processors).
pub fn layer_cycles(cfg: &Myriad2Config, macs: u64, aux_ops: u64, stream_bytes: u64) -> WorkCycles {
    WorkCycles {
        vau: mac_cycles(cfg, macs),
        scalar: scalar_cycles(cfg, aux_ops),
        lsu: lsu_cycles(stream_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Myriad2Config {
        Myriad2Config::default()
    }

    #[test]
    fn mac_cycles_scale_with_efficiency() {
        let c = cfg();
        let ideal = mac_cycles(&Myriad2Config { issue_efficiency: 1.0, ..c.clone() }, 8_000);
        assert_eq!(ideal, 1_000);
        let real = mac_cycles(&c, 8_000);
        assert!(real > ideal);
        assert_eq!(real, (1000.0 / c.issue_efficiency).ceil() as u64);
    }

    #[test]
    fn zero_work_is_free() {
        let c = cfg();
        assert_eq!(mac_cycles(&c, 0), 0);
        assert_eq!(scalar_cycles(&c, 0), 0);
        assert_eq!(lsu_cycles(0), 0);
        assert_eq!(layer_cycles(&c, 0, 0, 0).total(), 0);
    }

    #[test]
    fn scalar_cycles_respect_throughput() {
        let c = cfg();
        assert_eq!(scalar_cycles(&c, 400), 100);
        assert_eq!(scalar_cycles(&c, 401), 101);
    }

    #[test]
    fn lsu_streaming() {
        assert_eq!(lsu_cycles(16), 1);
        assert_eq!(lsu_cycles(17), 2);
        assert_eq!(lsu_cycles(1600), 100);
    }

    #[test]
    fn vliw_overlap_hides_scalar_work() {
        // Compute-dominated: scalar ops partially hide under VAU slots.
        let w = WorkCycles { vau: 1000, scalar: 100, lsu: 50 };
        assert_eq!(w.total(), 1000 + 50);
        // Scalar-only layer pays full freight.
        let s = WorkCycles { vau: 0, scalar: 500, lsu: 10 };
        assert_eq!(s.total(), 500 + 5);
        // Load-bound layer.
        let l = WorkCycles { vau: 100, scalar: 0, lsu: 900 };
        assert_eq!(l.total(), 900);
    }

    #[test]
    fn conv_layer_is_compute_bound() {
        // GoogLeNet conv2/3x3: 864 MMACs-ish region; check VAU dominates.
        let c = cfg();
        let w = layer_cycles(&c, 100_000_000, 1_000_000, 2_000_000);
        assert!(w.vau > w.lsu);
        assert!(w.vau > w.scalar);
    }
}
