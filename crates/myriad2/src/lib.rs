//! Architectural simulator for the Movidius Myriad 2 VPU (MA2450).
//!
//! Models the chip the paper describes in §II: twelve SHAVE VLIW vector
//! processors ([`shave`]), the 2 MB banked CMX scratchpad ([`cmx`]), the
//! LPDDR3 stacked memory channel ([`ddr`]), the SIPP hardware filter
//! pipeline ([`sipp`]), and the twenty power islands ([`power`]).
//!
//! The [`exec`] module maps network layers onto these resources and is the
//! heart of the timing model: per-layer compute time comes from a VLIW
//! issue model over the layer's multiply-accumulate count, memory time
//! from the DDR/CMX traffic, and the layer takes the maximum of the two
//! (the memory fabric is designed to overlap, §II-A). Numerics are
//! optionally executed for real in binary16 via `vpu-nn`.
//!
//! Calibration: a single free parameter (the VLIW issue efficiency,
//! [`arch::Myriad2Config::issue_efficiency`]) is set so that one full
//! GoogLeNet inference lands at the paper's measured ~100.7 ms (including
//! the NCS platform overheads added by the `ncs-platform` crate). Every
//! other number — batch scaling, multi-VPU scaling, crossovers — emerges
//! from the simulation.

pub mod arch;
pub mod cmx;
pub mod ddr;
pub mod exec;
pub mod power;
pub mod roofline;
pub mod shave;
pub mod sipp;
pub mod thermal;
pub mod vliw;

pub use arch::Myriad2Config;
pub use exec::{LayerTiming, Myriad2, NetworkRun};
