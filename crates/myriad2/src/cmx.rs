//! Connection Matrix (CMX) scratchpad model.
//!
//! 2 MB of multi-ported SRAM in 16 independently arbitrated banks of
//! 128 KB (each four 32 KB RAM instances of 4096 × 64-bit words). SHAVEs
//! and SIPP filters reach the banks through a crossbar; requests to
//! *different* banks proceed in parallel, requests to the *same* bank
//! serialize — which is exactly what the bank-conflict model below
//! charges. The software-controlled allocator mirrors the MDK convention
//! of giving each SHAVE a 128 KB slice.

use crate::arch::Myriad2Config;
use desim::{Duration, FifoResource, SimTime};
use serde::{Deserialize, Serialize};

/// A CMX allocation (software-managed; no hardware protection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CmxSlice {
    pub offset: u64,
    pub len: u64,
}

/// Allocation failure: the working set exceeds the 2 MB scratchpad and
/// the layer must stream through DDR instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmxFull {
    pub requested: u64,
    pub free: u64,
}

/// The banked scratchpad: bump allocator + per-bank timing.
#[derive(Debug, Clone)]
pub struct Cmx {
    bank_bytes: u64,
    banks: Vec<FifoResource>,
    bytes_per_cycle: u64,
    clock_hz: f64,
    next_free: u64,
}

impl Cmx {
    pub fn new(cfg: &Myriad2Config) -> Self {
        Cmx {
            bank_bytes: cfg.cmx_bank_bytes,
            banks: (0..cfg.cmx_banks).map(|i| FifoResource::new(format!("cmx{i}"))).collect(),
            bytes_per_cycle: cfg.cmx_bytes_per_cycle,
            clock_hz: cfg.clock_hz,
            next_free: 0,
        }
    }

    pub fn capacity(&self) -> u64 {
        self.bank_bytes * self.banks.len() as u64
    }

    pub fn free_bytes(&self) -> u64 {
        self.capacity() - self.next_free
    }

    /// Bump-allocate a slice (layer working buffers). The NCSDK runtime
    /// resets the arena between layers; callers use [`Cmx::reset`].
    pub fn alloc(&mut self, len: u64) -> Result<CmxSlice, CmxFull> {
        if len > self.free_bytes() {
            return Err(CmxFull { requested: len, free: self.free_bytes() });
        }
        let slice = CmxSlice { offset: self.next_free, len };
        self.next_free += len;
        Ok(slice)
    }

    /// Release the whole arena (between layers).
    pub fn reset(&mut self) {
        self.next_free = 0;
    }

    /// Which bank a byte address falls in (byte-interleaved by 128 KB
    /// blocks, matching the 16 × 128 KB organization).
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.bank_bytes) as usize) % self.banks.len()
    }

    /// Move `len` bytes starting at `addr` through the crossbar: the
    /// transfer is striped across the banks it touches, each bank doing
    /// its share at the port width, all in parallel (different banks) but
    /// queued behind earlier traffic to the same bank.
    pub fn access(&mut self, ready: SimTime, addr: u64, len: u64) -> desim::resource::Busy {
        if len == 0 {
            return desim::resource::Busy { start: ready, end: ready };
        }
        let mut remaining = len;
        let mut cursor = addr;
        let mut start = SimTime(u64::MAX);
        let mut end = SimTime::ZERO;
        while remaining > 0 {
            let bank = self.bank_of(cursor);
            let in_bank = (self.bank_bytes - cursor % self.bank_bytes).min(remaining);
            let cycles = in_bank.div_ceil(self.bytes_per_cycle);
            let busy = self.banks[bank].acquire(ready, Duration::for_cycles(cycles, self.clock_hz));
            start = start.min(busy.start);
            end = SimTime::max_of(end, busy.end);
            cursor += in_bank;
            remaining -= in_bank;
        }
        desim::resource::Busy { start, end }
    }

    /// Aggregate busy time over all banks.
    pub fn busy_total(&self) -> Duration {
        self.banks.iter().map(|b| b.busy_total()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmx() -> Cmx {
        Cmx::new(&Myriad2Config::default())
    }

    #[test]
    fn capacity_is_2mb() {
        assert_eq!(cmx().capacity(), 2 * 1024 * 1024);
    }

    #[test]
    fn alloc_and_reset() {
        let mut c = cmx();
        let a = c.alloc(100_000).unwrap();
        assert_eq!(a.offset, 0);
        let b = c.alloc(100_000).unwrap();
        assert_eq!(b.offset, 100_000);
        assert_eq!(c.free_bytes(), c.capacity() - 200_000);
        c.reset();
        assert_eq!(c.free_bytes(), c.capacity());
    }

    #[test]
    fn alloc_overflow_reports_free_space() {
        let mut c = cmx();
        c.alloc(2 * 1024 * 1024 - 10).unwrap();
        let err = c.alloc(100).unwrap_err();
        assert_eq!(err.requested, 100);
        assert_eq!(err.free, 10);
    }

    #[test]
    fn bank_mapping() {
        let c = cmx();
        assert_eq!(c.bank_of(0), 0);
        assert_eq!(c.bank_of(128 * 1024), 1);
        assert_eq!(c.bank_of(15 * 128 * 1024), 15);
        // Wraps past 2 MB.
        assert_eq!(c.bank_of(16 * 128 * 1024), 0);
    }

    #[test]
    fn same_bank_accesses_serialize() {
        let mut c = cmx();
        let a = c.access(SimTime(0), 0, 8_000);
        let b = c.access(SimTime(0), 0, 8_000);
        assert!(b.start >= a.end, "same-bank access must queue");
    }

    #[test]
    fn different_banks_run_in_parallel() {
        let mut c = cmx();
        let a = c.access(SimTime(0), 0, 8_000);
        let b = c.access(SimTime(0), 128 * 1024, 8_000);
        assert_eq!(a.start, b.start, "different banks should not conflict");
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn striped_access_spans_banks() {
        let mut c = cmx();
        // 256 KB starting at bank boundary touches banks 0 and 1 in
        // parallel: wall time equals one bank's share.
        let whole = c.access(SimTime(0), 0, 256 * 1024);
        let mut c2 = cmx();
        let single = c2.access(SimTime(0), 0, 128 * 1024);
        assert_eq!(whole.end, single.end);
    }

    #[test]
    fn zero_length_access_is_instant() {
        let mut c = cmx();
        let b = c.access(SimTime(42), 0, 0);
        assert_eq!(b.start, b.end);
        assert_eq!(b.start, SimTime(42));
    }

    #[test]
    fn port_width_sets_throughput() {
        let mut c = cmx();
        // 8 bytes/cycle at 600 MHz: 8000 bytes = 1000 cycles = 1667 ns.
        let b = c.access(SimTime(0), 0, 8_000);
        let expect = Duration::for_cycles(1_000, 600e6);
        assert_eq!(b.end - b.start, expect);
    }
}
