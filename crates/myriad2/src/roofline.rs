//! Roofline analysis of the chip.
//!
//! Classifies any piece of work by its operational intensity (MACs per
//! DDR byte) against the machine balance point, predicting whether the
//! SHAVE cluster or the LPDDR3 channel bounds it — the analytic
//! companion to the discrete-event model, used to sanity-check layer
//! timings and to explain the zoo/prefetch results (AlexNet's FC layers
//! sit far below the ridge; inception convolutions far above it).

use crate::arch::Myriad2Config;
use serde::{Deserialize, Serialize};

/// Which resource bounds a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    Compute,
    Memory,
}

/// Roofline placement of one piece of work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Operational intensity, MACs per DDR byte.
    pub intensity: f64,
    /// Attainable MAC rate under the roof, MACs/s.
    pub attainable: f64,
    pub bound: Bound,
    /// Predicted execution time in seconds.
    pub seconds: f64,
}

/// The machine roofline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Sustained MAC rate (peak × issue efficiency), MACs/s.
    pub compute_roof: f64,
    /// DDR bandwidth, bytes/s.
    pub memory_roof: f64,
}

impl Roofline {
    /// The chip's roofline at a given sustained efficiency (conv kernels
    /// ~0.2955, MDK GEMM ~0.55 — see [`crate::vliw`]).
    pub fn of(cfg: &Myriad2Config, efficiency: f64) -> Roofline {
        Roofline {
            compute_roof: cfg.peak_macs_per_sec() * efficiency,
            memory_roof: cfg.ddr_bandwidth,
        }
    }

    /// Intensity where the two roofs meet (MACs/byte).
    pub fn ridge(&self) -> f64 {
        self.compute_roof / self.memory_roof
    }

    /// Place a kernel with `macs` of work and `ddr_bytes` of compulsory
    /// traffic.
    pub fn classify(&self, macs: u64, ddr_bytes: u64) -> RooflinePoint {
        let intensity = if ddr_bytes == 0 { f64::INFINITY } else { macs as f64 / ddr_bytes as f64 };
        let attainable = (intensity * self.memory_roof).min(self.compute_roof);
        let bound = if intensity >= self.ridge() { Bound::Compute } else { Bound::Memory };
        RooflinePoint { intensity, attainable, bound, seconds: macs as f64 / attainable }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpu_nn::cost::NetworkCost;
    use vpu_num::f16;

    fn roof() -> Roofline {
        Roofline::of(&Myriad2Config::default(), 0.2955)
    }

    #[test]
    fn ridge_point() {
        let r = roof();
        // 57.6 GMAC/s × 0.2955 ≈ 17.0 GMAC/s over 4 GB/s ≈ 4.3 MAC/B.
        assert!((4.0..4.6).contains(&r.ridge()), "ridge {}", r.ridge());
    }

    #[test]
    fn inception_convs_are_compute_bound() {
        let cost = NetworkCost::of::<f16>(&vpu_nn::googlenet::full());
        let r = roof();
        let conv2 = cost.layers.iter().find(|l| l.name == "conv2/3x3").unwrap();
        let p = r.classify(conv2.macs, conv2.weight_bytes + conv2.in_bytes + conv2.out_bytes);
        assert_eq!(p.bound, Bound::Compute, "intensity {}", p.intensity);
        assert!(p.intensity > 50.0);
    }

    #[test]
    fn fc_layers_are_memory_bound() {
        let cost = NetworkCost::of::<f16>(&vpu_nn::zoo::alexnet_one_tower());
        let r = roof();
        let fc6 = cost.layers.iter().find(|l| l.name == "fc6").unwrap();
        let p = r.classify(fc6.macs, fc6.weight_bytes + fc6.in_bytes + fc6.out_bytes);
        assert_eq!(p.bound, Bound::Memory, "intensity {}", p.intensity);
        // Every FC MAC reads a fresh fp16 weight: intensity ~0.5 MAC/B.
        assert!(p.intensity < 1.0);
    }

    #[test]
    fn roofline_time_tracks_simulator_for_the_big_conv() {
        // The analytic prediction and the discrete-event simulation must
        // agree within ~30% for a compute-bound layer.
        use crate::{Myriad2, Myriad2Config};
        use desim::SimTime;
        let cost = NetworkCost::of::<f16>(&vpu_nn::googlenet::full());
        let mut chip = Myriad2::new(Myriad2Config::default());
        let run = chip.run_cost(&cost, SimTime::ZERO);
        let conv2_sim =
            run.layers.iter().find(|l| l.name == "conv2/3x3").unwrap().duration().as_secs();
        let conv2 = cost.layers.iter().find(|l| l.name == "conv2/3x3").unwrap();
        let p = roof().classify(conv2.macs, conv2.weight_bytes + conv2.in_bytes + conv2.out_bytes);
        let ratio = conv2_sim / p.seconds;
        assert!((0.7..1.4).contains(&ratio), "sim {} vs roofline {}", conv2_sim, p.seconds);
    }

    #[test]
    fn zero_traffic_is_infinitely_intense() {
        let p = roof().classify(1_000_000, 0);
        assert_eq!(p.bound, Bound::Compute);
        assert!(p.intensity.is_infinite());
        assert!(p.seconds > 0.0);
    }

    #[test]
    fn gemm_efficiency_moves_the_ridge() {
        let conv = Roofline::of(&Myriad2Config::default(), 0.2955);
        let gemm = Roofline::of(&Myriad2Config::default(), 0.55);
        assert!(gemm.ridge() > conv.ridge());
        assert!(gemm.compute_roof > conv.compute_roof);
    }
}
