//! Open-loop request generation.
//!
//! Arrivals are generated up front as a sorted list of virtual instants —
//! open-loop means the generator never waits for the system, so overload
//! manifests as queue growth and shedding rather than as a slowed-down
//! client. All randomness draws from [`vpu_num::rng`] streams, so a
//! `(process, seed)` pair always replays the identical trace.

use desim::{Duration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use vpu_num::rng;

/// Arrival process of the open-loop generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at a constant rate (requests per second).
    Poisson { rate_per_sec: f64 },
    /// Markov-modulated Poisson process: alternates between a low-rate
    /// and a high-rate phase with exponentially distributed dwell times —
    /// the standard bursty-traffic model.
    Mmpp {
        rate_lo_per_sec: f64,
        rate_hi_per_sec: f64,
        /// Mean dwell time in each phase.
        mean_dwell: Duration,
    },
    /// Replay a recorded trace of inter-arrival gaps verbatim (cycled if
    /// more requests are asked for than the trace holds).
    Trace { interarrivals: Vec<Duration> },
}

impl ArrivalProcess {
    /// Mean offered load in requests per second.
    pub fn offered_rps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec,
            // Symmetric dwell times: the two phases each carry half the time.
            ArrivalProcess::Mmpp { rate_lo_per_sec, rate_hi_per_sec, .. } => {
                (rate_lo_per_sec + rate_hi_per_sec) / 2.0
            }
            ArrivalProcess::Trace { interarrivals } => {
                let total: Duration = interarrivals.iter().copied().sum();
                if total.nanos() == 0 {
                    0.0
                } else {
                    interarrivals.len() as f64 / total.as_secs()
                }
            }
        }
    }

    /// Generate `n` arrival instants starting at `epoch`, sorted.
    pub fn arrivals(&self, n: usize, epoch: SimTime, seed: u64) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(n);
        let mut t = epoch;
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                assert!(*rate_per_sec > 0.0, "rate must be positive");
                let mut r = rng::stream(seed, "serve-poisson");
                for _ in 0..n {
                    t += exp_gap(&mut r, *rate_per_sec);
                    out.push(t);
                }
            }
            ArrivalProcess::Mmpp { rate_lo_per_sec, rate_hi_per_sec, mean_dwell } => {
                assert!(*rate_lo_per_sec > 0.0 && *rate_hi_per_sec > 0.0, "rates must be positive");
                assert!(mean_dwell.nanos() > 0, "dwell must be positive");
                let mut r = rng::stream(seed, "serve-mmpp");
                let mut hi = false;
                // Phase switches are drawn lazily: next_switch is the end
                // of the current dwell period.
                let dwell_rate = 1.0 / mean_dwell.as_secs();
                let mut next_switch = t + exp_gap(&mut r, dwell_rate);
                for _ in 0..n {
                    loop {
                        let rate = if hi { *rate_hi_per_sec } else { *rate_lo_per_sec };
                        let cand = t + exp_gap(&mut r, rate);
                        if cand <= next_switch {
                            t = cand;
                            break;
                        }
                        // The gap crosses a phase boundary: restart the
                        // draw from the switch instant in the new phase
                        // (memorylessness makes this exact).
                        t = next_switch;
                        hi = !hi;
                        next_switch = t + exp_gap(&mut r, dwell_rate);
                    }
                    out.push(t);
                }
            }
            ArrivalProcess::Trace { interarrivals } => {
                assert!(!interarrivals.is_empty(), "trace must be non-empty");
                for i in 0..n {
                    t += interarrivals[i % interarrivals.len()];
                    out.push(t);
                }
            }
        }
        out
    }
}

/// Exponentially distributed gap with the given rate (events/sec).
fn exp_gap<R: Rng>(r: &mut R, rate_per_sec: f64) -> Duration {
    let u: f64 = r.gen::<f64>();
    let secs = -(1.0 - u).max(f64::MIN_POSITIVE).ln() / rate_per_sec;
    // Clamp to >= 1 ns so arrivals are strictly increasing.
    Duration::from_nanos((secs * 1e9).ceil().max(1.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_is_close() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 100.0 };
        let a = p.arrivals(10_000, SimTime::ZERO, 7);
        let span = a.last().unwrap().as_secs();
        let rate = a.len() as f64 / span;
        assert!((90.0..110.0).contains(&rate), "poisson rate {rate}");
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_replayable() {
        for p in [
            ArrivalProcess::Poisson { rate_per_sec: 50.0 },
            ArrivalProcess::Mmpp {
                rate_lo_per_sec: 20.0,
                rate_hi_per_sec: 200.0,
                mean_dwell: Duration::from_millis(100.0),
            },
            ArrivalProcess::Trace {
                interarrivals: vec![Duration::from_millis(3.0), Duration::from_millis(7.0)],
            },
        ] {
            let a = p.arrivals(500, SimTime::ZERO, 3);
            let b = p.arrivals(500, SimTime::ZERO, 3);
            assert_eq!(a, b, "same seed must replay");
            assert!(a.windows(2).all(|w| w[0] < w[1]), "must be increasing");
        }
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let rate = 100.0;
        let pois = ArrivalProcess::Poisson { rate_per_sec: rate };
        let mmpp = ArrivalProcess::Mmpp {
            rate_lo_per_sec: 20.0,
            rate_hi_per_sec: 180.0,
            mean_dwell: Duration::from_millis(200.0),
        };
        let cv2 = |a: &[SimTime]| {
            let gaps: Vec<f64> = a.windows(2).map(|w| (w[1] - w[0]).as_secs()).collect();
            let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / gaps.len() as f64;
            var / (m * m)
        };
        let a = pois.arrivals(5_000, SimTime::ZERO, 11);
        let b = mmpp.arrivals(5_000, SimTime::ZERO, 11);
        assert!(cv2(&b) > cv2(&a) * 1.3, "MMPP must have higher gap variability");
    }

    #[test]
    fn trace_cycles_and_reports_rate() {
        let p = ArrivalProcess::Trace { interarrivals: vec![Duration::from_millis(10.0)] };
        let a = p.arrivals(3, SimTime::ZERO, 0);
        assert_eq!(a[2] - a[0], Duration::from_millis(20.0));
        assert!((p.offered_rps() - 100.0).abs() < 1e-9);
    }
}
