//! Fleet construction: turn a spec like `cpu+gpu+8xvpu` into boxed
//! [`ServiceHook`] workers over one shared [`ModelBundle`].

use ncsw::service::ServiceHook;
use ncsw::{IntelCpu, IntelVpu, ModelBundle, NvGpu};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One worker slot of a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerSpec {
    Cpu,
    Gpu,
    /// A multi-stick VPU pipeline with this many NCS devices.
    Vpu {
        devices: usize,
    },
}

/// An ordered set of workers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSpec(pub Vec<WorkerSpec>);

impl FleetSpec {
    /// Parse `cpu+gpu+8xvpu` / `1xvpu` / `cpu` style specs.
    pub fn parse(s: &str) -> Option<FleetSpec> {
        let mut out = Vec::new();
        for part in s.split('+') {
            match part {
                "cpu" => out.push(WorkerSpec::Cpu),
                "gpu" => out.push(WorkerSpec::Gpu),
                "vpu" => out.push(WorkerSpec::Vpu { devices: 1 }),
                other => {
                    let (n, rest) = other.split_once('x')?;
                    if rest != "vpu" {
                        return None;
                    }
                    let devices: usize = n.parse().ok()?;
                    if devices == 0 {
                        return None;
                    }
                    out.push(WorkerSpec::Vpu { devices });
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(FleetSpec(out))
        }
    }

    /// Instantiate the workers (each gets its own simulated device; the
    /// model bundle is shared — it is `Arc`s inside).
    pub fn build(&self, model: &ModelBundle) -> Vec<Box<dyn ServiceHook>> {
        self.0
            .iter()
            .map(|w| -> Box<dyn ServiceHook> {
                match *w {
                    WorkerSpec::Cpu => Box::new(IntelCpu::new(model.clone())),
                    WorkerSpec::Gpu => Box::new(NvGpu::new(model.clone())),
                    WorkerSpec::Vpu { devices } => Box::new(IntelVpu::new(model.clone(), devices)),
                }
            })
            .collect()
    }

    /// Largest batch any *live* worker prefers — a sensible `max_batch`
    /// for the batcher serving this fleet. At build time every worker is
    /// live; during a run the dispatcher passes its circuit-breaker mask
    /// via [`live_preferred_batch`] so batching adapts to survivors.
    pub fn preferred_batch(&self, workers: &[Box<dyn ServiceHook>]) -> usize {
        live_preferred_batch(workers, &vec![false; workers.len()])
    }

    /// Estimated aggregate capacity in requests per second of the *live*
    /// workers: each at its preferred batch size, back to back. At build
    /// time this is the nameplate capacity; the dispatcher recomputes it
    /// through [`live_capacity_rps`] with its open-circuit mask so
    /// degradation math and admission use surviving capacity.
    pub fn capacity_rps(&self, workers: &[Box<dyn ServiceHook>]) -> f64 {
        live_capacity_rps(workers, &vec![false; workers.len()])
    }
}

/// Sustained throughput of one worker at its preferred batch size.
pub fn worker_rps(w: &dyn ServiceHook) -> f64 {
    let b = w.preferred_batch();
    b as f64 / w.estimate(b).as_secs()
}

/// Aggregate capacity (requests per second) of the workers whose
/// circuit is *not* open — the surviving capacity the admission
/// controller degrades against. `open[i]` marks worker `i` dead.
pub fn live_capacity_rps(workers: &[Box<dyn ServiceHook>], open: &[bool]) -> f64 {
    workers
        .iter()
        .enumerate()
        .filter(|(i, _)| !open.get(*i).copied().unwrap_or(false))
        .map(|(_, w)| worker_rps(w.as_ref()))
        .sum()
}

/// Largest preferred batch among non-open-circuit workers (falls back
/// to the whole fleet when every circuit is open, so the batcher always
/// has a positive limit).
pub fn live_preferred_batch(workers: &[Box<dyn ServiceHook>], open: &[bool]) -> usize {
    let live = workers
        .iter()
        .enumerate()
        .filter(|(i, _)| !open.get(*i).copied().unwrap_or(false))
        .map(|(_, w)| w.preferred_batch())
        .max();
    live.or_else(|| workers.iter().map(|w| w.preferred_batch()).max()).unwrap_or(1)
}

impl fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            match w {
                WorkerSpec::Cpu => write!(f, "cpu")?,
                WorkerSpec::Gpu => write!(f, "gpu")?,
                WorkerSpec::Vpu { devices } => write!(f, "{devices}xvpu")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in ["cpu", "gpu", "1xvpu", "8xvpu", "cpu+gpu+8xvpu"] {
            let spec = FleetSpec::parse(s).expect(s);
            assert_eq!(spec.to_string(), s);
        }
        assert_eq!(FleetSpec::parse("vpu"), Some(FleetSpec(vec![WorkerSpec::Vpu { devices: 1 }])));
        assert!(FleetSpec::parse("tpu").is_none());
        assert!(FleetSpec::parse("0xvpu").is_none());
        assert!(FleetSpec::parse("").is_none());
    }

    #[test]
    fn live_capacity_counts_only_closed_circuits() {
        let model = ncsw::ModelBundle::googlenet_untrained(vpu_nn::googlenet::Variant::Tiny, 1);
        let spec = FleetSpec::parse("cpu+gpu+2xvpu").unwrap();
        let workers = spec.build(&model);
        let nameplate = spec.capacity_rps(&workers);
        let each: Vec<f64> = workers.iter().map(|w| worker_rps(w.as_ref())).collect();
        assert!((nameplate - each.iter().sum::<f64>()).abs() < 1e-9);

        // Opening the GPU's circuit removes exactly its share.
        let open = vec![false, true, false];
        let surviving = live_capacity_rps(&workers, &open);
        assert!((surviving - (nameplate - each[1])).abs() < 1e-9);
        assert!(surviving < nameplate);

        // Preferred batch adapts to survivors (hosts prefer 8, the
        // 2-stick VPU prefers 2) and falls back when everyone is open.
        assert_eq!(spec.preferred_batch(&workers), 8);
        assert_eq!(live_preferred_batch(&workers, &[true, true, false]), 2);
        assert_eq!(live_preferred_batch(&workers, &[true, true, true]), 8);
    }
}
