//! Fleet construction: turn a spec like `cpu+gpu+8xvpu` into boxed
//! [`ServiceHook`] workers over one shared [`ModelBundle`].

use ncsw::service::ServiceHook;
use ncsw::{IntelCpu, IntelVpu, ModelBundle, NvGpu};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One worker slot of a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerSpec {
    Cpu,
    Gpu,
    /// A multi-stick VPU pipeline with this many NCS devices.
    Vpu {
        devices: usize,
    },
}

/// An ordered set of workers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSpec(pub Vec<WorkerSpec>);

impl FleetSpec {
    /// Parse `cpu+gpu+8xvpu` / `1xvpu` / `cpu` style specs.
    pub fn parse(s: &str) -> Option<FleetSpec> {
        let mut out = Vec::new();
        for part in s.split('+') {
            match part {
                "cpu" => out.push(WorkerSpec::Cpu),
                "gpu" => out.push(WorkerSpec::Gpu),
                "vpu" => out.push(WorkerSpec::Vpu { devices: 1 }),
                other => {
                    let (n, rest) = other.split_once('x')?;
                    if rest != "vpu" {
                        return None;
                    }
                    let devices: usize = n.parse().ok()?;
                    if devices == 0 {
                        return None;
                    }
                    out.push(WorkerSpec::Vpu { devices });
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(FleetSpec(out))
        }
    }

    /// Instantiate the workers (each gets its own simulated device; the
    /// model bundle is shared — it is `Arc`s inside).
    pub fn build(&self, model: &ModelBundle) -> Vec<Box<dyn ServiceHook>> {
        self.0
            .iter()
            .map(|w| -> Box<dyn ServiceHook> {
                match *w {
                    WorkerSpec::Cpu => Box::new(IntelCpu::new(model.clone())),
                    WorkerSpec::Gpu => Box::new(NvGpu::new(model.clone())),
                    WorkerSpec::Vpu { devices } => Box::new(IntelVpu::new(model.clone(), devices)),
                }
            })
            .collect()
    }

    /// Largest batch any worker prefers — a sensible `max_batch` for the
    /// batcher serving this fleet.
    pub fn preferred_batch(&self, workers: &[Box<dyn ServiceHook>]) -> usize {
        workers.iter().map(|w| w.preferred_batch()).max().unwrap_or(1)
    }

    /// Estimated aggregate capacity in requests per second: each worker
    /// at its preferred batch size, back to back.
    pub fn capacity_rps(&self, workers: &[Box<dyn ServiceHook>]) -> f64 {
        workers
            .iter()
            .map(|w| {
                let b = w.preferred_batch();
                b as f64 / w.estimate(b).as_secs()
            })
            .sum()
    }
}

impl fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            match w {
                WorkerSpec::Cpu => write!(f, "cpu")?,
                WorkerSpec::Gpu => write!(f, "gpu")?,
                WorkerSpec::Vpu { devices } => write!(f, "{devices}xvpu")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in ["cpu", "gpu", "1xvpu", "8xvpu", "cpu+gpu+8xvpu"] {
            let spec = FleetSpec::parse(s).expect(s);
            assert_eq!(spec.to_string(), s);
        }
        assert_eq!(FleetSpec::parse("vpu"), Some(FleetSpec(vec![WorkerSpec::Vpu { devices: 1 }])));
        assert!(FleetSpec::parse("tpu").is_none());
        assert!(FleetSpec::parse("0xvpu").is_none());
        assert!(FleetSpec::parse("").is_none());
    }
}
