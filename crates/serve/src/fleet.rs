//! Fleet construction: turn a spec like `cpu+gpu+8xvpu` into boxed
//! [`ServiceHook`] workers over one shared [`ModelBundle`].

use ncsw::service::ServiceHook;
use ncsw::{IntelCpu, IntelVpu, ModelBundle, NvGpu, ScalePlan};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One worker slot of a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerSpec {
    Cpu,
    Gpu,
    /// A multi-stick VPU pipeline with this many NCS devices.
    Vpu {
        devices: usize,
    },
    /// One *elastic* single-stick VPU worker: the unit the autoscaler
    /// may drain and power-gate. `8*vpu` is eight independent sticks
    /// (eight of these), where `8xvpu` is one eight-device pipeline.
    Stick,
}

/// An ordered set of workers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSpec(pub Vec<WorkerSpec>);

impl FleetSpec {
    /// Parse `cpu+gpu+8xvpu` / `1xvpu` / `cpu` style specs. `N*vpu`
    /// adds N independent elastic sticks (autoscalable), where `Nxvpu`
    /// is one N-device pipeline worker.
    pub fn parse(s: &str) -> Option<FleetSpec> {
        let mut out = Vec::new();
        for part in s.split('+') {
            match part {
                "cpu" => out.push(WorkerSpec::Cpu),
                "gpu" => out.push(WorkerSpec::Gpu),
                "vpu" => out.push(WorkerSpec::Vpu { devices: 1 }),
                other => {
                    if let Some((n, rest)) = other.split_once('*') {
                        if rest != "vpu" {
                            return None;
                        }
                        let sticks: usize = n.parse().ok()?;
                        if sticks == 0 {
                            return None;
                        }
                        out.extend(std::iter::repeat_n(WorkerSpec::Stick, sticks));
                        continue;
                    }
                    let (n, rest) = other.split_once('x')?;
                    if rest != "vpu" {
                        return None;
                    }
                    let devices: usize = n.parse().ok()?;
                    if devices == 0 {
                        return None;
                    }
                    out.push(WorkerSpec::Vpu { devices });
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(FleetSpec(out))
        }
    }

    /// Indices of the elastic (`Stick`) workers — the pool a
    /// `ScalingConfig` hands to the autoscaler.
    pub fn elastic_workers(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, w)| matches!(w, WorkerSpec::Stick))
            .map(|(i, _)| i)
            .collect()
    }

    /// Instantiate the workers (each gets its own simulated device; the
    /// model bundle is shared — it is `Arc`s inside).
    pub fn build(&self, model: &ModelBundle) -> Vec<Box<dyn ServiceHook>> {
        self.build_scaled(model, &ScalePlan::identity())
    }

    /// [`FleetSpec::build`] with a causal what-if [`ScalePlan`] threaded
    /// into every worker's device config, so estimates, dispatch and
    /// energy metering all see the scaled hardware. The identity plan
    /// builds a byte-identical fleet (each knob guards its multiply);
    /// `ScaleComponent::BatchWait` is a serving-layer knob, so the
    /// fleet itself is also unscaled for it — callers apply
    /// [`ScalePlan::max_wait`] to their `ServeConfig`.
    pub fn build_scaled(&self, model: &ModelBundle, plan: &ScalePlan) -> Vec<Box<dyn ServiceHook>> {
        use ncsw::hostsim::{CpuConfig, GpuConfig};
        use ncsw::multivpu::MultiVpuConfig;
        let vpu = |devices: usize| {
            IntelVpu::with_config(
                model.clone(),
                plan.vpu_config(MultiVpuConfig::paper_testbed(devices)),
            )
        };
        self.0
            .iter()
            .map(|w| -> Box<dyn ServiceHook> {
                match *w {
                    WorkerSpec::Cpu => Box::new(IntelCpu::with_config(
                        model.clone(),
                        plan.cpu_config(CpuConfig::default()),
                    )),
                    WorkerSpec::Gpu => Box::new(NvGpu::with_config(
                        model.clone(),
                        plan.gpu_config(GpuConfig::default()),
                    )),
                    WorkerSpec::Vpu { devices } => Box::new(vpu(devices)),
                    WorkerSpec::Stick => Box::new(vpu(1)),
                }
            })
            .collect()
    }

    /// Largest batch any *live* worker prefers — a sensible `max_batch`
    /// for the batcher serving this fleet. At build time every worker is
    /// live; during a run the dispatcher passes its circuit-breaker mask
    /// via [`live_preferred_batch`] so batching adapts to survivors.
    pub fn preferred_batch(&self, workers: &[Box<dyn ServiceHook>]) -> usize {
        live_preferred_batch(workers, &vec![false; workers.len()])
    }

    /// Estimated aggregate capacity in requests per second of the *live*
    /// workers: each at its preferred batch size, back to back. At build
    /// time this is the nameplate capacity; the dispatcher recomputes it
    /// through [`live_capacity_rps`] with its open-circuit mask so
    /// degradation math and admission use surviving capacity.
    pub fn capacity_rps(&self, workers: &[Box<dyn ServiceHook>]) -> f64 {
        live_capacity_rps(workers, &vec![false; workers.len()])
    }
}

/// Sustained throughput of one worker at its preferred batch size.
pub fn worker_rps(w: &dyn ServiceHook) -> f64 {
    let b = w.preferred_batch();
    b as f64 / w.estimate(b).as_secs()
}

/// Aggregate capacity (requests per second) of the workers whose
/// circuit is *not* open — the surviving capacity the admission
/// controller degrades against. `open[i]` marks worker `i` dead.
pub fn live_capacity_rps(workers: &[Box<dyn ServiceHook>], open: &[bool]) -> f64 {
    workers
        .iter()
        .enumerate()
        .filter(|(i, _)| !open.get(*i).copied().unwrap_or(false))
        .map(|(_, w)| worker_rps(w.as_ref()))
        .sum()
}

/// Largest preferred batch among non-open-circuit workers (falls back
/// to the whole fleet when every circuit is open, so the batcher always
/// has a positive limit).
pub fn live_preferred_batch(workers: &[Box<dyn ServiceHook>], open: &[bool]) -> usize {
    let live = workers
        .iter()
        .enumerate()
        .filter(|(i, _)| !open.get(*i).copied().unwrap_or(false))
        .map(|(_, w)| w.preferred_batch())
        .max();
    live.or_else(|| workers.iter().map(|w| w.preferred_batch()).max()).unwrap_or(1)
}

impl fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut i = 0;
        let mut first = true;
        while i < self.0.len() {
            if !first {
                write!(f, "+")?;
            }
            first = false;
            match self.0[i] {
                WorkerSpec::Cpu => write!(f, "cpu")?,
                WorkerSpec::Gpu => write!(f, "gpu")?,
                WorkerSpec::Vpu { devices } => write!(f, "{devices}xvpu")?,
                WorkerSpec::Stick => {
                    // Collapse a run of consecutive sticks back into the
                    // `N*vpu` the spec was parsed from.
                    let run =
                        self.0[i..].iter().take_while(|w| matches!(w, WorkerSpec::Stick)).count();
                    write!(f, "{run}*vpu")?;
                    i += run;
                    continue;
                }
            }
            i += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in ["cpu", "gpu", "1xvpu", "8xvpu", "cpu+gpu+8xvpu", "8*vpu", "cpu+gpu+4*vpu"] {
            let spec = FleetSpec::parse(s).expect(s);
            assert_eq!(spec.to_string(), s);
        }
        assert_eq!(FleetSpec::parse("vpu"), Some(FleetSpec(vec![WorkerSpec::Vpu { devices: 1 }])));
        assert!(FleetSpec::parse("tpu").is_none());
        assert!(FleetSpec::parse("0xvpu").is_none());
        assert!(FleetSpec::parse("0*vpu").is_none());
        assert!(FleetSpec::parse("3*gpu").is_none());
        assert!(FleetSpec::parse("").is_none());
    }

    #[test]
    fn elastic_workers_are_the_stick_indices() {
        let spec = FleetSpec::parse("cpu+2*vpu+gpu+1*vpu").unwrap();
        assert_eq!(spec.0.len(), 5);
        assert_eq!(spec.elastic_workers(), vec![1, 2, 4]);
        // `Nxvpu` pipelines are *not* elastic: a pipeline is one worker.
        assert!(FleetSpec::parse("cpu+8xvpu").unwrap().elastic_workers().is_empty());
        // Sticks parse as independent single-stick workers.
        assert_eq!(FleetSpec::parse("3*vpu").unwrap().0, vec![WorkerSpec::Stick; 3]);
    }

    #[test]
    fn live_capacity_counts_only_closed_circuits() {
        let model = ncsw::ModelBundle::googlenet_untrained(vpu_nn::googlenet::Variant::Tiny, 1);
        let spec = FleetSpec::parse("cpu+gpu+2xvpu").unwrap();
        let workers = spec.build(&model);
        let nameplate = spec.capacity_rps(&workers);
        let each: Vec<f64> = workers.iter().map(|w| worker_rps(w.as_ref())).collect();
        assert!((nameplate - each.iter().sum::<f64>()).abs() < 1e-9);

        // Opening the GPU's circuit removes exactly its share.
        let open = vec![false, true, false];
        let surviving = live_capacity_rps(&workers, &open);
        assert!((surviving - (nameplate - each[1])).abs() < 1e-9);
        assert!(surviving < nameplate);

        // Preferred batch adapts to survivors (hosts prefer 8, the
        // 2-stick VPU prefers 2) and falls back when everyone is open.
        assert_eq!(spec.preferred_batch(&workers), 8);
        assert_eq!(live_preferred_batch(&workers, &[true, true, false]), 2);
        assert_eq!(live_preferred_batch(&workers, &[true, true, true]), 8);
    }
}
