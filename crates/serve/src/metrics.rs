//! Aggregation of a serving run into a serializable report.

use crate::histogram::LogHistogram;
use crate::server::{GrayStats, ServeConfig, ServeOutcome, ShedCause};
use desim::Duration;
use ncsw_obs::joules;
use serde::{Deserialize, Serialize};

/// Latency percentiles in milliseconds (log-bucketed histogram, so the
/// quantiles carry ~3% bucket error and never under-state).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    pub max_ms: f64,
}

impl Percentiles {
    pub fn of(h: &LogHistogram) -> Percentiles {
        Percentiles {
            mean_ms: h.mean().as_millis(),
            p50_ms: h.quantile(0.50).as_millis(),
            p95_ms: h.quantile(0.95).as_millis(),
            p99_ms: h.quantile(0.99).as_millis(),
            p999_ms: h.quantile(0.999).as_millis(),
            max_ms: h.max().as_millis(),
        }
    }
}

/// Shed requests split by the admission decision that dropped them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ShedBreakdown {
    /// Tail-dropped on arrival ([`crate::ShedPolicy::Reject`]).
    pub rejected: usize,
    /// Evicted after queueing ([`crate::ShedPolicy::DropOldest`]).
    pub evicted: usize,
    /// Rejected as hopeless against the SLO
    /// ([`crate::ShedPolicy::DeadlineAware`]).
    pub deadline: usize,
    /// Dropped after exhausting failover retries
    /// ([`ShedCause::RetriesExhausted`]).
    pub retries_exhausted: usize,
    /// Queue time evicted requests burned before being dropped — work
    /// the server admitted and then threw away.
    pub evicted_wait_mean_ms: f64,
    pub evicted_wait_max_ms: f64,
}

impl ShedBreakdown {
    fn of(outcome: &ServeOutcome) -> ShedBreakdown {
        let mut b = ShedBreakdown::default();
        let mut total = Duration::ZERO;
        for s in &outcome.shed {
            match s.cause {
                ShedCause::Rejected => b.rejected += 1,
                ShedCause::Deadline => b.deadline += 1,
                ShedCause::RetriesExhausted => b.retries_exhausted += 1,
                ShedCause::Evicted => {
                    b.evicted += 1;
                    total += s.wait();
                    b.evicted_wait_max_ms = b.evicted_wait_max_ms.max(s.wait().as_millis());
                }
            }
        }
        b.evicted_wait_mean_ms = (total / b.evicted.max(1) as u64).as_millis();
        b
    }
}

/// Fault-tolerance view of one run — all zeros on a healthy run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Failed batch dispatches (injected faults plus dispatch timeouts).
    pub injected: u64,
    /// Re-dispatch attempts the failover path issued.
    pub retries: u64,
    /// Retries per *completed* request — the overhead failures added.
    pub retries_per_request: f64,
    /// Requests shed after exhausting their attempts.
    pub exhausted: u64,
    /// Circuit-breaker outage windows observed.
    pub outages: usize,
    /// Mean time-to-recovery across outages (circuit open -> first
    /// re-admitted probe), in milliseconds.
    pub mttr_ms: f64,
    /// p99 end-to-end latency of completions that overlapped an outage
    /// window — the tail *during* failover, not diluted by healthy time.
    pub p99_during_failover_ms: f64,
}

impl FaultReport {
    fn of(outcome: &ServeOutcome) -> FaultReport {
        let f = &outcome.faults;
        let end = outcome.end();
        let mut ttr = Duration::ZERO;
        for o in &f.outages {
            ttr += o.ttr(end);
        }
        let mut during = LogHistogram::new();
        for r in &outcome.completed {
            let overlaps = f
                .outages
                .iter()
                .any(|o| r.arrival <= o.until.unwrap_or(end) && r.completed >= o.from);
            if overlaps {
                during.record(r.latency());
            }
        }
        FaultReport {
            injected: f.injected,
            retries: f.retries,
            retries_per_request: f.retries as f64 / outcome.completed.len().max(1) as f64,
            exhausted: f.exhausted,
            outages: f.outages.len(),
            mttr_ms: if f.outages.is_empty() {
                0.0
            } else {
                (ttr / f.outages.len() as u64).as_millis()
            },
            p99_during_failover_ms: if during.is_empty() {
                0.0
            } else {
                during.quantile(0.99).as_millis()
            },
        }
    }
}

/// Gray-failure view of one run: wire integrity, hedging and fail-slow
/// quarantine. All zeros on a clean wire with the defenses off.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GrayReport {
    pub stats: GrayStats,
    /// [`GrayStats::hedge_wasted_pj`] in joules, for reading.
    pub hedge_wasted_j: f64,
}

impl GrayReport {
    fn of(outcome: &ServeOutcome) -> GrayReport {
        GrayReport {
            stats: outcome.gray.clone(),
            hedge_wasted_j: joules(outcome.gray.hedge_wasted_pj),
        }
    }
}

/// Per-worker share of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerReport {
    pub label: String,
    pub batches: u64,
    pub images: u64,
    pub mean_batch: f64,
    /// Busy time over the serving horizon.
    pub utilization: f64,
    /// Failed dispatch attempts charged to this worker.
    pub failures: u64,
}

/// One worker's energy row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerEnergy {
    pub label: String,
    /// Charged time serving batches that completed, milliseconds.
    pub served_ms: f64,
    /// Charged time of failed attempts (timeouts, probes), milliseconds.
    pub wasted_ms: f64,
    pub energy_j: f64,
    pub avg_power_w: f64,
}

/// Energy view of one run: integrated joules from the per-worker island
/// models, split active/wasted/idle, plus the paper's Eq. 1 img/W for
/// comparison against the *measured* img/W.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Exact fleet energy in integer picojoules (`mW × ns`; the
    /// conservation laws the analyzer re-checks are equalities on this
    /// number, never on floats).
    pub fleet_pj: u64,
    /// The same, in joules.
    pub fleet_j: f64,
    /// Busy energy of batches that produced completions.
    pub active_j: f64,
    /// Busy energy of failed attempts — charged here even though their
    /// latency is never attributed to a request.
    pub wasted_j: f64,
    /// Gated/idle energy — the cost of headroom the TDP math hides.
    pub idle_j: f64,
    /// Joules per completed inference (integrated, whole fleet).
    pub j_per_inference: f64,
    /// Completions per joule == img/s per watt over *integrated* energy.
    pub img_per_watt: f64,
    /// The paper's Eq. 1: goodput over summed nameplate TDP.
    pub img_per_watt_tdp: f64,
    /// Energy-accounting horizon (epoch → last charged instant), ms.
    pub horizon_ms: f64,
    pub workers: Vec<WorkerEnergy>,
}

impl EnergyReport {
    fn of(outcome: &ServeOutcome, goodput_rps: f64) -> EnergyReport {
        let horizon = outcome.energy_horizon();
        let t = outcome.energy.totals(horizon);
        let fleet_pj = t.fleet_pj();
        let fleet_j = joules(fleet_pj);
        let completed = outcome.completed.len();
        let tdp_w: f64 =
            outcome.energy.profiles().iter().map(|p| p.tdp_mw as f64 / 1e3).sum::<f64>();
        let horizon_s = (horizon - outcome.epoch).as_secs().max(1e-12);
        EnergyReport {
            fleet_pj,
            fleet_j,
            active_j: joules(t.active_pj),
            wasted_j: joules(t.wasted_pj),
            idle_j: joules(t.idle_pj),
            j_per_inference: if completed > 0 { fleet_j / completed as f64 } else { 0.0 },
            img_per_watt: if fleet_j > 0.0 { completed as f64 / fleet_j } else { 0.0 },
            img_per_watt_tdp: if tdp_w > 0.0 { goodput_rps / tdp_w } else { 0.0 },
            horizon_ms: (horizon - outcome.epoch).as_millis(),
            workers: outcome
                .energy
                .profiles()
                .iter()
                .enumerate()
                .map(|(w, p)| {
                    let pj = outcome.energy.worker_pj(w, horizon);
                    WorkerEnergy {
                        label: p.label.clone(),
                        served_ms: outcome.energy.served_ns(w) as f64 / 1e6,
                        wasted_ms: outcome.energy.wasted_ns(w) as f64 / 1e6,
                        energy_j: joules(pj),
                        avg_power_w: joules(pj) / horizon_s,
                    }
                })
                .collect(),
        }
    }
}

/// Autoscaling view of one run: what the controller did and what it
/// bought. `stick_seconds` vs `static_stick_seconds` is the capacity
/// the fleet gave back; `reclaimed_j` is the *exact* idle draw those
/// unpowered stick-seconds would have cost a static fleet (integer
/// `idle_mw x ns` off the same ledger every other energy law uses).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingReport {
    /// Policy that drove the run.
    pub policy: String,
    /// Controller ticks processed.
    pub ticks: u64,
    pub scale_ups: u64,
    pub scale_downs: u64,
    /// Scale-ups issued while circuits were open (outage replacements).
    pub replacements: u64,
    /// Size of the elastic pool.
    pub elastic_sticks: usize,
    /// Powered elastic stick-seconds over the energy horizon.
    pub stick_seconds: f64,
    /// What a static fleet would have paid: pool size x horizon.
    pub static_stick_seconds: f64,
    /// Idle energy the gating avoided, exact integer picojoules.
    pub reclaimed_pj: u64,
    pub reclaimed_j: f64,
}

impl ScalingReport {
    fn of(outcome: &ServeOutcome, stats: &crate::server::ScalingStats) -> ScalingReport {
        let horizon = outcome.energy_horizon();
        let horizon_s = (horizon - outcome.epoch).as_secs();
        let stick_seconds: f64 =
            stats.elastic.iter().map(|&w| outcome.energy.powered_ns(w, horizon) as f64 / 1e9).sum();
        let reclaimed_pj = outcome.energy.reclaimed_pj(horizon);
        ScalingReport {
            policy: stats.policy.clone(),
            ticks: stats.ticks,
            scale_ups: stats.scale_ups,
            scale_downs: stats.scale_downs,
            replacements: stats.replacements,
            elastic_sticks: stats.elastic.len(),
            stick_seconds,
            static_stick_seconds: stats.elastic.len() as f64 * horizon_s,
            reclaimed_pj,
            reclaimed_j: joules(reclaimed_pj),
        }
    }
}

/// One serving run, aggregated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests the open-loop generator produced.
    pub generated: usize,
    pub completed: usize,
    pub shed: usize,
    pub shed_rate: f64,
    /// How the shed requests were dropped (reject vs. eviction).
    pub shed_by_policy: ShedBreakdown,
    /// Mean offered load over the run (generated / horizon).
    pub offered_rps: f64,
    /// Completions per second over the horizon.
    pub completed_rps: f64,
    /// SLO-compliant completions per second (latency <= SLO).
    pub goodput_rps: f64,
    pub slo_ms: f64,
    /// p99 within SLO and nothing shed.
    pub slo_attained: bool,
    /// End-to-end latency (arrival -> result) of completed requests.
    pub latency: Percentiles,
    /// Decomposition means: batch-formation, dispatch-queue, service.
    pub formation_wait_mean_ms: f64,
    pub queue_wait_mean_ms: f64,
    pub service_time_mean_ms: f64,
    /// Fault injection and failover accounting.
    pub faults: FaultReport,
    /// Gray-failure accounting (wire integrity, hedging, quarantine).
    pub gray: GrayReport,
    /// Integrated energy accounting (Eq. 1 vs measured img/W).
    pub energy: EnergyReport,
    /// Autoscaling accounting; `null` on static-fleet runs.
    pub scaling: Option<ScalingReport>,
    pub workers: Vec<WorkerReport>,
}

impl ServeReport {
    pub fn of(outcome: &ServeOutcome, cfg: &ServeConfig) -> ServeReport {
        let horizon = (outcome.end() - outcome.epoch).as_secs().max(1e-12);
        let mut latency = LogHistogram::new();
        let mut formation = Duration::ZERO;
        let mut queue = Duration::ZERO;
        let mut service = Duration::ZERO;
        let mut good = 0usize;
        for r in &outcome.completed {
            latency.record(r.latency());
            formation += r.formation_wait();
            queue += r.queue_wait();
            service += r.service_time();
            if r.latency() <= cfg.slo {
                good += 1;
            }
        }
        let n = outcome.completed.len().max(1) as u64;
        let pct = Percentiles::of(&latency);
        ServeReport {
            generated: outcome.generated,
            completed: outcome.completed.len(),
            shed: outcome.shed.len(),
            shed_rate: outcome.shed.len() as f64 / outcome.generated.max(1) as f64,
            shed_by_policy: ShedBreakdown::of(outcome),
            offered_rps: outcome.generated as f64 / horizon,
            completed_rps: outcome.completed.len() as f64 / horizon,
            goodput_rps: good as f64 / horizon,
            slo_ms: cfg.slo.as_millis(),
            slo_attained: outcome.shed.is_empty() && pct.p99_ms <= cfg.slo.as_millis(),
            latency: pct,
            formation_wait_mean_ms: (formation / n).as_millis(),
            queue_wait_mean_ms: (queue / n).as_millis(),
            service_time_mean_ms: (service / n).as_millis(),
            faults: FaultReport::of(outcome),
            gray: GrayReport::of(outcome),
            energy: EnergyReport::of(outcome, good as f64 / horizon),
            scaling: outcome.scaling.as_ref().map(|s| ScalingReport::of(outcome, s)),
            workers: outcome
                .workers
                .iter()
                .map(|w| WorkerReport {
                    label: w.label.clone(),
                    batches: w.batches,
                    images: w.images,
                    mean_batch: w.images as f64 / w.batches.max(1) as f64,
                    utilization: w.busy.as_secs() / horizon,
                    failures: w.failures,
                })
                .collect(),
        }
    }
}
