//! The serving loop: admission control, deadline-aware dynamic batching,
//! heterogeneous dispatch, and fault-aware failover — all on the `desim`
//! virtual clock.
//!
//! The simulation is event-driven but needs no explicit event queue:
//! arrivals are known up front (open loop), and every worker
//! self-serializes through its own timeline, so at any instant the only
//! two candidate events are *the next arrival* and *the earliest batch
//! dispatch the policy can plan* for the current queue. The loop always
//! executes the earlier of the two (arrivals win ties, so a request
//! landing exactly at a dispatch instant still joins the batch).
//!
//! A batch closes when the queue holds `max_batch` requests **or** the
//! oldest queued request has waited `max_wait`, whichever comes first —
//! and is handed to a worker no earlier than the policy allows, so under
//! overload the bounded queue fills and the admission controller sheds.
//!
//! ## Fault tolerance
//!
//! Dispatch goes through the fallible [`ServiceHook::try_serve_obs`], so
//! fault-injection wrappers (`ncsw-faults`) can make any worker fail. A
//! failed batch is detected at the error instant (capped by the
//! per-batch [`RobustConfig::dispatch_timeout`]), its members are
//! re-enqueued *at the queue head* — preserving arrival order and their
//! SLO deadlines — with a seeded exponential-backoff-plus-jitter floor
//! on their next dispatch, and bounded by
//! [`RobustConfig::max_attempts`]; exhausted requests are shed with
//! [`ShedCause::RetriesExhausted`], so every admitted request either
//! completes exactly once or is shed with a recorded cause.
//!
//! A per-worker health tracker runs a closed/open/half-open circuit
//! breaker: consecutive failures (fewer under queue pressure — the same
//! queue-depth signal the `ncsw-obs` sampler exports) open the circuit,
//! routing avoids open workers, and after a cooldown the next planned
//! dispatch becomes the half-open probe. While circuits are open the
//! admission controller *degrades gracefully*: the effective queue
//! capacity shrinks with the surviving fraction of fleet capacity
//! ([`crate::fleet::live_capacity_rps`]), and the batcher's fill target
//! adapts to the survivors' preferred batch.

use crate::fleet::{live_capacity_rps, live_preferred_batch, worker_rps};
use crate::workload::ArrivalProcess;
use desim::{Duration, SimTime};
use ncsw::service::{FailureKind, ServeError, ServiceHook};
use ncsw_ctrl::{PrimeContext, ScaleDecision, ScaleSignals, ScalingPolicy};
use ncsw_obs::{
    prof, BatchObs, CounterId, Ctx, EnergyMeter, Event, EventLog, FlightConfig, FlightRecorder,
    GaugeId, HistogramId, Lane, NullRecorder, Phase, ProfiledRecorder, Recorder, Registry,
    SamplePolicy, SampleStats, SamplingRecorder, Tee, TimeSeries, TimeSeriesBuilder,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// What to do with an arrival when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Refuse the arriving request (classic tail drop).
    Reject,
    /// Admit the newcomer and evict the oldest queued request — the one
    /// that has burned most of its latency budget already.
    DropOldest,
    /// Reject on a full queue, and *additionally* reject any arrival
    /// that cannot meet the SLO given the current backlog and surviving
    /// fleet capacity — don't admit work that is already hopeless.
    DeadlineAware,
}

impl ShedPolicy {
    pub fn parse(s: &str) -> Option<ShedPolicy> {
        match s {
            "reject" => Some(ShedPolicy::Reject),
            "drop-oldest" => Some(ShedPolicy::DropOldest),
            "deadline-aware" => Some(ShedPolicy::DeadlineAware),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::Reject => "reject",
            ShedPolicy::DropOldest => "drop-oldest",
            ShedPolicy::DeadlineAware => "deadline-aware",
        }
    }
}

/// How formed batches are routed across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Cycle through the workers regardless of their backlog.
    RoundRobin,
    /// Route to the worker whose outstanding work drains earliest.
    LeastOutstanding,
    /// Route to the worker with the earliest *estimated completion*
    /// (backlog + calibrated cost model) — fast devices absorb bursts
    /// even while briefly busy, slow ones serve steady load.
    CostAware,
}

impl DispatchPolicy {
    pub fn parse(s: &str) -> Option<DispatchPolicy> {
        match s {
            "round-robin" => Some(DispatchPolicy::RoundRobin),
            "least-outstanding" => Some(DispatchPolicy::LeastOutstanding),
            "cost-aware" => Some(DispatchPolicy::CostAware),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastOutstanding => "least-outstanding",
            DispatchPolicy::CostAware => "cost-aware",
        }
    }
}

/// Retry, timeout and circuit-breaker knobs of the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustConfig {
    /// A batch whose results have not landed this long after dispatch
    /// is declared failed (bounds failure detection; generous enough
    /// that healthy service never trips it).
    pub dispatch_timeout: Duration,
    /// Maximum dispatch attempts per request before it is shed with
    /// [`ShedCause::RetriesExhausted`].
    pub max_attempts: u32,
    /// Exponential backoff floor before a failed batch's members may be
    /// re-dispatched: `base * factor^(attempt-1)`, capped at `max`.
    pub backoff_base: Duration,
    pub backoff_factor: f64,
    pub backoff_max: Duration,
    /// Uniform jitter fraction added on top of the backoff (seeded via
    /// `vpu_num::rng`, drawn only when a failure actually happens).
    pub jitter_frac: f64,
    /// Consecutive failures that open a worker's circuit. Under queue
    /// pressure (depth at half the configured capacity — the same
    /// queue-depth signal the `ncsw-obs` sampler exports) the breaker
    /// trips one failure earlier.
    pub breaker_threshold: u32,
    /// Cooldown before an open circuit admits a half-open probe;
    /// escalates by `breaker_backoff` on every reopen, up to
    /// `breaker_cooldown_max`.
    pub breaker_cooldown: Duration,
    pub breaker_backoff: f64,
    pub breaker_cooldown_max: Duration,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            dispatch_timeout: Duration::from_secs(5.0),
            max_attempts: 4,
            backoff_base: Duration::from_millis(4.0),
            backoff_factor: 2.0,
            backoff_max: Duration::from_millis(100.0),
            jitter_frac: 0.25,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250.0),
            breaker_backoff: 2.0,
            breaker_cooldown_max: Duration::from_secs(2.0),
        }
    }
}

/// Latency-outlier quarantine knobs — the defense against *fail-slow*
/// workers, which complete every batch (no error, so the circuit
/// breakers never trip) while silently inflating its span. A worker
/// whose observed service span exceeds `outlier_factor` × its
/// calibrated estimate for `threshold` consecutive batches is
/// quarantined: taken out of the dispatch pool for `window`, then
/// re-admitted *on probation* — the next outlier re-quarantines it
/// immediately with the window escalated by `backoff` (capped at
/// `window_max`), while a clean batch clears probation and resets the
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuarantineConfig {
    /// Span / estimate ratio above which a batch counts as an outlier.
    pub outlier_factor: f64,
    /// Consecutive outliers that quarantine a (non-probation) worker.
    pub threshold: u32,
    /// Initial quarantine window.
    pub window: Duration,
    /// Window escalation factor on every probation failure.
    pub backoff: f64,
    pub window_max: Duration,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            outlier_factor: 2.5,
            threshold: 3,
            window: Duration::from_millis(500.0),
            backoff: 2.0,
            window_max: Duration::from_secs(4.0),
        }
    }
}

/// Hedged-dispatch knobs: once a batch's primary service span blows
/// past the hedge delay — the observed `quantile` of the span/estimate
/// ratio, learned online from at least `min_samples` completed batches
/// — a duplicate of the batch is speculatively dispatched to a second
/// worker. Whichever copy completes first wins; the loser's span is
/// charged to the energy ledger as *wasted* (exact pJ, reported in
/// [`GrayStats::hedge_wasted_pj`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgeConfig {
    /// Ratio quantile that sets the hedge delay (e.g. 0.95 hedges the
    /// slowest ~5% of batches).
    pub quantile: f64,
    /// Completed batches observed fleet-wide before hedging arms.
    pub min_samples: u64,
    /// Floor on the hedge delay, so near-zero estimates cannot hedge
    /// every batch.
    pub min_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig { quantile: 0.95, min_samples: 16, min_delay: Duration::from_millis(1.0) }
    }
}

/// Gray-failure defenses of the serving loop. `Default` turns every
/// defense off, and the all-off path is bit-identical to a pre-gray
/// run — the defenses only read the wire metadata `ncsw-faults`
/// attaches to a `BatchRun` and the spans the loop already observes;
/// they never perturb RNG streams or healthy-path timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GrayConfig {
    /// Verify results on completion (per-request sequence tags plus
    /// result checksums): corrupted or dropped completions are rejected
    /// and retried instead of surfacing to the client. Duplicate
    /// completions are deduplicated by sequence tag either way.
    pub verify: bool,
    /// Fail-slow quarantine (`None` = off).
    pub quarantine: Option<QuarantineConfig>,
    /// Hedged dispatch (`None` = off).
    pub hedge: Option<HedgeConfig>,
}

impl GrayConfig {
    /// Every defense on with default tuning — what `repro chaos` and
    /// the E22 "defended" arm run.
    pub fn defended() -> GrayConfig {
        GrayConfig {
            verify: true,
            quarantine: Some(QuarantineConfig::default()),
            hedge: Some(HedgeConfig::default()),
        }
    }
}

/// Serving-loop parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Bounded request-queue capacity (admission control).
    pub queue_capacity: usize,
    pub shed: ShedPolicy,
    /// A batch closes at this many requests...
    pub max_batch: usize,
    /// ...or once the oldest member has waited this long.
    pub max_wait: Duration,
    pub policy: DispatchPolicy,
    /// Latency objective used for goodput accounting (p99 target).
    pub slo: Duration,
    /// Seed of the arrival streams (and of the backoff jitter).
    pub seed: u64,
    /// Retry / timeout / circuit-breaker behavior.
    pub robust: RobustConfig,
    /// Gray-failure defenses (verify-on-complete, fail-slow quarantine,
    /// hedged dispatch). `Default` turns everything off.
    pub gray: GrayConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            shed: ShedPolicy::Reject,
            max_batch: 8,
            max_wait: Duration::from_millis(40.0),
            policy: DispatchPolicy::LeastOutstanding,
            slo: Duration::from_millis(500.0),
            seed: vpu_num::rng::DEFAULT_SEED,
            robust: RobustConfig::default(),
            gray: GrayConfig::default(),
        }
    }
}

/// Fate of one generated request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    pub id: u64,
    pub arrival: SimTime,
    /// Instant the batch containing this request closed and was routed
    /// (the *successful* dispatch, after any failovers).
    pub dispatched: SimTime,
    /// Instant the device began serving the batch.
    pub service_start: SimTime,
    /// Instant this request's result returned to the host.
    pub completed: SimTime,
    pub worker: usize,
    pub batch: usize,
    /// Dispatch attempts it took (1 = served on the first try).
    pub attempts: u32,
}

impl RequestRecord {
    /// Deadline-aware batching delay: arrival -> batch close.
    pub fn formation_wait(&self) -> Duration {
        self.dispatched - self.arrival
    }

    /// Dispatch -> device start (worker backlog the policy accepted).
    pub fn queue_wait(&self) -> Duration {
        self.service_start - self.dispatched
    }

    pub fn service_time(&self) -> Duration {
        self.completed - self.service_start
    }

    pub fn latency(&self) -> Duration {
        self.completed - self.arrival
    }
}

/// Why the admission controller (or the failover path) shed a request.
/// Defined in `ncsw-obs` so `Shed` events carry it into exported
/// traces; re-exported here because the serving loop is what decides.
pub use ncsw_obs::ShedCause;

/// A request shed by the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedRecord {
    pub id: u64,
    pub arrival: SimTime,
    /// Instant the decision was made (eviction and retry exhaustion
    /// happen after arrival).
    pub shed_at: SimTime,
    pub cause: ShedCause,
}

impl ShedRecord {
    /// Queue time burned before the shedding decision (zero for rejects).
    pub fn wait(&self) -> Duration {
        self.shed_at - self.arrival
    }
}

/// Per-worker accounting of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerStats {
    pub label: String,
    pub batches: u64,
    pub images: u64,
    /// Virtual time the device spent busy (sum of service spans,
    /// including work wasted by timed-out batches).
    pub busy: Duration,
    /// Boot/allocation completion of the device at epoch.
    pub ready_at: SimTime,
    /// Failed dispatch attempts charged to this worker.
    pub failures: u64,
}

/// One worker outage as seen by the circuit breaker: opened at `from`,
/// closed at `until` when the breaker re-admitted traffic (`None` =
/// still open when the run ended).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageRecord {
    pub worker: usize,
    pub from: SimTime,
    pub until: Option<SimTime>,
}

impl OutageRecord {
    /// Time to recovery, measuring an unclosed outage to `end`.
    pub fn ttr(&self, end: SimTime) -> Duration {
        self.until.unwrap_or(end).max(self.from) - self.from
    }
}

/// Fault/failover accounting of one run (all zero on a healthy run).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Failed batch dispatches (worker faults plus dispatch timeouts).
    pub injected: u64,
    /// Requests re-enqueued for another attempt after a batch failure.
    pub retries: u64,
    /// Requests shed because they exhausted their attempts.
    pub exhausted: u64,
    /// Circuit-breaker outage windows, in open order.
    pub outages: Vec<OutageRecord>,
}

/// Gray-failure accounting of one run (all zero on a clean wire with
/// the defenses off — the struct exists even then so reports stay
/// structurally stable).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GrayStats {
    /// Result slots the wire corrupted, whether or not verification
    /// caught them.
    pub corrupted_wire: u64,
    /// Completions rejected by verify-on-complete (corrupt checksum or
    /// sequence-tag gap); each is followed by a retry or a shed.
    pub integrity_fails: u64,
    /// Corrupted results that reached the client (verification off) —
    /// the chaos harness asserts this stays zero when defenses are on.
    pub corrupt_surfaced: u64,
    /// Duplicate completions suppressed by exactly-once sequence-tag
    /// dedup.
    pub dups_suppressed: u64,
    /// Dropped completions detected as sequence-tag gaps (verification
    /// on; each is also counted in `integrity_fails`).
    pub drops_detected: u64,
    /// Dropped completions surfaced as batch-horizon completions
    /// (verification off).
    pub drops_surfaced: u64,
    /// Hedged dispatches issued.
    pub hedges: u64,
    /// Hedges whose duplicate finished first.
    pub hedge_wins: u64,
    /// Hedges outlived by the primary (or whose duplicate failed).
    pub hedge_cancels: u64,
    /// Exact busy-energy cost of hedging — every losing span, in pJ.
    pub hedge_wasted_pj: u64,
    /// Fail-slow quarantine entries.
    pub quarantines: u64,
    /// Probation re-entries after a quarantine window elapsed.
    pub probations: u64,
}

/// Raw outcome of one serving run (aggregate with [`crate::metrics`]).
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Fleet-ready instant the arrival clock started from.
    pub epoch: SimTime,
    pub generated: usize,
    pub completed: Vec<RequestRecord>,
    pub shed: Vec<ShedRecord>,
    pub workers: Vec<WorkerStats>,
    pub faults: FaultStats,
    /// Gray-failure accounting (wire corruption, integrity rejections,
    /// hedging, quarantine).
    pub gray: GrayStats,
    /// Integrated per-worker energy ledger. Purely passive — charging
    /// never influences timing, routing or RNG state, so a metered run
    /// is byte-identical to an unmetered one. Failed attempts are
    /// charged as *wasted* energy even though their latency is never
    /// attributed to a request.
    pub energy: EnergyMeter,
    /// Autoscaling accounting; `None` on a static-fleet run (the
    /// controller-disabled paths are bit-identical to pre-controller
    /// behavior).
    pub scaling: Option<ScalingStats>,
    /// Simulator loop events processed (arrivals, dispatches,
    /// controller ticks — every decision point of the event loop). A
    /// deterministic function of the run, so it feeds the
    /// [`ncsw_obs::Throughput`] meter without a profiler attached.
    pub sim_events: u64,
}

impl ServeOutcome {
    /// Last completion (or the epoch when nothing completed).
    pub fn end(&self) -> SimTime {
        self.completed.iter().map(|r| r.completed).max().unwrap_or(self.epoch)
    }

    /// Integration horizon for energy accounting: a timed-out batch can
    /// keep the device busy past the last completion, so the horizon is
    /// the later of [`ServeOutcome::end`] and the charged ledger's own
    /// high-water mark (idle time can never integrate negative).
    pub fn energy_horizon(&self) -> SimTime {
        SimTime::max_of(self.end(), self.energy.busy_horizon())
    }
}

struct Pending {
    id: u64,
    arrival: SimTime,
    /// Failed dispatch attempts so far (0 = never dispatched).
    attempts: u32,
    /// Backoff floor: the request may not be re-dispatched before this.
    earliest: SimTime,
}

/// Observability options for [`serve_observed`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Time-series sampling interval (virtual time).
    pub sample_every: Duration,
    /// Tail-based trace sampling policy. `None` (and the all-keep
    /// policy) capture the full event log, byte-identical to each
    /// other; a 1-in-N policy keeps anomalous request chains in full
    /// and drops most of the happy path (see
    /// [`ncsw_obs::SamplingRecorder`]).
    pub sample: Option<SamplePolicy>,
    /// Bounds of the always-on [`FlightRecorder`] incident ring.
    pub flight: FlightConfig,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            sample_every: Duration::from_millis(10.0),
            sample: None,
            flight: FlightConfig::default(),
        }
    }
}

/// Everything an observed run captured beyond the [`ServeOutcome`].
#[derive(Debug)]
pub struct ServeObservation {
    /// Structured event stream — the full log, or the sampled one when
    /// [`ObsConfig::sample`] names a dropping policy (export with
    /// [`ncsw_obs::chrome_trace`]).
    pub events: EventLog,
    /// Periodic samples of queue/worker state (export with
    /// [`TimeSeries::csv`]).
    pub series: TimeSeries,
    /// Counters, gauges and latency histograms of the run. Always
    /// full-fidelity: metrics see every request even under sampling.
    pub registry: Registry,
    /// Keep/drop ledger of the sampling recorder (`None` when
    /// [`ObsConfig::sample`] is `None`).
    pub sample: Option<SampleStats>,
    /// The always-on incident flight recorder: its ring holds the
    /// run's final trace window, and `incidents()` any snapshots taken
    /// when `CircuitOpen`/`IntegrityFail` fired mid-run. The bench
    /// layer adds burn-rate-alert snapshots post-run.
    pub flight: FlightRecorder,
}

/// Registered metric handles of one observed run.
struct Meters {
    reg: Registry,
    arrived: CounterId,
    completed: CounterId,
    rejected: CounterId,
    evicted: CounterId,
    deadline: CounterId,
    exhausted: CounterId,
    batches: CounterId,
    faults: CounterId,
    retries: CounterId,
    circuit_opens: CounterId,
    depth_peak: GaugeId,
    evicted_wait: HistogramId,
    latency: HistogramId,
    formation: HistogramId,
    queue_wait: HistogramId,
    service: HistogramId,
    peak: usize,
}

impl Meters {
    fn new() -> Meters {
        let mut reg = Registry::new();
        Meters {
            arrived: reg.counter("requests.arrived"),
            completed: reg.counter("requests.completed"),
            rejected: reg.counter("requests.shed.rejected"),
            evicted: reg.counter("requests.shed.evicted"),
            deadline: reg.counter("requests.shed.deadline"),
            exhausted: reg.counter("requests.shed.retries_exhausted"),
            batches: reg.counter("batches.dispatched"),
            faults: reg.counter("faults.injected"),
            retries: reg.counter("faults.retries"),
            circuit_opens: reg.counter("faults.circuit_opens"),
            depth_peak: reg.gauge("queue.depth.peak"),
            evicted_wait: reg.histogram("shed.evicted.wait"),
            latency: reg.histogram("latency.e2e"),
            formation: reg.histogram("latency.formation_wait"),
            queue_wait: reg.histogram("latency.queue_wait"),
            service: reg.histogram("latency.service"),
            peak: 0,
            reg,
        }
    }

    fn shed(&mut self, cause: ShedCause, wait: Duration) {
        match cause {
            ShedCause::Rejected => self.reg.inc(self.rejected),
            ShedCause::Deadline => self.reg.inc(self.deadline),
            ShedCause::RetriesExhausted => self.reg.inc(self.exhausted),
            ShedCause::Evicted => {
                self.reg.inc(self.evicted);
                self.reg.observe(self.evicted_wait, wait);
            }
        }
    }

    fn complete(&mut self, r: &RequestRecord) {
        self.reg.inc(self.completed);
        self.reg.observe(self.latency, r.latency());
        self.reg.observe(self.formation, r.formation_wait());
        self.reg.observe(self.queue_wait, r.queue_wait());
        self.reg.observe(self.service, r.service_time());
    }

    fn finish(mut self) -> Registry {
        self.reg.set(self.depth_peak, self.peak as f64);
        self.reg
    }
}

/// Drives the [`TimeSeriesBuilder`] from the serving loop's in-order
/// events while re-ordering *completions*, which land after the batch
/// dispatch that produced them, back into their true sample windows.
struct SamplerDrive {
    b: TimeSeriesBuilder,
    /// Not-yet-sampled completions as `(completion ns, latency ns)`.
    pending: BinaryHeap<Reverse<(u64, u64)>>,
}

impl SamplerDrive {
    fn advance(&mut self, now: SimTime, queue_depth: usize) {
        while let Some(&Reverse((done, lat))) = self.pending.peek() {
            if done > now.nanos() {
                break;
            }
            self.pending.pop();
            self.b.advance(SimTime(done), queue_depth);
            self.b.on_complete(Duration::from_nanos(lat));
        }
        self.b.advance(now, queue_depth);
    }

    fn complete_later(&mut self, done: SimTime, latency: Duration) {
        self.pending.push(Reverse((done.nanos(), latency.nanos())));
    }

    fn finish(mut self, end: SimTime) -> TimeSeries {
        // The queue is empty once the loop exits; only straggling
        // completions remain.
        self.advance(end, 0);
        self.b.finish(end, 0)
    }
}

/// Live observability state threaded through [`serve_core`].
struct ObsAccum {
    sampler: SamplerDrive,
    meters: Meters,
}

// ---------------------------------------------------------------------
// Autoscaling: the actuation half of the `ncsw-ctrl` closed loop
// ---------------------------------------------------------------------

/// Actuator parameters of an autoscaled run ([`serve_autoscaled`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingConfig {
    /// Controller tick interval: the policy sees fresh signals and may
    /// act this often. The first tick fires at the epoch.
    pub tick: Duration,
    /// Virtual delay between a scale-up decision and the stick being
    /// dispatchable (plug/enumerate/boot of an NCS device).
    pub provision_delay: Duration,
    /// Floor on live-plus-provisioning elastic sticks — the actuator
    /// never drains below it regardless of what the policy asks.
    pub min_live: usize,
    /// Worker indices the controller may drain and power-gate
    /// (typically [`crate::fleet::FleetSpec::elastic_workers`]).
    pub elastic: Vec<usize>,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            tick: Duration::from_millis(50.0),
            provision_delay: Duration::from_millis(200.0),
            min_live: 1,
            elastic: Vec::new(),
        }
    }
}

/// Controller-side accounting of one autoscaled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingStats {
    /// Policy that drove the run ([`ScalingPolicy::name`]).
    pub policy: String,
    pub ticks: u64,
    /// Sticks powered on (each is one `ScaleUp` span in the trace).
    pub scale_ups: u64,
    /// Sticks drained and power-gated (`Drain` + `ScaleDown` events).
    pub scale_downs: u64,
    /// Scale-ups issued while live circuits were open — replacements
    /// spun up during an `ncsw-faults` outage.
    pub replacements: u64,
    /// The elastic pool the controller was allowed to act on.
    pub elastic: Vec<usize>,
}

/// Lifecycle of one elastic stick as the actuator tracks it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ScaleState {
    Live,
    /// Powered on at the decision tick, dispatchable from `ready_at`.
    Provisioning {
        ready_at: SimTime,
    },
    /// Drained; power-gated from `since` (the instant its last
    /// in-flight batch finished).
    Gated {
        since: SimTime,
    },
}

/// One controller-tick window of outcome counts, the raw material of
/// the burn-rate and shed-rate signals.
#[derive(Debug, Clone, Copy, Default)]
struct TickBucket {
    arrived: u64,
    completed: u64,
    /// Completions over the SLO.
    missed: u64,
    shed: u64,
}

/// Burn-window lengths in ticks, mirroring `ncsw-analyze`'s two-window
/// alert defaults (fast 3 samples, slow 12).
const FAST_WINDOW: usize = 3;
const SLOW_WINDOW: usize = 12;

/// Outcome kinds binned into [`TickBucket`]s by instant.
const OUTCOME_GOOD: u8 = 0;
const OUTCOME_MISS: u8 = 1;
const OUTCOME_SHED: u8 = 2;

/// Controller state threaded through [`serve_core`] on autoscaled runs.
/// `None` everywhere else — the static-fleet paths never construct one,
/// which is what keeps them bit-identical to pre-controller behavior.
struct CtrlState<'a> {
    cfg: ScalingConfig,
    policy: &'a mut dyn ScalingPolicy,
    /// Per-worker lifecycle; non-elastic workers stay `Live` forever.
    state: Vec<ScaleState>,
    next_tick: SimTime,
    /// Nameplate capacity of one elastic stick / of the always-on rest.
    stick_rps: f64,
    base_rps: f64,
    /// Completions and sheds not yet binned, as `(instant ns, kind)` —
    /// a min-heap because completions land after the dispatch that
    /// produced them, possibly several ticks out.
    outcomes: BinaryHeap<Reverse<(u64, u8)>>,
    /// The bucket accumulating the current tick window.
    cur: TickBucket,
    /// Closed per-tick buckets, most recent last (capped at the slow
    /// burn window).
    hist: VecDeque<TickBucket>,
    stats: ScalingStats,
}

impl<'a> CtrlState<'a> {
    fn new(
        scaling: &ScalingConfig,
        workers: &[Box<dyn ServiceHook>],
        policy: &'a mut dyn ScalingPolicy,
    ) -> CtrlState<'a> {
        assert!(scaling.tick > Duration::ZERO, "controller tick must be positive");
        assert!(scaling.elastic.iter().all(|&w| w < workers.len()), "elastic index out of range");
        let mut cfg = scaling.clone();
        cfg.elastic.sort_unstable();
        cfg.elastic.dedup();
        // If the whole fleet is elastic, at least one stick must stay
        // up or the dispatcher would have nowhere to route.
        if cfg.elastic.len() == workers.len() {
            cfg.min_live = cfg.min_live.max(1);
        }
        let stick_rps = cfg.elastic.first().map_or(0.0, |&w| worker_rps(workers[w].as_ref()));
        let base_rps = (0..workers.len())
            .filter(|i| !cfg.elastic.contains(i))
            .map(|i| worker_rps(workers[i].as_ref()))
            .sum();
        let policy_name = policy.name().to_string();
        let elastic = cfg.elastic.clone();
        CtrlState {
            cfg,
            policy,
            state: vec![ScaleState::Live; workers.len()],
            next_tick: SimTime::ZERO,
            stick_rps,
            base_rps,
            outcomes: BinaryHeap::new(),
            cur: TickBucket::default(),
            hist: VecDeque::with_capacity(SLOW_WINDOW),
            stats: ScalingStats {
                policy: policy_name,
                ticks: 0,
                scale_ups: 0,
                scale_downs: 0,
                replacements: 0,
                elastic,
            },
        }
    }

    /// Hand the policy its allowed foresight and schedule the first
    /// tick at the epoch (so the oracle can gate from the very start).
    fn prime(&mut self, arrivals: &[SimTime], epoch: SimTime) {
        self.next_tick = epoch;
        let ctx = PrimeContext {
            epoch,
            tick: self.cfg.tick,
            provision_delay: self.cfg.provision_delay,
            stick_rps: self.stick_rps,
            base_rps: self.base_rps,
            total_sticks: self.cfg.elastic.len(),
            min_live: self.cfg.min_live,
        };
        self.policy.prime(arrivals, &ctx);
    }

    fn outcome(&mut self, at: SimTime, kind: u8) {
        self.outcomes.push(Reverse((at.nanos(), kind)));
    }

    /// Sum a field over the trailing `window` closed buckets.
    fn window_sum(&self, window: usize, f: impl Fn(&TickBucket) -> u64) -> (u64, usize) {
        let k = self.hist.len().min(window);
        (self.hist.iter().rev().take(k).map(f).sum(), k)
    }

    fn signals(&self, tk: SimTime, queue_depth: usize, fo: &FailoverState) -> ScaleSignals {
        let (mut live, mut provisioning, mut gated, mut open_circuits) = (0, 0, 0, 0);
        let mut quarantined = 0;
        for &w in &self.cfg.elastic {
            match self.state[w] {
                ScaleState::Live => {
                    live += 1;
                    if fo.health[w].is_open() {
                        open_circuits += 1;
                    }
                    if fo.quarantined[w].is_some() {
                        quarantined += 1;
                    }
                }
                ScaleState::Provisioning { .. } => provisioning += 1,
                ScaleState::Gated { .. } => gated += 1,
            }
        }
        let (fast_miss, fast_k) = self.window_sum(FAST_WINDOW, |b| b.missed);
        let (fast_done, _) = self.window_sum(FAST_WINDOW, |b| b.completed);
        let (slow_miss, _) = self.window_sum(SLOW_WINDOW, |b| b.missed);
        let (slow_done, _) = self.window_sum(SLOW_WINDOW, |b| b.completed);
        let (shed, _) = self.window_sum(FAST_WINDOW, |b| b.shed);
        let (arrived, _) = self.window_sum(FAST_WINDOW, |b| b.arrived);
        let frac = |num: u64, den: u64| if den > 0 { num as f64 / den as f64 } else { 0.0 };
        let window_s = self.cfg.tick.as_secs() * fast_k.max(1) as f64;
        ScaleSignals {
            now: tk,
            queue_depth,
            queue_capacity: fo.eff_capacity,
            fast_burn: frac(fast_miss, fast_done),
            slow_burn: frac(slow_miss, slow_done),
            shed_rate: frac(shed, arrived),
            arrival_rps: arrived as f64 / window_s,
            live,
            provisioning,
            gated,
            open_circuits,
            quarantined,
            stick_rps: self.stick_rps,
            base_rps: self.base_rps,
        }
    }
}

/// Process one controller tick: flip provisioned sticks live, close the
/// outcome bucket, ask the policy, and actuate its decision. Dispatch
/// is synchronous, so at drain time every worker's `busy_until` is
/// final — the power-gate instant is computable eagerly.
#[allow(clippy::too_many_arguments)]
fn ctrl_tick(
    ctrl: &mut CtrlState,
    workers: &mut [Box<dyn ServiceHook>],
    cfg: &ServeConfig,
    fo: &mut FailoverState,
    meter: &mut EnergyMeter,
    queue_depth: usize,
    rec: &mut dyn Recorder,
    obs: &mut Option<&mut ObsAccum>,
) {
    let tk = ctrl.next_tick;
    ctrl.next_tick = tk + ctrl.cfg.tick;
    ctrl.stats.ticks += 1;

    // Provisioning sticks whose delay elapsed become dispatchable.
    let mut changed = false;
    for &w in &ctrl.cfg.elastic {
        if let ScaleState::Provisioning { ready_at } = ctrl.state[w] {
            if ready_at <= tk {
                ctrl.state[w] = ScaleState::Live;
                fo.not_ready[w] = None;
                changed = true;
            }
        }
    }
    if changed {
        fo.recompute_degradation(workers, cfg);
    }

    // Close the tick's outcome bucket.
    while let Some(&Reverse((at, kind))) = ctrl.outcomes.peek() {
        if at > tk.nanos() {
            break;
        }
        ctrl.outcomes.pop();
        match kind {
            OUTCOME_SHED => ctrl.cur.shed += 1,
            OUTCOME_MISS => {
                ctrl.cur.completed += 1;
                ctrl.cur.missed += 1;
            }
            _ => ctrl.cur.completed += 1,
        }
    }
    ctrl.hist.push_back(ctrl.cur);
    if ctrl.hist.len() > SLOW_WINDOW {
        ctrl.hist.pop_front();
    }
    ctrl.cur = TickBucket::default();

    let signals = ctrl.signals(tk, queue_depth, fo);
    let wctx = |w: usize| Ctx { request_id: None, batch_id: None, worker: Some(w as u32) };
    match ctrl.policy.decide(&signals) {
        ScaleDecision::Hold => {}
        ScaleDecision::Down(k) => {
            // Drain the highest-index live sticks, never below the
            // floor. Dispatches stop now; the gate lands when the
            // stick's (already final) backlog does.
            let committed = signals.live + signals.provisioning;
            let allowed = committed.saturating_sub(ctrl.cfg.min_live).min(k);
            let victims: Vec<usize> = ctrl
                .cfg
                .elastic
                .iter()
                .rev()
                .copied()
                .filter(|&w| ctrl.state[w] == ScaleState::Live)
                .take(allowed)
                .collect();
            for &w in &victims {
                let gate_at = SimTime::max_of(tk, workers[w].busy_until());
                ctrl.state[w] = ScaleState::Gated { since: gate_at };
                fo.gated[w] = true;
                meter.power_off(w as u32, gate_at);
                ctrl.stats.scale_downs += 1;
                if rec.enabled() {
                    rec.record(Event::instant(Phase::Drain, Lane::Worker(w as u32), tk, wctx(w)));
                    rec.record(Event::instant(
                        Phase::ScaleDown,
                        Lane::Worker(w as u32),
                        gate_at,
                        wctx(w),
                    ));
                }
                if let Some(o) = obs.as_deref_mut() {
                    o.sampler.b.power_event(w, gate_at, false);
                }
            }
            if !victims.is_empty() {
                if let Some(o) = obs.as_deref_mut() {
                    o.sampler.b.scale_event(tk, -(victims.len() as i64), 1);
                }
                fo.recompute_degradation(workers, cfg);
            }
        }
        ScaleDecision::Up(k) => {
            // Power the lowest-index gated sticks back on. Sticks still
            // draining (gate instant ahead of this tick) are skipped —
            // re-upping one inside its own drain window would be flap,
            // and skipping keeps every power window strictly ordered.
            let picks: Vec<(usize, SimTime)> = ctrl
                .cfg
                .elastic
                .iter()
                .copied()
                .filter_map(|w| match ctrl.state[w] {
                    ScaleState::Gated { since } if since < tk => Some((w, since)),
                    _ => None,
                })
                .take(k)
                .collect();
            for &(w, _) in &picks {
                let ready_at = tk + ctrl.cfg.provision_delay;
                ctrl.state[w] = ScaleState::Provisioning { ready_at };
                fo.gated[w] = false;
                fo.not_ready[w] = Some(ready_at);
                fo.ready_floor[w] = ready_at;
                // Provisioning draws idle power from the decision on.
                meter.power_on(w as u32, tk);
                ctrl.stats.scale_ups += 1;
                if signals.open_circuits > 0 {
                    ctrl.stats.replacements += 1;
                }
                if rec.enabled() {
                    rec.record(Event::span(
                        Phase::ScaleUp,
                        Lane::Worker(w as u32),
                        tk,
                        ready_at,
                        wctx(w),
                    ));
                }
                if let Some(o) = obs.as_deref_mut() {
                    o.sampler.b.power_event(w, tk, true);
                    o.sampler.b.scale_event(ready_at, 1, 0);
                }
            }
            if !picks.is_empty() {
                if let Some(o) = obs.as_deref_mut() {
                    o.sampler.b.scale_event(tk, 0, 1);
                }
                fo.recompute_degradation(workers, cfg);
            }
        }
    }
}

/// Circuit-breaker state of one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Circuit {
    Closed,
    Open {
        until: SimTime,
    },
    /// Cooldown elapsed and a probe batch is in flight; the probe's
    /// outcome closes or reopens the circuit.
    HalfOpen,
}

/// Per-worker health as the dispatcher sees it.
struct Health {
    circuit: Circuit,
    consecutive_failures: u32,
    cooldown: Duration,
}

impl Health {
    fn new(robust: &RobustConfig) -> Health {
        Health {
            circuit: Circuit::Closed,
            consecutive_failures: 0,
            cooldown: robust.breaker_cooldown,
        }
    }

    fn is_open(&self) -> bool {
        matches!(self.circuit, Circuit::Open { .. })
    }

    /// Earliest instant this worker may receive a dispatch (half-open
    /// probes included); `None` while closed/half-open.
    fn open_until(&self) -> Option<SimTime> {
        match self.circuit {
            Circuit::Open { until } => Some(until),
            _ => None,
        }
    }
}

/// Online histogram of observed service-span / estimate ratios, in
/// 1/256 fixed point (integer-only, so the hedge delay it yields is
/// deterministic and byte-stable across platforms). Normalizing by the
/// calibrated estimate folds batch-size and device-speed differences
/// into one distribution — exactly the quantity a fail-slow stretch
/// inflates.
struct RatioHist {
    /// Linear buckets of width 1/256, saturating at a 16× ratio.
    buckets: Vec<u32>,
    n: u64,
}

const RATIO_FP: u64 = 256;
const RATIO_BUCKETS: usize = 4096;

impl RatioHist {
    fn new() -> RatioHist {
        RatioHist { buckets: vec![0; RATIO_BUCKETS], n: 0 }
    }

    fn record(&mut self, span_ns: u64, est_ns: u64) {
        if est_ns == 0 {
            return;
        }
        let fp = (span_ns.saturating_mul(RATIO_FP) / est_ns).min(RATIO_BUCKETS as u64 - 1);
        self.buckets[fp as usize] += 1;
        self.n += 1;
    }

    /// Upper edge of the `q`-quantile bucket as a ×256 fixed-point
    /// ratio; `None` until `min_samples` ratios were recorded.
    fn quantile_fp(&self, q: f64, min_samples: u64) -> Option<u64> {
        if self.n < min_samples.max(1) {
            return None;
        }
        let target = (((self.n as f64) * q).ceil() as u64).clamp(1, self.n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c as u64;
            if seen >= target {
                return Some(i as u64 + 1);
            }
        }
        Some(RATIO_BUCKETS as u64)
    }
}

/// Mutable failover state of one run, kept out of `serve_core`'s way.
struct FailoverState {
    health: Vec<Health>,
    /// Power-gated by the autoscaler: never routable until a `ScaleUp`
    /// clears the flag. All-false on static runs.
    gated: Vec<bool>,
    /// Provisioning floor: dispatches may not land before this instant
    /// (autoscaled runs only; all-`None` on static runs).
    not_ready: Vec<Option<SimTime>>,
    /// Monotone routing floor left behind by every `ScaleUp`: replanning
    /// may move a dispatch instant into the past (a queue head whose
    /// deadline already lapsed), and `not_ready` is cleared once the
    /// controller counts the stick live again — this watermark keeps any
    /// such dispatch from being stamped before the stick finished
    /// provisioning. All-zero on static runs.
    ready_floor: Vec<SimTime>,
    /// Nameplate fleet capacity, measured once at start.
    nameplate_rps: f64,
    /// Live capacity across non-open workers (== nameplate while all
    /// circuits are closed).
    live_rps: f64,
    /// Queue capacity after graceful degradation.
    eff_capacity: usize,
    /// Batch fill target after degradation.
    fill_limit: usize,
    stats: FaultStats,
    /// Fail-slow quarantine: the instant each worker's window ends
    /// (`None` = not quarantined). A quarantined worker is blocked like
    /// an open circuit; once the window elapses the next planned
    /// dispatch to it becomes the probation probe.
    quarantined: Vec<Option<SimTime>>,
    probation: Vec<bool>,
    /// Consecutive latency-outlier batches per worker.
    outlier_run: Vec<u32>,
    /// Next quarantine window per worker (escalates on probation
    /// failures, resets on a clean probe).
    quar_window: Vec<Duration>,
    /// Span/estimate ratios feeding the hedge delay (populated only
    /// when a gray defense is on). Fleet-wide on purpose: normalizing
    /// by each worker's own estimate folds out device speed (healthy
    /// ratios sit near 1.0 for every device class), and pooling lets a
    /// slow minority worker — which may serve only a handful of batches
    /// all run — inherit an armed hedge delay from the rest of the
    /// fleet instead of never reaching `min_samples` on its own.
    hist: RatioHist,
    gray: GrayStats,
}

impl FailoverState {
    fn new(workers: &[Box<dyn ServiceHook>], cfg: &ServeConfig) -> FailoverState {
        let nameplate_rps: f64 = workers.iter().map(|w| worker_rps(w.as_ref())).sum();
        let base_window = cfg.gray.quarantine.map_or(Duration::ZERO, |q| q.window);
        FailoverState {
            health: workers.iter().map(|_| Health::new(&cfg.robust)).collect(),
            gated: vec![false; workers.len()],
            not_ready: vec![None; workers.len()],
            ready_floor: vec![SimTime::ZERO; workers.len()],
            nameplate_rps,
            live_rps: nameplate_rps,
            eff_capacity: cfg.queue_capacity,
            fill_limit: cfg.max_batch,
            stats: FaultStats::default(),
            quarantined: vec![None; workers.len()],
            probation: vec![false; workers.len()],
            outlier_run: vec![0; workers.len()],
            quar_window: vec![base_window; workers.len()],
            hist: RatioHist::new(),
            gray: GrayStats::default(),
        }
    }

    /// Worker `i` is out of the dispatch pool right now: circuit open,
    /// power-gated, still provisioning, or quarantined as fail-slow.
    fn blocked(&self, i: usize) -> bool {
        self.health[i].is_open()
            || self.gated[i]
            || self.not_ready[i].is_some()
            || self.quarantined[i].is_some()
    }

    /// Earliest instant worker `i` may receive a dispatch (`None` = no
    /// floor): breaker cooldown, provisioning delay and quarantine
    /// window all gate it.
    fn floor_of(&self, i: usize) -> Option<SimTime> {
        match (
            self.health[i].open_until(),
            self.not_ready[i],
            self.quarantined[i],
            self.ready_floor[i],
        ) {
            (None, None, None, SimTime::ZERO) => None,
            (a, b, q, f) => Some(SimTime::max_of(
                SimTime::max_of(
                    SimTime::max_of(a.unwrap_or(SimTime::ZERO), b.unwrap_or(SimTime::ZERO)),
                    q.unwrap_or(SimTime::ZERO),
                ),
                f,
            )),
        }
    }

    /// Worker `i` may be handed a batch at `at` (gates never clear on
    /// their own; floors do once elapsed).
    fn routable_at(&self, i: usize, at: SimTime) -> bool {
        !self.gated[i] && self.floor_of(i).is_none_or(|until| until <= at)
    }

    fn any_blocked(&self) -> bool {
        (0..self.health.len()).any(|i| self.blocked(i))
    }

    /// Recompute surviving capacity and the degraded admission/batching
    /// limits after a circuit or scaling state change. With every
    /// circuit closed and no sticks gated this restores the configured
    /// limits exactly.
    fn recompute_degradation(&mut self, workers: &[Box<dyn ServiceHook>], cfg: &ServeConfig) {
        if !self.any_blocked() {
            self.live_rps = self.nameplate_rps;
            self.eff_capacity = cfg.queue_capacity;
            self.fill_limit = cfg.max_batch;
            return;
        }
        let dead: Vec<bool> = (0..workers.len()).map(|i| self.blocked(i)).collect();
        self.live_rps = live_capacity_rps(workers, &dead);
        let frac = if self.nameplate_rps > 0.0 { self.live_rps / self.nameplate_rps } else { 0.0 };
        self.eff_capacity = ((cfg.queue_capacity as f64 * frac).floor() as usize).max(1);
        self.fill_limit = cfg.max_batch.min(live_preferred_batch(workers, &dead)).max(1);
    }

    /// Estimated completion instant of a fresh arrival at `at`, given
    /// the backlog ahead of it and the fastest surviving worker.
    fn deadline_estimate(
        &self,
        at: SimTime,
        backlog: usize,
        workers: &[Box<dyn ServiceHook>],
    ) -> Option<SimTime> {
        if self.live_rps <= 0.0 {
            return None; // no surviving capacity: hopeless
        }
        let queue_wait = Duration::from_secs(backlog as f64 / self.live_rps);
        let service = (0..workers.len())
            .filter(|&i| !self.blocked(i))
            .map(|i| workers[i].estimate(1))
            .min()?;
        Some(at + queue_wait + service)
    }
}

/// Dispatch plan: worker index plus the instant the batch is handed
/// over. Pure — the round-robin cursor only advances when a plan is
/// executed. Open-circuit workers are skipped unless their cooldown has
/// elapsed by `ready` (making them probe candidates); provisioning
/// sticks likewise become routable once their `not_ready` floor passes.
/// Power-gated sticks are never candidates — only a controller
/// `ScaleUp` brings them back. When *every* worker is blocked the plan
/// waits for the earliest floor among the non-gated ones.
fn choose_worker(
    policy: DispatchPolicy,
    ready: SimTime,
    batch: usize,
    workers: &[Box<dyn ServiceHook>],
    rr_cursor: usize,
    fo: &FailoverState,
) -> (usize, SimTime) {
    // Breaker cooldown, provisioning delay and quarantine windows all
    // floor a worker's next dispatch ([`FailoverState::floor_of`]).
    let routable = |i: usize| -> bool { fo.routable_at(i, ready) };
    if !(0..workers.len()).any(&routable) {
        // Everyone is blocked: wait for the earliest floor and probe.
        let w = (0..workers.len())
            .filter(|&i| !fo.gated[i])
            .min_by_key(|&i| (fo.floor_of(i).expect("blocked worker has a floor"), i))
            .expect("min_live keeps at least one worker un-gated");
        let until = fo.floor_of(w).expect("blocked");
        return (w, SimTime::max_of(SimTime::max_of(ready, until), workers[w].busy_until()));
    }
    match policy {
        DispatchPolicy::RoundRobin => {
            let w = (0..workers.len())
                .map(|k| (rr_cursor + k) % workers.len())
                .find(|&i| routable(i))
                .expect("some worker is routable");
            (w, SimTime::max_of(ready, workers[w].busy_until()))
        }
        DispatchPolicy::LeastOutstanding => {
            let w = (0..workers.len())
                .filter(|&i| routable(i))
                .min_by_key(|&i| (workers[i].busy_until(), i))
                .expect("some worker is routable");
            (w, SimTime::max_of(ready, workers[w].busy_until()))
        }
        DispatchPolicy::CostAware => {
            let w = (0..workers.len())
                .filter(|&i| routable(i))
                .min_by_key(|&i| {
                    let b = clamp_batch(batch, workers[i].as_ref());
                    let start = SimTime::max_of(ready, workers[i].busy_until());
                    (start + workers[i].estimate(b), i)
                })
                .expect("some worker is routable");
            (w, SimTime::max_of(ready, workers[w].busy_until()))
        }
    }
}

fn clamp_batch(batch: usize, worker: &dyn ServiceHook) -> usize {
    let cap = worker.max_batch().unwrap_or(usize::MAX).min(worker.preferred_batch());
    batch.min(cap).max(1)
}

/// `t + d` without overflow (the dispatch-timeout horizon).
fn saturating_add(t: SimTime, d: Duration) -> SimTime {
    SimTime(t.nanos().saturating_add(d.nanos()))
}

/// Run the serving loop: `n` open-loop arrivals from `process` against
/// `workers`, under `cfg`. Arrivals start at the fleet-ready epoch (the
/// latest worker boot instant), so cold-start time is not billed to the
/// first requests.
pub fn serve(
    workers: &mut [Box<dyn ServiceHook>],
    cfg: &ServeConfig,
    process: &ArrivalProcess,
    n: usize,
) -> ServeOutcome {
    let mut null = NullRecorder;
    serve_core(workers, cfg, process, n, &mut null, None, None)
}

/// [`serve`] with a closed-loop autoscaler: every `scaling.tick` of
/// virtual time the `policy` sees a [`ScaleSignals`] snapshot and may
/// drain (power-gate) or re-provision the elastic sticks in
/// `scaling.elastic`. A policy that always holds yields the exact
/// static-fleet outcome — actuation, not observation, is the only way
/// the controller touches the run.
pub fn serve_autoscaled(
    workers: &mut [Box<dyn ServiceHook>],
    cfg: &ServeConfig,
    process: &ArrivalProcess,
    n: usize,
    scaling: &ScalingConfig,
    policy: &mut dyn ScalingPolicy,
) -> ServeOutcome {
    let mut null = NullRecorder;
    let mut ctrl = CtrlState::new(scaling, workers, policy);
    serve_core(workers, cfg, process, n, &mut null, None, Some(&mut ctrl))
}

/// [`serve`] with observability: identical outcome (the recorder never
/// influences timing or RNG state), plus the captured event stream,
/// sampled time series and metric registry.
pub fn serve_observed(
    workers: &mut [Box<dyn ServiceHook>],
    cfg: &ServeConfig,
    process: &ArrivalProcess,
    n: usize,
    ocfg: &ObsConfig,
) -> (ServeOutcome, ServeObservation) {
    observed_core(workers, cfg, process, n, ocfg, None)
}

/// [`serve_autoscaled`] with observability. The exported time series
/// carries the `live_sticks` / `scale_events` columns (static runs omit
/// them, byte-for-byte), and the trace gains `Drain` / `ScaleDown` /
/// `ScaleUp` events plus power lanes that go dark while a stick is
/// gated.
pub fn serve_autoscaled_observed(
    workers: &mut [Box<dyn ServiceHook>],
    cfg: &ServeConfig,
    process: &ArrivalProcess,
    n: usize,
    scaling: &ScalingConfig,
    policy: &mut dyn ScalingPolicy,
    ocfg: &ObsConfig,
) -> (ServeOutcome, ServeObservation) {
    let mut ctrl = CtrlState::new(scaling, workers, policy);
    observed_core(workers, cfg, process, n, ocfg, Some(&mut ctrl))
}

fn observed_core(
    workers: &mut [Box<dyn ServiceHook>],
    cfg: &ServeConfig,
    process: &ArrivalProcess,
    n: usize,
    ocfg: &ObsConfig,
    ctrl: Option<&mut CtrlState>,
) -> (ServeOutcome, ServeObservation) {
    assert!(!workers.is_empty(), "need at least one worker");
    let epoch = workers.iter().map(|w| w.busy_until()).max().unwrap();
    let labels = workers.iter().map(|w| w.label()).collect();
    let mut builder = TimeSeriesBuilder::new(labels, epoch, ocfg.sample_every, cfg.slo);
    builder.set_power(
        workers
            .iter()
            .map(|w| {
                let p = w.energy_profile();
                (p.busy_mw, p.idle_mw)
            })
            .collect(),
    );
    if ctrl.is_some() {
        // Every worker starts live; scale events adjust from there.
        builder.enable_scaling(workers.len());
    }
    let mut obs = ObsAccum {
        sampler: SamplerDrive { b: builder, pending: BinaryHeap::new() },
        meters: Meters::new(),
    };
    // Recorder stack, all passive: the base sink is either the full
    // event log or a tail-sampling recorder, teed into the always-on
    // flight-recorder ring; with the profiler on, the stack is wrapped
    // to meter the record() path (events forwarded + wall ns). None of
    // the layers influence timing or RNG state, so the outcome is
    // identical whichever stack is active.
    let mut full_log: Option<EventLog> = None;
    let mut sampler: Option<SamplingRecorder> = None;
    let mut flight = FlightRecorder::new(ocfg.flight.clone());
    let outcome = {
        let base: &mut dyn Recorder = match &ocfg.sample {
            Some(policy) => {
                sampler.insert(SamplingRecorder::new(policy.clone(), cfg.seed, cfg.slo))
            }
            None => full_log.insert(EventLog::new()),
        };
        let mut tee = Tee { a: base, b: &mut flight };
        if prof::enabled() {
            let mut profiled = ProfiledRecorder::new(&mut tee);
            serve_core(workers, cfg, process, n, &mut profiled, Some(&mut obs), ctrl)
        } else {
            serve_core(workers, cfg, process, n, &mut tee, Some(&mut obs), ctrl)
        }
    };
    let (mut events, sample) = match sampler {
        Some(s) => {
            let (log, stats) = s.finish();
            (log, Some(stats))
        }
        None => (full_log.unwrap_or_default(), None),
    };
    let series = obs.sampler.finish(outcome.end());
    let mut registry = obs.meters.finish();
    // Power lanes + energy counters come straight off the run's ledger,
    // so the exported trace alone re-integrates the exact same
    // picojoule totals the server reports.
    let horizon = outcome.energy_horizon();
    outcome.energy.record_into(&mut events, horizon);
    outcome.energy.register(&mut registry, horizon);
    (outcome, ServeObservation { events, series, registry, sample, flight })
}

fn serve_core(
    workers: &mut [Box<dyn ServiceHook>],
    cfg: &ServeConfig,
    process: &ArrivalProcess,
    n: usize,
    rec: &mut dyn Recorder,
    mut obs: Option<&mut ObsAccum>,
    mut ctrl: Option<&mut CtrlState>,
) -> ServeOutcome {
    assert!(!workers.is_empty(), "need at least one worker");
    assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
    assert!(cfg.max_batch > 0, "max_batch must be positive");
    assert!(cfg.robust.max_attempts > 0, "max_attempts must be positive");

    let epoch = workers.iter().map(|w| w.busy_until()).max().unwrap();
    let arrivals = process.arrivals(n, epoch, cfg.seed);
    if let Some(c) = ctrl.as_deref_mut() {
        c.prime(&arrivals, epoch);
    }

    let mut stats: Vec<WorkerStats> = workers
        .iter()
        .map(|w| WorkerStats {
            label: w.label(),
            batches: 0,
            images: 0,
            busy: Duration::ZERO,
            ready_at: w.busy_until(),
            failures: 0,
        })
        .collect();

    // Passive energy ledger: one power profile per worker, charged for
    // every span a device actually burns (served batches, timed-out
    // work, fail-fast probes). Charges are clipped, so a probe span
    // overlapping the next dispatch never double-counts.
    let mut meter = EnergyMeter::new(workers.iter().map(|w| w.energy_profile()).collect(), epoch);

    let mut fo = FailoverState::new(workers, cfg);
    // Jitter stream: created eagerly (pure), drawn from only on failure,
    // so a fault-free run's RNG state is untouched.
    let mut jitter_rng = vpu_num::rng::stream(cfg.seed, "serve-backoff");

    let mut queue: VecDeque<Pending> = VecDeque::new();
    let mut completed: Vec<RequestRecord> = Vec::with_capacity(n);
    let mut shed: Vec<ShedRecord> = Vec::new();
    let mut next = 0usize; // next arrival index
    let mut rr_cursor = 0usize;
    let mut batch_seq = 0u64;

    let record_shed = |r: ShedRecord,
                       obs: &mut Option<&mut ObsAccum>,
                       ctrl: &mut Option<&mut CtrlState>,
                       shed: &mut Vec<ShedRecord>| {
        if let Some(o) = obs.as_deref_mut() {
            o.sampler.b.on_shed();
            o.meters.shed(r.cause, r.wait());
        }
        if let Some(c) = ctrl.as_deref_mut() {
            c.outcome(r.shed_at, OUTCOME_SHED);
        }
        shed.push(r);
    };

    // Host-side self-observability: every loop iteration handles
    // exactly one event (arrival, dispatch or controller tick), so the
    // iteration count *is* the sim-event count — deterministic, and the
    // numerator of the events/sec throughput meter. The prof scopes are
    // wall-clock only and cost one thread-local boolean when disabled.
    let mut sim_events = 0u64;
    let _prof_loop = prof::scope("serve.loop");

    loop {
        // Earliest instant the current queue head could be dispatched:
        // batch-full close (the arrival that filled it) or the oldest
        // member's deadline, whichever fires first — floored by the
        // head's retry backoff.
        let plan = {
            let _sp = prof::scope("serve.plan");
            if queue.is_empty() {
                None
            } else {
                let front = queue.front().unwrap();
                let deadline = front.arrival + cfg.max_wait;
                // Full-close fires at the arrival that filled the batch.
                let ready = if queue.len() >= fo.fill_limit {
                    queue[fo.fill_limit - 1].arrival.min(deadline)
                } else {
                    deadline
                };
                let ready = SimTime::max_of(ready, front.earliest);
                let hint = queue.len().min(fo.fill_limit);
                Some(choose_worker(cfg.policy, ready, hint, workers, rr_cursor, &fo))
            }
        };

        // Controller tick: fires before any arrival or dispatch at or
        // after it (ties go to the tick), then the plan is recomputed
        // against the post-tick fleet. Once the run is out of work the
        // controller stops with it.
        if let Some(c) = ctrl.as_deref_mut() {
            let next_event = match (arrivals.get(next), plan) {
                (Some(&at), Some((_, t))) => Some(at.min(t)),
                (Some(&at), None) => Some(at),
                (None, Some((_, t))) => Some(t),
                (None, None) => None,
            };
            if next_event.is_some_and(|e| c.next_tick <= e) {
                let _sc = prof::scope("serve.ctrl_tick");
                sim_events += 1;
                ctrl_tick(c, workers, cfg, &mut fo, &mut meter, queue.len(), rec, &mut obs);
                continue;
            }
        }

        match (arrivals.get(next), plan) {
            // Admit the next arrival when it precedes (or ties) the
            // planned dispatch.
            (Some(&at), p) if p.is_none() || at <= p.unwrap().1 => {
                let _sa = prof::scope("serve.arrival");
                sim_events += 1;
                let id = next as u64;
                next += 1;
                if let Some(o) = obs.as_deref_mut() {
                    o.sampler.advance(at, queue.len());
                    o.sampler.b.on_arrival();
                    o.meters.reg.inc(o.meters.arrived);
                }
                if let Some(c) = ctrl.as_deref_mut() {
                    c.cur.arrived += 1;
                }
                if rec.enabled() {
                    rec.record(Event::instant(Phase::Arrive, Lane::Server, at, Ctx::request(id)));
                }
                if queue.len() >= fo.eff_capacity {
                    match cfg.shed {
                        ShedPolicy::Reject | ShedPolicy::DeadlineAware => {
                            let r = ShedRecord {
                                id,
                                arrival: at,
                                shed_at: at,
                                cause: ShedCause::Rejected,
                            };
                            record_shed(r, &mut obs, &mut ctrl, &mut shed);
                            if rec.enabled() {
                                rec.record(
                                    Event::instant(Phase::Shed, Lane::Server, at, Ctx::request(id))
                                        .with_cause(ShedCause::Rejected),
                                );
                            }
                            continue;
                        }
                        ShedPolicy::DropOldest => {
                            let old = queue.pop_front().unwrap();
                            let r = ShedRecord {
                                id: old.id,
                                arrival: old.arrival,
                                shed_at: at,
                                cause: ShedCause::Evicted,
                            };
                            record_shed(r, &mut obs, &mut ctrl, &mut shed);
                            if rec.enabled() {
                                // Span length = queue wait burned before
                                // the eviction.
                                rec.record(
                                    Event::span(
                                        Phase::Shed,
                                        Lane::Queue,
                                        old.arrival,
                                        at,
                                        Ctx::request(old.id),
                                    )
                                    .with_cause(ShedCause::Evicted),
                                );
                            }
                        }
                    }
                }
                // Deadline-aware admission: don't accept work that is
                // already hopeless given backlog + surviving capacity.
                if cfg.shed == ShedPolicy::DeadlineAware {
                    let hopeless = match fo.deadline_estimate(at, queue.len(), workers) {
                        Some(est) => est > at + cfg.slo,
                        None => true,
                    };
                    if hopeless {
                        let r =
                            ShedRecord { id, arrival: at, shed_at: at, cause: ShedCause::Deadline };
                        record_shed(r, &mut obs, &mut ctrl, &mut shed);
                        if rec.enabled() {
                            rec.record(
                                Event::instant(Phase::Shed, Lane::Server, at, Ctx::request(id))
                                    .with_cause(ShedCause::Deadline),
                            );
                        }
                        continue;
                    }
                }
                queue.push_back(Pending { id, arrival: at, attempts: 0, earliest: at });
                if let Some(o) = obs.as_deref_mut() {
                    o.meters.peak = o.meters.peak.max(queue.len());
                }
                if rec.enabled() {
                    rec.record(Event::instant(Phase::Admit, Lane::Server, at, Ctx::request(id)));
                    rec.record(Event::instant(Phase::Enqueue, Lane::Queue, at, Ctx::request(id)));
                }
            }
            (_, Some((w, t))) => {
                let _sd = prof::scope("serve.dispatch");
                sim_events += 1;
                if cfg.policy == DispatchPolicy::RoundRobin {
                    rr_cursor += 1;
                }
                // Half-open transition: the cooldown elapsed and this
                // dispatch is the probe. The circuit counts as closed
                // from here — a failed probe reopens it.
                if fo.health[w].is_open() {
                    fo.health[w].circuit = Circuit::HalfOpen;
                    if let Some(o) = fo
                        .stats
                        .outages
                        .iter_mut()
                        .rev()
                        .find(|o| o.worker == w && o.until.is_none())
                    {
                        o.until = Some(t);
                    }
                    fo.recompute_degradation(workers, cfg);
                    if let Some(o) = obs.as_deref_mut() {
                        o.sampler.b.circuit_event(w, 0.0, t);
                    }
                    if rec.enabled() {
                        rec.record(Event::instant(
                            Phase::CircuitClose,
                            Lane::Worker(w as u32),
                            t,
                            Ctx { request_id: None, batch_id: None, worker: Some(w as u32) },
                        ));
                    }
                }
                // Quarantine expiry: this dispatch is the probation
                // probe. The worker re-enters the pool; its next
                // latency outlier re-quarantines it immediately with an
                // escalated window, while a clean batch clears
                // probation and resets the window.
                if fo.quarantined[w].is_some() {
                    fo.quarantined[w] = None;
                    fo.probation[w] = true;
                    fo.gray.probations += 1;
                    fo.recompute_degradation(workers, cfg);
                    if rec.enabled() {
                        rec.record(Event::instant(
                            Phase::Probation,
                            Lane::Worker(w as u32),
                            t,
                            Ctx { request_id: None, batch_id: None, worker: Some(w as u32) },
                        ));
                    }
                }
                // Replanning can move the dispatch instant *earlier* than a
                // previously admitted arrival (e.g. cost-aware estimates
                // shift as the queue grows), so a batch closing at `t` may
                // only take members that had arrived by `t`. The front
                // always qualifies: every close instant is >= its arrival
                // and >= its backoff floor.
                let mut eligible = 0;
                while eligible < queue.len().min(fo.fill_limit)
                    && queue[eligible].arrival <= t
                    && queue[eligible].earliest <= t
                {
                    eligible += 1;
                }
                debug_assert!(eligible >= 1, "batch closed before its oldest member was ready");
                let size = clamp_batch(eligible, workers[w].as_ref());
                if let Some(o) = obs.as_deref_mut() {
                    o.sampler.advance(t, queue.len());
                }
                let members: Vec<Pending> = queue.drain(..size).collect();
                let bid = batch_seq;
                batch_seq += 1;
                let ids: Vec<u64> =
                    if rec.enabled() { members.iter().map(|m| m.id).collect() } else { Vec::new() };
                if rec.enabled() {
                    for m in &members {
                        let ctx = Ctx::request(m.id).with_batch(bid).with_worker(w as u32);
                        rec.record(Event::instant(Phase::BatchClose, Lane::Queue, t, ctx));
                        rec.record(Event::instant(Phase::Dispatch, Lane::Worker(w as u32), t, ctx));
                    }
                }
                let timeout_at = saturating_add(t, cfg.robust.dispatch_timeout);
                let run = workers[w].try_serve_obs(
                    size,
                    t,
                    &mut BatchObs { rec: &mut *rec, batch_id: bid, worker: w as u32, ids: &ids },
                );
                // Gray-failure defenses on a successful primary: hedge
                // a span that blew past the learned quantile delay onto
                // a second worker (first completion wins, the loser's
                // span is charged as wasted energy), then score the
                // primary's span for the fail-slow quarantine. Both are
                // off — and this block is a no-op — without `cfg.gray`.
                let (w, run) = if cfg.gray.hedge.is_some() || cfg.gray.quarantine.is_some() {
                    let mut w = w;
                    let mut run = run;
                    if let Some((pstart, pend)) = run.as_ref().ok().map(|r| (r.start, r.end)) {
                        let pw = w; // the primary, even if the hedge wins
                        let est = workers[pw].estimate(size);
                        // The hedge decision may only use ratios from
                        // *earlier* batches; this span is recorded after.
                        let hedge_at = cfg.gray.hedge.and_then(|h| {
                            let fp = fo.hist.quantile_fp(h.quantile, h.min_samples)?;
                            let delay_ns = (fp.saturating_mul(est.nanos()) / RATIO_FP)
                                .max(h.min_delay.nanos());
                            let fire = pstart + Duration::from_nanos(delay_ns);
                            (pend > fire).then_some(fire)
                        });
                        // Only a fully healthy worker may serve the
                        // duplicate: an open-circuit or quarantined
                        // worker past its cooldown is `routable_at` as
                        // a half-open/probation *probe*, but that
                        // transition is the primary dispatch path's job
                        // — a hedge must beat the primary's tail, not
                        // gamble it on an unproven device.
                        let pick = hedge_at.and_then(|at| {
                            (0..workers.len())
                                .filter(|&i| i != pw && !fo.blocked(i) && fo.routable_at(i, at))
                                .min_by_key(|&i| (workers[i].busy_until(), i))
                        });
                        if let (Some(hat), Some(h)) = (hedge_at, pick) {
                            fo.gray.hedges += 1;
                            let hctx = Ctx {
                                request_id: None,
                                batch_id: Some(bid),
                                worker: Some(h as u32),
                            };
                            let hres = workers[h].try_serve_obs(
                                size,
                                hat,
                                &mut BatchObs {
                                    rec: &mut *rec,
                                    batch_id: bid,
                                    worker: h as u32,
                                    ids: &ids,
                                },
                            );
                            // Either copy's span really ran on a device:
                            // busy time and energy are charged for both,
                            // the loser's as wasted.
                            let mut waste = |wk: usize, from: SimTime, to: SimTime| {
                                stats[wk].busy += to - from;
                                if let Some(sp) = meter.charge(wk as u32, from, to, bid, true) {
                                    let span_ns = sp.end.nanos() - sp.start.nanos();
                                    fo.gray.hedge_wasted_pj +=
                                        meter.profiles()[wk].energy_pj(span_ns, 0);
                                    if let Some(o) = obs.as_deref_mut() {
                                        o.sampler.b.on_energy_span(wk, sp.start, sp.end);
                                    }
                                }
                            };
                            match hres {
                                Ok(hrun) => {
                                    if rec.enabled() {
                                        rec.record(Event::span(
                                            Phase::Hedge,
                                            Lane::Worker(h as u32),
                                            hat,
                                            hrun.end,
                                            hctx,
                                        ));
                                    }
                                    if hrun.end < pend {
                                        // The duplicate wins: take its
                                        // results (and its wire faults),
                                        // waste the primary's span.
                                        fo.gray.hedge_wins += 1;
                                        if rec.enabled() {
                                            rec.record(Event::instant(
                                                Phase::HedgeWin,
                                                Lane::Worker(h as u32),
                                                hrun.end,
                                                hctx,
                                            ));
                                        }
                                        waste(pw, pstart, pend);
                                        w = h;
                                        run = Ok(hrun);
                                    } else {
                                        fo.gray.hedge_cancels += 1;
                                        if rec.enabled() {
                                            rec.record(Event::instant(
                                                Phase::HedgeCancel,
                                                Lane::Worker(h as u32),
                                                pend,
                                                hctx,
                                            ));
                                        }
                                        waste(h, hrun.start, hrun.end);
                                    }
                                }
                                Err(e) => {
                                    // A failed hedge never hurts the
                                    // primary (its result is in hand) and
                                    // never feeds the breaker; the probe's
                                    // detection span is wasted energy.
                                    fo.gray.hedge_cancels += 1;
                                    let det = SimTime::max_of(hat, e.at);
                                    waste(h, hat, det);
                                    if rec.enabled() {
                                        rec.record(Event::span(
                                            Phase::Hedge,
                                            Lane::Worker(h as u32),
                                            hat,
                                            det,
                                            hctx,
                                        ));
                                        rec.record(Event::instant(
                                            Phase::HedgeCancel,
                                            Lane::Worker(h as u32),
                                            det,
                                            hctx,
                                        ));
                                    }
                                }
                            }
                        }
                        fo.hist.record((pend - pstart).nanos(), est.nanos());
                        // Fail-slow scoring on the *primary*: enough
                        // consecutive outliers (or one while on
                        // probation) quarantine it from `pend`, which is
                        // causally safe — its backlog already extends to
                        // `pend`, so no earlier dispatch can exist.
                        if let Some(qc) = cfg.gray.quarantine {
                            if est > Duration::ZERO && pend - pstart > est * qc.outlier_factor {
                                fo.outlier_run[pw] += 1;
                                if fo.probation[pw] || fo.outlier_run[pw] >= qc.threshold {
                                    let window = fo.quar_window[pw];
                                    fo.quarantined[pw] = Some(pend + window);
                                    fo.quar_window[pw] = (window * qc.backoff).min(qc.window_max);
                                    fo.probation[pw] = false;
                                    fo.outlier_run[pw] = 0;
                                    fo.gray.quarantines += 1;
                                    fo.recompute_degradation(workers, cfg);
                                    if rec.enabled() {
                                        rec.record(Event::instant(
                                            Phase::Quarantine,
                                            Lane::Worker(pw as u32),
                                            pend,
                                            Ctx {
                                                request_id: None,
                                                batch_id: Some(bid),
                                                worker: Some(pw as u32),
                                            },
                                        ));
                                    }
                                }
                            } else {
                                fo.outlier_run[pw] = 0;
                                if fo.probation[pw] {
                                    fo.probation[pw] = false;
                                    fo.quar_window[pw] = qc.window;
                                }
                            }
                        }
                    }
                    (w, run)
                } else {
                    (w, run)
                };
                // Per-batch dispatch timeout: a batch whose results land
                // too late is declared failed (the work — and its
                // energy — is wasted; the device really ran the span).
                let run = match run {
                    Ok(r) if r.end > timeout_at => {
                        stats[w].busy += r.end - r.start;
                        if let Some(sp) = meter.charge(w as u32, r.start, r.end, bid, true) {
                            if let Some(o) = obs.as_deref_mut() {
                                o.sampler.b.on_energy_span(w, sp.start, sp.end);
                            }
                        }
                        Err(ServeError { at: timeout_at, kind: FailureKind::Timeout })
                    }
                    other => other,
                };
                match run {
                    Ok(run) => {
                        debug_assert!(run.start >= t && run.done.len() == size);
                        stats[w].batches += 1;
                        stats[w].images += size as u64;
                        stats[w].busy += run.end - run.start;
                        let probe = fo.health[w].circuit == Circuit::HalfOpen;
                        fo.health[w].consecutive_failures = 0;
                        fo.health[w].circuit = Circuit::Closed;
                        if probe {
                            fo.health[w].cooldown = cfg.robust.breaker_cooldown;
                        }
                        if let Some(sp) = meter.charge(w as u32, run.start, run.end, bid, false) {
                            if let Some(o) = obs.as_deref_mut() {
                                o.sampler.b.on_energy_span(w, sp.start, sp.end);
                            }
                        }
                        if let Some(o) = obs.as_deref_mut() {
                            o.meters.reg.inc(o.meters.batches);
                            o.sampler.b.on_batch(w, run.start, run.end);
                        }
                        // Wire-integrity processing: the device may have
                        // corrupted, duplicated or dropped individual
                        // result slots ([`ncsw::service::WireReport`]).
                        // With verification on, per-request sequence
                        // tags + checksums reject bad completions — the
                        // request retries (or sheds once out of
                        // attempts) instead of surfacing garbage. With
                        // it off, corrupt results reach the client and
                        // dropped slots surface at the batch horizon.
                        // Duplicates are idempotent either way: the
                        // host keys results by sequence tag, so the
                        // second copy lands on the first.
                        let wire = run.wire.clone().unwrap_or_default();
                        let mut requeue: Vec<Pending> = Vec::new();
                        for (slot, (m, &done)) in members.iter().zip(&run.done).enumerate() {
                            let corrupted = wire.corrupted.contains(&slot);
                            let dropped = wire.dropped.contains(&slot);
                            if corrupted {
                                fo.gray.corrupted_wire += 1;
                            }
                            if wire.duplicated.contains(&slot) {
                                fo.gray.dups_suppressed += 1;
                            }
                            if cfg.gray.verify && (corrupted || dropped) {
                                // A drop is only detectable once the
                                // whole batch lands and the tag gap
                                // shows; a bad checksum fails on its
                                // own completion.
                                let at = if dropped { run.end } else { done };
                                fo.gray.integrity_fails += 1;
                                if dropped {
                                    fo.gray.drops_detected += 1;
                                }
                                if rec.enabled() {
                                    rec.record(Event::instant(
                                        Phase::IntegrityFail,
                                        Lane::Worker(w as u32),
                                        at,
                                        Ctx::request(m.id).with_batch(bid).with_worker(w as u32),
                                    ));
                                }
                                let attempts = m.attempts + 1;
                                if attempts >= cfg.robust.max_attempts {
                                    fo.stats.exhausted += 1;
                                    let r = ShedRecord {
                                        id: m.id,
                                        arrival: m.arrival,
                                        shed_at: at,
                                        cause: ShedCause::RetriesExhausted,
                                    };
                                    record_shed(r, &mut obs, &mut ctrl, &mut shed);
                                    if rec.enabled() {
                                        rec.record(
                                            Event::span(
                                                Phase::Shed,
                                                Lane::Queue,
                                                m.arrival,
                                                at,
                                                Ctx::request(m.id).with_batch(bid),
                                            )
                                            .with_cause(ShedCause::RetriesExhausted),
                                        );
                                    }
                                } else {
                                    fo.stats.retries += 1;
                                    if let Some(o) = obs.as_deref_mut() {
                                        o.meters.reg.inc(o.meters.retries);
                                    }
                                    if rec.enabled() {
                                        rec.record(Event::instant(
                                            Phase::RetryAttempt,
                                            Lane::Server,
                                            at,
                                            Ctx::request(m.id).with_batch(bid),
                                        ));
                                    }
                                    requeue.push(Pending {
                                        id: m.id,
                                        arrival: m.arrival,
                                        attempts,
                                        earliest: at,
                                    });
                                }
                                continue;
                            }
                            let done = if dropped {
                                // Unverified drop: the client only sees
                                // this result when the batch-horizon
                                // flush resends it.
                                fo.gray.drops_surfaced += 1;
                                run.end
                            } else {
                                done
                            };
                            if corrupted {
                                fo.gray.corrupt_surfaced += 1;
                            }
                            let record = RequestRecord {
                                id: m.id,
                                arrival: m.arrival,
                                dispatched: t,
                                service_start: run.start,
                                completed: done,
                                worker: w,
                                batch: size,
                                attempts: m.attempts + 1,
                            };
                            if let Some(o) = obs.as_deref_mut() {
                                o.meters.complete(&record);
                                o.sampler.complete_later(done, record.latency());
                            }
                            if let Some(c) = ctrl.as_deref_mut() {
                                let kind = if record.latency() > cfg.slo {
                                    OUTCOME_MISS
                                } else {
                                    OUTCOME_GOOD
                                };
                                c.outcome(done, kind);
                            }
                            if rec.enabled() {
                                rec.record(Event::instant(
                                    Phase::Complete,
                                    Lane::Server,
                                    done,
                                    Ctx::request(m.id).with_batch(bid).with_worker(w as u32),
                                ));
                            }
                            completed.push(record);
                        }
                        // Integrity-rejected members re-enter at the
                        // queue head, oldest first — the same contract
                        // as batch failover.
                        for p in requeue.into_iter().rev() {
                            queue.push_front(p);
                        }
                    }
                    Err(err) => {
                        let detect = SimTime::max_of(t, err.at.min(timeout_at));
                        // Device-originated failures (unplug probes,
                        // mid-execution deaths) burn the host-visible
                        // detection span at busy power. Timeouts were
                        // already charged for the span the device ran.
                        if err.kind != FailureKind::Timeout {
                            if let Some(sp) = meter.charge(w as u32, t, detect, bid, true) {
                                if let Some(o) = obs.as_deref_mut() {
                                    o.sampler.b.on_energy_span(w, sp.start, sp.end);
                                }
                            }
                        }
                        let wctx =
                            Ctx { request_id: None, batch_id: Some(bid), worker: Some(w as u32) };
                        fo.stats.injected += 1;
                        stats[w].failures += 1;
                        if let Some(o) = obs.as_deref_mut() {
                            o.meters.reg.inc(o.meters.faults);
                        }
                        if rec.enabled() {
                            rec.record(Event::instant(
                                Phase::Failover,
                                Lane::Worker(w as u32),
                                detect,
                                wctx,
                            ));
                        }
                        // Health: a failed probe reopens immediately with
                        // an escalated cooldown; otherwise consecutive
                        // failures trip the breaker — one failure earlier
                        // when the queue is under pressure (the same
                        // depth signal the obs sampler exports).
                        let was_probe = fo.health[w].circuit == Circuit::HalfOpen;
                        fo.health[w].consecutive_failures += 1;
                        let threshold = if queue.len() * 2 >= cfg.queue_capacity {
                            cfg.robust.breaker_threshold.saturating_sub(1).max(1)
                        } else {
                            cfg.robust.breaker_threshold
                        };
                        let trip = was_probe
                            || (fo.health[w].circuit == Circuit::Closed
                                && fo.health[w].consecutive_failures >= threshold);
                        if trip {
                            let cooldown = fo.health[w].cooldown;
                            fo.health[w].circuit = Circuit::Open { until: detect + cooldown };
                            fo.health[w].cooldown = (cooldown * cfg.robust.breaker_backoff)
                                .min(cfg.robust.breaker_cooldown_max);
                            fo.stats.outages.push(OutageRecord {
                                worker: w,
                                from: detect,
                                until: None,
                            });
                            fo.recompute_degradation(workers, cfg);
                            if let Some(o) = obs.as_deref_mut() {
                                o.meters.reg.inc(o.meters.circuit_opens);
                                o.sampler.b.circuit_event(w, 1.0, detect);
                            }
                            if rec.enabled() {
                                rec.record(Event::instant(
                                    Phase::CircuitOpen,
                                    Lane::Worker(w as u32),
                                    detect,
                                    wctx,
                                ));
                            }
                        }
                        // Failover: re-enqueue the members at the queue
                        // head (they are the oldest admitted requests, so
                        // arrival order is preserved) behind a seeded
                        // exponential backoff with jitter; requests out
                        // of attempts are shed with a recorded cause.
                        let max_attempt = members.iter().map(|m| m.attempts).max().unwrap_or(0) + 1;
                        let exp = cfg.robust.backoff_factor.powi(max_attempt as i32 - 1);
                        let backoff = (cfg.robust.backoff_base * exp).min(cfg.robust.backoff_max);
                        let jitter = backoff * (cfg.robust.jitter_frac * jitter_rng.gen::<f64>());
                        let earliest = detect + backoff + jitter;
                        for m in members.into_iter().rev() {
                            let attempts = m.attempts + 1;
                            if attempts >= cfg.robust.max_attempts {
                                fo.stats.exhausted += 1;
                                let r = ShedRecord {
                                    id: m.id,
                                    arrival: m.arrival,
                                    shed_at: detect,
                                    cause: ShedCause::RetriesExhausted,
                                };
                                record_shed(r, &mut obs, &mut ctrl, &mut shed);
                                if rec.enabled() {
                                    rec.record(
                                        Event::span(
                                            Phase::Shed,
                                            Lane::Queue,
                                            m.arrival,
                                            detect,
                                            Ctx::request(m.id).with_batch(bid),
                                        )
                                        .with_cause(ShedCause::RetriesExhausted),
                                    );
                                }
                            } else {
                                fo.stats.retries += 1;
                                if let Some(o) = obs.as_deref_mut() {
                                    o.meters.reg.inc(o.meters.retries);
                                }
                                if rec.enabled() {
                                    rec.record(Event::instant(
                                        Phase::RetryAttempt,
                                        Lane::Server,
                                        detect,
                                        Ctx::request(m.id).with_batch(bid),
                                    ));
                                }
                                queue.push_front(Pending {
                                    id: m.id,
                                    arrival: m.arrival,
                                    attempts,
                                    earliest,
                                });
                            }
                        }
                    }
                }
            }
            (None, None) => break,
            // The first arm's guard always accepts (Some, None).
            (Some(_), None) => unreachable!(),
        }
    }

    ServeOutcome {
        epoch,
        generated: n,
        completed,
        shed,
        workers: stats,
        faults: fo.stats,
        gray: fo.gray,
        energy: meter,
        scaling: ctrl.map(|c| c.stats.clone()),
        sim_events,
    }
}
