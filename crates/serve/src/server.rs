//! The serving loop: admission control, deadline-aware dynamic batching,
//! and heterogeneous dispatch — all on the `desim` virtual clock.
//!
//! The simulation is event-driven but needs no explicit event queue:
//! arrivals are known up front (open loop), and every worker
//! self-serializes through its own timeline, so at any instant the only
//! two candidate events are *the next arrival* and *the earliest batch
//! dispatch the policy can plan* for the current queue. The loop always
//! executes the earlier of the two (arrivals win ties, so a request
//! landing exactly at a dispatch instant still joins the batch).
//!
//! A batch closes when the queue holds `max_batch` requests **or** the
//! oldest queued request has waited `max_wait`, whichever comes first —
//! and is handed to a worker no earlier than the policy allows, so under
//! overload the bounded queue fills and the admission controller sheds.

use crate::workload::ArrivalProcess;
use desim::{Duration, SimTime};
use ncsw::service::ServiceHook;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What to do with an arrival when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Refuse the arriving request (classic tail drop).
    Reject,
    /// Admit the newcomer and evict the oldest queued request — the one
    /// that has burned most of its latency budget already.
    DropOldest,
}

impl ShedPolicy {
    pub fn parse(s: &str) -> Option<ShedPolicy> {
        match s {
            "reject" => Some(ShedPolicy::Reject),
            "drop-oldest" => Some(ShedPolicy::DropOldest),
            _ => None,
        }
    }
}

/// How formed batches are routed across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Cycle through the workers regardless of their backlog.
    RoundRobin,
    /// Route to the worker whose outstanding work drains earliest.
    LeastOutstanding,
    /// Route to the worker with the earliest *estimated completion*
    /// (backlog + calibrated cost model) — fast devices absorb bursts
    /// even while briefly busy, slow ones serve steady load.
    CostAware,
}

impl DispatchPolicy {
    pub fn parse(s: &str) -> Option<DispatchPolicy> {
        match s {
            "round-robin" => Some(DispatchPolicy::RoundRobin),
            "least-outstanding" => Some(DispatchPolicy::LeastOutstanding),
            "cost-aware" => Some(DispatchPolicy::CostAware),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastOutstanding => "least-outstanding",
            DispatchPolicy::CostAware => "cost-aware",
        }
    }
}

/// Serving-loop parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Bounded request-queue capacity (admission control).
    pub queue_capacity: usize,
    pub shed: ShedPolicy,
    /// A batch closes at this many requests...
    pub max_batch: usize,
    /// ...or once the oldest member has waited this long.
    pub max_wait: Duration,
    pub policy: DispatchPolicy,
    /// Latency objective used for goodput accounting (p99 target).
    pub slo: Duration,
    /// Seed of the arrival streams.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            shed: ShedPolicy::Reject,
            max_batch: 8,
            max_wait: Duration::from_millis(40.0),
            policy: DispatchPolicy::LeastOutstanding,
            slo: Duration::from_millis(500.0),
            seed: vpu_num::rng::DEFAULT_SEED,
        }
    }
}

/// Fate of one generated request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    pub id: u64,
    pub arrival: SimTime,
    /// Instant the batch containing this request closed and was routed.
    pub dispatched: SimTime,
    /// Instant the device began serving the batch.
    pub service_start: SimTime,
    /// Instant this request's result returned to the host.
    pub completed: SimTime,
    pub worker: usize,
    pub batch: usize,
}

impl RequestRecord {
    /// Deadline-aware batching delay: arrival -> batch close.
    pub fn formation_wait(&self) -> Duration {
        self.dispatched - self.arrival
    }

    /// Dispatch -> device start (worker backlog the policy accepted).
    pub fn queue_wait(&self) -> Duration {
        self.service_start - self.dispatched
    }

    pub fn service_time(&self) -> Duration {
        self.completed - self.service_start
    }

    pub fn latency(&self) -> Duration {
        self.completed - self.arrival
    }
}

/// A request shed by the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedRecord {
    pub id: u64,
    pub arrival: SimTime,
    /// Instant the decision was made (eviction can happen after arrival).
    pub shed_at: SimTime,
}

/// Per-worker accounting of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerStats {
    pub label: String,
    pub batches: u64,
    pub images: u64,
    /// Virtual time the device spent busy (sum of service spans).
    pub busy: Duration,
    /// Boot/allocation completion of the device at epoch.
    pub ready_at: SimTime,
}

/// Raw outcome of one serving run (aggregate with [`crate::metrics`]).
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Fleet-ready instant the arrival clock started from.
    pub epoch: SimTime,
    pub generated: usize,
    pub completed: Vec<RequestRecord>,
    pub shed: Vec<ShedRecord>,
    pub workers: Vec<WorkerStats>,
}

impl ServeOutcome {
    /// Last completion (or the epoch when nothing completed).
    pub fn end(&self) -> SimTime {
        self.completed.iter().map(|r| r.completed).max().unwrap_or(self.epoch)
    }
}

struct Pending {
    id: u64,
    arrival: SimTime,
}

/// Dispatch plan: worker index plus the instant the batch is handed over.
/// Pure — the round-robin cursor only advances when a plan is executed.
fn choose_worker(
    policy: DispatchPolicy,
    ready: SimTime,
    batch: usize,
    workers: &[Box<dyn ServiceHook>],
    rr_cursor: usize,
) -> (usize, SimTime) {
    match policy {
        DispatchPolicy::RoundRobin => {
            let w = rr_cursor % workers.len();
            (w, SimTime::max_of(ready, workers[w].busy_until()))
        }
        DispatchPolicy::LeastOutstanding => {
            let w = (0..workers.len())
                .min_by_key(|&i| (workers[i].busy_until(), i))
                .expect("non-empty fleet");
            (w, SimTime::max_of(ready, workers[w].busy_until()))
        }
        DispatchPolicy::CostAware => {
            let w = (0..workers.len())
                .min_by_key(|&i| {
                    let b = clamp_batch(batch, workers[i].as_ref());
                    let start = SimTime::max_of(ready, workers[i].busy_until());
                    (start + workers[i].estimate(b), i)
                })
                .expect("non-empty fleet");
            (w, SimTime::max_of(ready, workers[w].busy_until()))
        }
    }
}

fn clamp_batch(batch: usize, worker: &dyn ServiceHook) -> usize {
    let cap = worker.max_batch().unwrap_or(usize::MAX).min(worker.preferred_batch());
    batch.min(cap).max(1)
}

/// Run the serving loop: `n` open-loop arrivals from `process` against
/// `workers`, under `cfg`. Arrivals start at the fleet-ready epoch (the
/// latest worker boot instant), so cold-start time is not billed to the
/// first requests.
pub fn serve(
    workers: &mut [Box<dyn ServiceHook>],
    cfg: &ServeConfig,
    process: &ArrivalProcess,
    n: usize,
) -> ServeOutcome {
    assert!(!workers.is_empty(), "need at least one worker");
    assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
    assert!(cfg.max_batch > 0, "max_batch must be positive");

    let epoch = workers.iter().map(|w| w.busy_until()).max().unwrap();
    let arrivals = process.arrivals(n, epoch, cfg.seed);

    let mut stats: Vec<WorkerStats> = workers
        .iter()
        .map(|w| WorkerStats {
            label: w.label(),
            batches: 0,
            images: 0,
            busy: Duration::ZERO,
            ready_at: w.busy_until(),
        })
        .collect();

    let mut queue: VecDeque<Pending> = VecDeque::new();
    let mut completed: Vec<RequestRecord> = Vec::with_capacity(n);
    let mut shed: Vec<ShedRecord> = Vec::new();
    let mut next = 0usize; // next arrival index
    let mut rr_cursor = 0usize;

    loop {
        // Earliest instant the current queue head could be dispatched:
        // batch-full close (the arrival that filled it) or the oldest
        // member's deadline, whichever fires first.
        let plan = if queue.is_empty() {
            None
        } else {
            let deadline = queue.front().unwrap().arrival + cfg.max_wait;
            // Full-close fires at the arrival that filled the batch.
            let ready = if queue.len() >= cfg.max_batch {
                queue[cfg.max_batch - 1].arrival.min(deadline)
            } else {
                deadline
            };
            let hint = queue.len().min(cfg.max_batch);
            Some(choose_worker(cfg.policy, ready, hint, workers, rr_cursor))
        };

        match (arrivals.get(next), plan) {
            // Admit the next arrival when it precedes (or ties) the
            // planned dispatch.
            (Some(&at), p) if p.is_none() || at <= p.unwrap().1 => {
                let id = next as u64;
                next += 1;
                if queue.len() == cfg.queue_capacity {
                    match cfg.shed {
                        ShedPolicy::Reject => {
                            shed.push(ShedRecord { id, arrival: at, shed_at: at });
                            continue;
                        }
                        ShedPolicy::DropOldest => {
                            let old = queue.pop_front().unwrap();
                            shed.push(ShedRecord { id: old.id, arrival: old.arrival, shed_at: at });
                        }
                    }
                }
                queue.push_back(Pending { id, arrival: at });
            }
            (_, Some((w, t))) => {
                if cfg.policy == DispatchPolicy::RoundRobin {
                    rr_cursor += 1;
                }
                // Replanning can move the dispatch instant *earlier* than a
                // previously admitted arrival (e.g. cost-aware estimates
                // shift as the queue grows), so a batch closing at `t` may
                // only take members that had arrived by `t`. The front
                // always qualifies: every close instant is >= its arrival.
                let mut eligible = 0;
                while eligible < queue.len().min(cfg.max_batch) && queue[eligible].arrival <= t {
                    eligible += 1;
                }
                debug_assert!(eligible >= 1, "batch closed before its oldest member arrived");
                let size = clamp_batch(eligible, workers[w].as_ref());
                let members: Vec<Pending> = queue.drain(..size).collect();
                let run = workers[w].serve(size, t);
                debug_assert!(run.start >= t && run.done.len() == size);
                stats[w].batches += 1;
                stats[w].images += size as u64;
                stats[w].busy += run.end - run.start;
                for (m, &done) in members.iter().zip(&run.done) {
                    completed.push(RequestRecord {
                        id: m.id,
                        arrival: m.arrival,
                        dispatched: t,
                        service_start: run.start,
                        completed: done,
                        worker: w,
                        batch: size,
                    });
                }
            }
            (None, None) => break,
            // The first arm's guard always accepts (Some, None).
            (Some(_), None) => unreachable!(),
        }
    }

    ServeOutcome { epoch, generated: n, completed, shed, workers: stats }
}
