//! The serving loop: admission control, deadline-aware dynamic batching,
//! and heterogeneous dispatch — all on the `desim` virtual clock.
//!
//! The simulation is event-driven but needs no explicit event queue:
//! arrivals are known up front (open loop), and every worker
//! self-serializes through its own timeline, so at any instant the only
//! two candidate events are *the next arrival* and *the earliest batch
//! dispatch the policy can plan* for the current queue. The loop always
//! executes the earlier of the two (arrivals win ties, so a request
//! landing exactly at a dispatch instant still joins the batch).
//!
//! A batch closes when the queue holds `max_batch` requests **or** the
//! oldest queued request has waited `max_wait`, whichever comes first —
//! and is handed to a worker no earlier than the policy allows, so under
//! overload the bounded queue fills and the admission controller sheds.

use crate::workload::ArrivalProcess;
use desim::{Duration, SimTime};
use ncsw::service::ServiceHook;
use ncsw_obs::{
    BatchObs, CounterId, Ctx, Event, EventLog, GaugeId, HistogramId, Lane, NullRecorder, Phase,
    Recorder, Registry, TimeSeries, TimeSeriesBuilder,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// What to do with an arrival when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Refuse the arriving request (classic tail drop).
    Reject,
    /// Admit the newcomer and evict the oldest queued request — the one
    /// that has burned most of its latency budget already.
    DropOldest,
}

impl ShedPolicy {
    pub fn parse(s: &str) -> Option<ShedPolicy> {
        match s {
            "reject" => Some(ShedPolicy::Reject),
            "drop-oldest" => Some(ShedPolicy::DropOldest),
            _ => None,
        }
    }
}

/// How formed batches are routed across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Cycle through the workers regardless of their backlog.
    RoundRobin,
    /// Route to the worker whose outstanding work drains earliest.
    LeastOutstanding,
    /// Route to the worker with the earliest *estimated completion*
    /// (backlog + calibrated cost model) — fast devices absorb bursts
    /// even while briefly busy, slow ones serve steady load.
    CostAware,
}

impl DispatchPolicy {
    pub fn parse(s: &str) -> Option<DispatchPolicy> {
        match s {
            "round-robin" => Some(DispatchPolicy::RoundRobin),
            "least-outstanding" => Some(DispatchPolicy::LeastOutstanding),
            "cost-aware" => Some(DispatchPolicy::CostAware),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastOutstanding => "least-outstanding",
            DispatchPolicy::CostAware => "cost-aware",
        }
    }
}

/// Serving-loop parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Bounded request-queue capacity (admission control).
    pub queue_capacity: usize,
    pub shed: ShedPolicy,
    /// A batch closes at this many requests...
    pub max_batch: usize,
    /// ...or once the oldest member has waited this long.
    pub max_wait: Duration,
    pub policy: DispatchPolicy,
    /// Latency objective used for goodput accounting (p99 target).
    pub slo: Duration,
    /// Seed of the arrival streams.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            shed: ShedPolicy::Reject,
            max_batch: 8,
            max_wait: Duration::from_millis(40.0),
            policy: DispatchPolicy::LeastOutstanding,
            slo: Duration::from_millis(500.0),
            seed: vpu_num::rng::DEFAULT_SEED,
        }
    }
}

/// Fate of one generated request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    pub id: u64,
    pub arrival: SimTime,
    /// Instant the batch containing this request closed and was routed.
    pub dispatched: SimTime,
    /// Instant the device began serving the batch.
    pub service_start: SimTime,
    /// Instant this request's result returned to the host.
    pub completed: SimTime,
    pub worker: usize,
    pub batch: usize,
}

impl RequestRecord {
    /// Deadline-aware batching delay: arrival -> batch close.
    pub fn formation_wait(&self) -> Duration {
        self.dispatched - self.arrival
    }

    /// Dispatch -> device start (worker backlog the policy accepted).
    pub fn queue_wait(&self) -> Duration {
        self.service_start - self.dispatched
    }

    pub fn service_time(&self) -> Duration {
        self.completed - self.service_start
    }

    pub fn latency(&self) -> Duration {
        self.completed - self.arrival
    }
}

/// Why the admission controller shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedCause {
    /// Tail-dropped on arrival (queue full under [`ShedPolicy::Reject`]).
    Rejected,
    /// Evicted from the queue by a newer arrival
    /// ([`ShedPolicy::DropOldest`]).
    Evicted,
}

/// A request shed by the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedRecord {
    pub id: u64,
    pub arrival: SimTime,
    /// Instant the decision was made (eviction can happen after arrival).
    pub shed_at: SimTime,
    pub cause: ShedCause,
}

impl ShedRecord {
    /// Queue time burned before the shedding decision (zero for rejects).
    pub fn wait(&self) -> Duration {
        self.shed_at - self.arrival
    }
}

/// Per-worker accounting of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerStats {
    pub label: String,
    pub batches: u64,
    pub images: u64,
    /// Virtual time the device spent busy (sum of service spans).
    pub busy: Duration,
    /// Boot/allocation completion of the device at epoch.
    pub ready_at: SimTime,
}

/// Raw outcome of one serving run (aggregate with [`crate::metrics`]).
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Fleet-ready instant the arrival clock started from.
    pub epoch: SimTime,
    pub generated: usize,
    pub completed: Vec<RequestRecord>,
    pub shed: Vec<ShedRecord>,
    pub workers: Vec<WorkerStats>,
}

impl ServeOutcome {
    /// Last completion (or the epoch when nothing completed).
    pub fn end(&self) -> SimTime {
        self.completed.iter().map(|r| r.completed).max().unwrap_or(self.epoch)
    }
}

struct Pending {
    id: u64,
    arrival: SimTime,
}

/// Observability options for [`serve_observed`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Time-series sampling interval (virtual time).
    pub sample_every: Duration,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { sample_every: Duration::from_millis(10.0) }
    }
}

/// Everything an observed run captured beyond the [`ServeOutcome`].
#[derive(Debug)]
pub struct ServeObservation {
    /// Structured event stream (export with [`ncsw_obs::chrome_trace`]).
    pub events: EventLog,
    /// Periodic samples of queue/worker state (export with
    /// [`TimeSeries::csv`]).
    pub series: TimeSeries,
    /// Counters, gauges and latency histograms of the run.
    pub registry: Registry,
}

/// Registered metric handles of one observed run.
struct Meters {
    reg: Registry,
    arrived: CounterId,
    completed: CounterId,
    rejected: CounterId,
    evicted: CounterId,
    batches: CounterId,
    depth_peak: GaugeId,
    evicted_wait: HistogramId,
    latency: HistogramId,
    formation: HistogramId,
    queue_wait: HistogramId,
    service: HistogramId,
    peak: usize,
}

impl Meters {
    fn new() -> Meters {
        let mut reg = Registry::new();
        Meters {
            arrived: reg.counter("requests.arrived"),
            completed: reg.counter("requests.completed"),
            rejected: reg.counter("requests.shed.rejected"),
            evicted: reg.counter("requests.shed.evicted"),
            batches: reg.counter("batches.dispatched"),
            depth_peak: reg.gauge("queue.depth.peak"),
            evicted_wait: reg.histogram("shed.evicted.wait"),
            latency: reg.histogram("latency.e2e"),
            formation: reg.histogram("latency.formation_wait"),
            queue_wait: reg.histogram("latency.queue_wait"),
            service: reg.histogram("latency.service"),
            peak: 0,
            reg,
        }
    }

    fn shed(&mut self, cause: ShedCause, wait: Duration) {
        match cause {
            ShedCause::Rejected => self.reg.inc(self.rejected),
            ShedCause::Evicted => {
                self.reg.inc(self.evicted);
                self.reg.observe(self.evicted_wait, wait);
            }
        }
    }

    fn complete(&mut self, r: &RequestRecord) {
        self.reg.inc(self.completed);
        self.reg.observe(self.latency, r.latency());
        self.reg.observe(self.formation, r.formation_wait());
        self.reg.observe(self.queue_wait, r.queue_wait());
        self.reg.observe(self.service, r.service_time());
    }

    fn finish(mut self) -> Registry {
        self.reg.set(self.depth_peak, self.peak as f64);
        self.reg
    }
}

/// Drives the [`TimeSeriesBuilder`] from the serving loop's in-order
/// events while re-ordering *completions*, which land after the batch
/// dispatch that produced them, back into their true sample windows.
struct SamplerDrive {
    b: TimeSeriesBuilder,
    /// Not-yet-sampled completions as `(completion ns, latency ns)`.
    pending: BinaryHeap<Reverse<(u64, u64)>>,
}

impl SamplerDrive {
    fn advance(&mut self, now: SimTime, queue_depth: usize) {
        while let Some(&Reverse((done, lat))) = self.pending.peek() {
            if done > now.nanos() {
                break;
            }
            self.pending.pop();
            self.b.advance(SimTime(done), queue_depth);
            self.b.on_complete(Duration::from_nanos(lat));
        }
        self.b.advance(now, queue_depth);
    }

    fn complete_later(&mut self, done: SimTime, latency: Duration) {
        self.pending.push(Reverse((done.nanos(), latency.nanos())));
    }

    fn finish(mut self, end: SimTime) -> TimeSeries {
        // The queue is empty once the loop exits; only straggling
        // completions remain.
        self.advance(end, 0);
        self.b.finish(end, 0)
    }
}

/// Live observability state threaded through [`serve_core`].
struct ObsAccum {
    sampler: SamplerDrive,
    meters: Meters,
}

/// Dispatch plan: worker index plus the instant the batch is handed over.
/// Pure — the round-robin cursor only advances when a plan is executed.
fn choose_worker(
    policy: DispatchPolicy,
    ready: SimTime,
    batch: usize,
    workers: &[Box<dyn ServiceHook>],
    rr_cursor: usize,
) -> (usize, SimTime) {
    match policy {
        DispatchPolicy::RoundRobin => {
            let w = rr_cursor % workers.len();
            (w, SimTime::max_of(ready, workers[w].busy_until()))
        }
        DispatchPolicy::LeastOutstanding => {
            let w = (0..workers.len())
                .min_by_key(|&i| (workers[i].busy_until(), i))
                .expect("non-empty fleet");
            (w, SimTime::max_of(ready, workers[w].busy_until()))
        }
        DispatchPolicy::CostAware => {
            let w = (0..workers.len())
                .min_by_key(|&i| {
                    let b = clamp_batch(batch, workers[i].as_ref());
                    let start = SimTime::max_of(ready, workers[i].busy_until());
                    (start + workers[i].estimate(b), i)
                })
                .expect("non-empty fleet");
            (w, SimTime::max_of(ready, workers[w].busy_until()))
        }
    }
}

fn clamp_batch(batch: usize, worker: &dyn ServiceHook) -> usize {
    let cap = worker.max_batch().unwrap_or(usize::MAX).min(worker.preferred_batch());
    batch.min(cap).max(1)
}

/// Run the serving loop: `n` open-loop arrivals from `process` against
/// `workers`, under `cfg`. Arrivals start at the fleet-ready epoch (the
/// latest worker boot instant), so cold-start time is not billed to the
/// first requests.
pub fn serve(
    workers: &mut [Box<dyn ServiceHook>],
    cfg: &ServeConfig,
    process: &ArrivalProcess,
    n: usize,
) -> ServeOutcome {
    let mut null = NullRecorder;
    serve_core(workers, cfg, process, n, &mut null, None)
}

/// [`serve`] with observability: identical outcome (the recorder never
/// influences timing or RNG state), plus the captured event stream,
/// sampled time series and metric registry.
pub fn serve_observed(
    workers: &mut [Box<dyn ServiceHook>],
    cfg: &ServeConfig,
    process: &ArrivalProcess,
    n: usize,
    ocfg: &ObsConfig,
) -> (ServeOutcome, ServeObservation) {
    assert!(!workers.is_empty(), "need at least one worker");
    let epoch = workers.iter().map(|w| w.busy_until()).max().unwrap();
    let labels = workers.iter().map(|w| w.label()).collect();
    let mut events = EventLog::new();
    let mut obs = ObsAccum {
        sampler: SamplerDrive {
            b: TimeSeriesBuilder::new(labels, epoch, ocfg.sample_every, cfg.slo),
            pending: BinaryHeap::new(),
        },
        meters: Meters::new(),
    };
    let outcome = serve_core(workers, cfg, process, n, &mut events, Some(&mut obs));
    let series = obs.sampler.finish(outcome.end());
    let registry = obs.meters.finish();
    (outcome, ServeObservation { events, series, registry })
}

fn serve_core(
    workers: &mut [Box<dyn ServiceHook>],
    cfg: &ServeConfig,
    process: &ArrivalProcess,
    n: usize,
    rec: &mut dyn Recorder,
    mut obs: Option<&mut ObsAccum>,
) -> ServeOutcome {
    assert!(!workers.is_empty(), "need at least one worker");
    assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
    assert!(cfg.max_batch > 0, "max_batch must be positive");

    let epoch = workers.iter().map(|w| w.busy_until()).max().unwrap();
    let arrivals = process.arrivals(n, epoch, cfg.seed);

    let mut stats: Vec<WorkerStats> = workers
        .iter()
        .map(|w| WorkerStats {
            label: w.label(),
            batches: 0,
            images: 0,
            busy: Duration::ZERO,
            ready_at: w.busy_until(),
        })
        .collect();

    let mut queue: VecDeque<Pending> = VecDeque::new();
    let mut completed: Vec<RequestRecord> = Vec::with_capacity(n);
    let mut shed: Vec<ShedRecord> = Vec::new();
    let mut next = 0usize; // next arrival index
    let mut rr_cursor = 0usize;
    let mut batch_seq = 0u64;

    loop {
        // Earliest instant the current queue head could be dispatched:
        // batch-full close (the arrival that filled it) or the oldest
        // member's deadline, whichever fires first.
        let plan = if queue.is_empty() {
            None
        } else {
            let deadline = queue.front().unwrap().arrival + cfg.max_wait;
            // Full-close fires at the arrival that filled the batch.
            let ready = if queue.len() >= cfg.max_batch {
                queue[cfg.max_batch - 1].arrival.min(deadline)
            } else {
                deadline
            };
            let hint = queue.len().min(cfg.max_batch);
            Some(choose_worker(cfg.policy, ready, hint, workers, rr_cursor))
        };

        match (arrivals.get(next), plan) {
            // Admit the next arrival when it precedes (or ties) the
            // planned dispatch.
            (Some(&at), p) if p.is_none() || at <= p.unwrap().1 => {
                let id = next as u64;
                next += 1;
                if let Some(o) = obs.as_deref_mut() {
                    o.sampler.advance(at, queue.len());
                    o.meters.reg.inc(o.meters.arrived);
                }
                if rec.enabled() {
                    rec.record(Event::instant(Phase::Arrive, Lane::Server, at, Ctx::request(id)));
                }
                if queue.len() == cfg.queue_capacity {
                    match cfg.shed {
                        ShedPolicy::Reject => {
                            let r = ShedRecord {
                                id,
                                arrival: at,
                                shed_at: at,
                                cause: ShedCause::Rejected,
                            };
                            if let Some(o) = obs.as_deref_mut() {
                                o.sampler.b.on_shed();
                                o.meters.shed(r.cause, r.wait());
                            }
                            if rec.enabled() {
                                rec.record(Event::instant(
                                    Phase::Shed,
                                    Lane::Server,
                                    at,
                                    Ctx::request(id),
                                ));
                            }
                            shed.push(r);
                            continue;
                        }
                        ShedPolicy::DropOldest => {
                            let old = queue.pop_front().unwrap();
                            let r = ShedRecord {
                                id: old.id,
                                arrival: old.arrival,
                                shed_at: at,
                                cause: ShedCause::Evicted,
                            };
                            if let Some(o) = obs.as_deref_mut() {
                                o.sampler.b.on_shed();
                                o.meters.shed(r.cause, r.wait());
                            }
                            if rec.enabled() {
                                // Span length = queue wait burned before
                                // the eviction.
                                rec.record(Event::span(
                                    Phase::Shed,
                                    Lane::Queue,
                                    old.arrival,
                                    at,
                                    Ctx::request(old.id),
                                ));
                            }
                            shed.push(r);
                        }
                    }
                }
                queue.push_back(Pending { id, arrival: at });
                if let Some(o) = obs.as_deref_mut() {
                    o.meters.peak = o.meters.peak.max(queue.len());
                }
                if rec.enabled() {
                    rec.record(Event::instant(Phase::Admit, Lane::Server, at, Ctx::request(id)));
                    rec.record(Event::instant(Phase::Enqueue, Lane::Queue, at, Ctx::request(id)));
                }
            }
            (_, Some((w, t))) => {
                if cfg.policy == DispatchPolicy::RoundRobin {
                    rr_cursor += 1;
                }
                // Replanning can move the dispatch instant *earlier* than a
                // previously admitted arrival (e.g. cost-aware estimates
                // shift as the queue grows), so a batch closing at `t` may
                // only take members that had arrived by `t`. The front
                // always qualifies: every close instant is >= its arrival.
                let mut eligible = 0;
                while eligible < queue.len().min(cfg.max_batch) && queue[eligible].arrival <= t {
                    eligible += 1;
                }
                debug_assert!(eligible >= 1, "batch closed before its oldest member arrived");
                let size = clamp_batch(eligible, workers[w].as_ref());
                if let Some(o) = obs.as_deref_mut() {
                    o.sampler.advance(t, queue.len());
                }
                let members: Vec<Pending> = queue.drain(..size).collect();
                let bid = batch_seq;
                batch_seq += 1;
                let ids: Vec<u64> =
                    if rec.enabled() { members.iter().map(|m| m.id).collect() } else { Vec::new() };
                if rec.enabled() {
                    for m in &members {
                        let ctx = Ctx::request(m.id).with_batch(bid).with_worker(w as u32);
                        rec.record(Event::instant(Phase::BatchClose, Lane::Queue, t, ctx));
                        rec.record(Event::instant(Phase::Dispatch, Lane::Worker(w as u32), t, ctx));
                    }
                }
                let run = workers[w].serve_obs(
                    size,
                    t,
                    &mut BatchObs { rec: &mut *rec, batch_id: bid, worker: w as u32, ids: &ids },
                );
                debug_assert!(run.start >= t && run.done.len() == size);
                stats[w].batches += 1;
                stats[w].images += size as u64;
                stats[w].busy += run.end - run.start;
                if let Some(o) = obs.as_deref_mut() {
                    o.meters.reg.inc(o.meters.batches);
                    o.sampler.b.on_batch(w, run.start, run.end);
                }
                for (m, &done) in members.iter().zip(&run.done) {
                    let record = RequestRecord {
                        id: m.id,
                        arrival: m.arrival,
                        dispatched: t,
                        service_start: run.start,
                        completed: done,
                        worker: w,
                        batch: size,
                    };
                    if let Some(o) = obs.as_deref_mut() {
                        o.meters.complete(&record);
                        o.sampler.complete_later(done, record.latency());
                    }
                    if rec.enabled() {
                        rec.record(Event::instant(
                            Phase::Complete,
                            Lane::Server,
                            done,
                            Ctx::request(m.id).with_batch(bid).with_worker(w as u32),
                        ));
                    }
                    completed.push(record);
                }
            }
            (None, None) => break,
            // The first arm's guard always accepts (Some, None).
            (Some(_), None) => unreachable!(),
        }
    }

    ServeOutcome { epoch, generated: n, completed, shed, workers: stats }
}
