//! `ncsw-serve` — deterministic online inference serving over the
//! simulated CPU/GPU/multi-VPU fleet.
//!
//! The paper's NCSw framework is batch/throughput-oriented (run 10 000
//! images, report img/s). This crate adds the online story the ROADMAP
//! north star asks for: open-loop request arrivals, admission control
//! with load shedding, deadline-aware dynamic batching, and SLO-aware
//! dispatch across heterogeneous workers — all running on the `desim`
//! virtual clock, so every run is deterministic, machine-independent,
//! and finishes in milliseconds of real time.
//!
//! ```text
//!  ArrivalProcess ──> admission (bounded queue, shed) ──> batcher
//!  (Poisson/MMPP/      │                                  (max_batch
//!   trace, seeded)     └─ ShedPolicy                       or max_wait)
//!                                                            │
//!                  DispatchPolicy (rr / least-outstanding / cost-aware)
//!                                                            │
//!            ServiceHook workers: IntelCpu · NvGpu · IntelVpu (n sticks)
//! ```
//!
//! Quick start:
//!
//! ```
//! use ncsw_serve::{serve, ArrivalProcess, FleetSpec, ServeConfig, ServeReport};
//! use ncsw::ModelBundle;
//! use vpu_nn::googlenet::Variant;
//!
//! let model = ModelBundle::googlenet_untrained(Variant::Tiny, 1);
//! let spec = FleetSpec::parse("cpu+gpu").unwrap();
//! let mut workers = spec.build(&model);
//! let cfg = ServeConfig::default();
//! let load = ArrivalProcess::Poisson { rate_per_sec: 50.0 };
//! let outcome = serve(&mut workers, &cfg, &load, 200);
//! let report = ServeReport::of(&outcome, &cfg);
//! assert_eq!(report.completed + report.shed, 200);
//! ```

pub mod fleet;
pub mod metrics;
pub mod server;
pub mod workload;

/// The log-bucketed histogram now lives in `ncsw-obs`; re-exported so
/// `ncsw_serve::histogram::LogHistogram` keeps resolving.
pub use ncsw_obs::histogram;

pub use fleet::{live_capacity_rps, live_preferred_batch, worker_rps, FleetSpec, WorkerSpec};
pub use metrics::{
    EnergyReport, FaultReport, GrayReport, Percentiles, ScalingReport, ServeReport, ShedBreakdown,
    WorkerEnergy, WorkerReport,
};
/// The decision half of the autoscaling loop lives in `ncsw-ctrl`;
/// re-exported so callers can build policies without a direct dep.
pub use ncsw_ctrl::{self as ctrl, ScaleDecision, ScaleSignals, ScalingPolicy};
pub use ncsw_obs::{
    FlightConfig, FlightRecorder, IncidentSnapshot, LogHistogram, SamplePolicy, SampleStats,
};
pub use server::{
    serve, serve_autoscaled, serve_autoscaled_observed, serve_observed, DispatchPolicy, FaultStats,
    GrayConfig, GrayStats, HedgeConfig, ObsConfig, OutageRecord, QuarantineConfig, RequestRecord,
    RobustConfig, ScalingConfig, ScalingStats, ServeConfig, ServeObservation, ServeOutcome,
    ShedCause, ShedPolicy, ShedRecord, WorkerStats,
};
pub use workload::ArrivalProcess;

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Duration;
    use ncsw::ModelBundle;
    use std::sync::OnceLock;
    use vpu_nn::googlenet::Variant;

    /// Shared tiny model: properties here are structural, not anchored to
    /// the paper's latencies, so the small cost profile is fine (and keeps
    /// the suite fast).
    fn model() -> &'static ModelBundle {
        static MODEL: OnceLock<ModelBundle> = OnceLock::new();
        MODEL.get_or_init(|| ModelBundle::googlenet_untrained(Variant::Tiny, 1))
    }

    fn run(fleet: &str, cfg: &ServeConfig, rate: f64, n: usize) -> (ServeOutcome, ServeReport) {
        let spec = FleetSpec::parse(fleet).unwrap();
        let mut workers = spec.build(model());
        let load = ArrivalProcess::Poisson { rate_per_sec: rate };
        let outcome = serve(&mut workers, cfg, &load, n);
        let report = ServeReport::of(&outcome, cfg);
        (outcome, report)
    }

    #[test]
    fn requests_are_conserved() {
        let cfg = ServeConfig { queue_capacity: 4, ..ServeConfig::default() };
        let (outcome, report) = run("cpu", &cfg, 5_000.0, 400);
        assert_eq!(outcome.completed.len() + outcome.shed.len(), 400);
        assert!(report.shed > 0, "overload must shed");
    }

    #[test]
    fn timestamps_are_causally_ordered() {
        let (outcome, _) = run("cpu+gpu+2xvpu", &ServeConfig::default(), 2_000.0, 300);
        for r in &outcome.completed {
            assert!(r.arrival <= r.dispatched, "dispatch before arrival: {r:?}");
            assert!(r.dispatched <= r.service_start, "start before dispatch: {r:?}");
            assert!(r.service_start < r.completed, "done before start: {r:?}");
        }
    }

    #[test]
    fn per_worker_completions_are_monotone() {
        let (outcome, _) = run("cpu+gpu", &ServeConfig::default(), 3_000.0, 300);
        let workers = outcome.workers.len();
        for w in 0..workers {
            let mut last = None;
            for r in outcome.completed.iter().filter(|r| r.worker == w) {
                if let Some(prev) = last {
                    assert!(r.completed >= prev, "worker {w} went backwards");
                }
                last = Some(r.completed);
            }
        }
    }

    #[test]
    fn formation_wait_respects_deadline() {
        let cfg = ServeConfig {
            max_wait: Duration::from_millis(5.0),
            max_batch: 64,
            queue_capacity: 1_000,
            ..ServeConfig::default()
        };
        let (outcome, _) = run("gpu", &cfg, 300.0, 300);
        for r in &outcome.completed {
            // A batch closes by deadline or earlier by fill; formation
            // wait can only exceed max_wait by worker-busy stalls, which
            // show up in queue_wait, not here... except when no worker
            // was free at the deadline. Bound it by deadline + one
            // service time.
            assert!(
                r.formation_wait() <= cfg.max_wait + r.service_time() * 4,
                "formation wait unbounded: {r:?}"
            );
        }
    }

    #[test]
    fn drop_oldest_sheds_stalest_first() {
        let cfg = ServeConfig {
            queue_capacity: 2,
            shed: ShedPolicy::DropOldest,
            ..ServeConfig::default()
        };
        let (outcome, _) = run("cpu", &cfg, 5_000.0, 200);
        assert!(!outcome.shed.is_empty());
        for s in &outcome.shed {
            assert!(s.shed_at >= s.arrival, "evicted before arriving: {s:?}");
        }
        // Evicted requests were older than the eviction instant implies.
        assert!(outcome.shed.iter().any(|s| s.shed_at > s.arrival));
    }

    #[test]
    fn policies_are_deterministic_and_distinct() {
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastOutstanding,
            DispatchPolicy::CostAware,
        ] {
            let cfg = ServeConfig { policy, ..ServeConfig::default() };
            let (a, _) = run("cpu+gpu+2xvpu", &cfg, 2_000.0, 250);
            let (b, _) = run("cpu+gpu+2xvpu", &cfg, 2_000.0, 250);
            let key = |o: &ServeOutcome| -> Vec<(u64, u64, usize)> {
                o.completed.iter().map(|r| (r.id, r.completed.nanos(), r.worker)).collect()
            };
            assert_eq!(key(&a), key(&b), "{policy:?} must be deterministic");
        }
    }

    #[test]
    fn observed_run_is_bit_identical_to_plain_run() {
        let cfg = ServeConfig { queue_capacity: 8, ..ServeConfig::default() };
        let (plain, _) = run("cpu+1xvpu", &cfg, 2_000.0, 200);
        let spec = FleetSpec::parse("cpu+1xvpu").unwrap();
        let mut workers = spec.build(model());
        let load = ArrivalProcess::Poisson { rate_per_sec: 2_000.0 };
        let (observed, _) =
            serve_observed(&mut workers, &cfg, &load, 200, &server::ObsConfig::default());
        assert_eq!(plain.completed, observed.completed, "instrumentation changed the outcome");
        assert_eq!(plain.shed, observed.shed);
    }

    #[test]
    fn observation_captures_chain_series_and_metrics() {
        let cfg = ServeConfig { queue_capacity: 8, ..ServeConfig::default() };
        let spec = FleetSpec::parse("cpu+2xvpu").unwrap();
        let mut workers = spec.build(model());
        let load = ArrivalProcess::Poisson { rate_per_sec: 2_000.0 };
        let (outcome, obs) =
            serve_observed(&mut workers, &cfg, &load, 200, &server::ObsConfig::default());

        // At least one VPU-served request must expose the full
        // Arrive→…→Complete phase chain with non-decreasing stamps.
        let vpu_worker = 1; // cpu is worker 0
        let chained = outcome
            .completed
            .iter()
            .filter(|r| r.worker == vpu_worker)
            .filter(|r| obs.events.request_chain(r.id).is_some())
            .count();
        assert!(chained > 0, "no request exposes the full phase chain");

        // Shed requests carry a Shed event.
        for s in &outcome.shed {
            assert!(
                obs.events.for_request(s.id).iter().any(|e| e.phase == ncsw_obs::Phase::Shed),
                "shed request {} has no Shed event",
                s.id
            );
        }

        // Time series: sampled, with one utilization column per worker.
        assert!(!obs.series.samples.is_empty(), "no samples");
        assert_eq!(obs.series.worker_labels.len(), workers.len());
        let csv = obs.series.csv();
        assert!(csv.starts_with("time_ms,queue_depth,inflight_batches,completed,shed,slo_burn"));
        assert!(csv.lines().next().unwrap().contains("util_cpu"), "{csv}");

        // Registry: conservation + latency histogram populated.
        let arrived = obs.registry.counter_value("requests.arrived").unwrap();
        let done = obs.registry.counter_value("requests.completed").unwrap();
        let rejected = obs.registry.counter_value("requests.shed.rejected").unwrap();
        let evicted = obs.registry.counter_value("requests.shed.evicted").unwrap();
        assert_eq!(arrived, 200);
        assert_eq!(done + rejected + evicted, 200);
        assert_eq!(done as usize, outcome.completed.len());
        assert_eq!(obs.registry.histogram_of("latency.e2e").unwrap().len(), done);
    }

    #[test]
    fn shed_breakdown_distinguishes_reject_from_eviction() {
        let reject = ServeConfig { queue_capacity: 2, ..ServeConfig::default() };
        let (_, rep) = run("cpu", &reject, 5_000.0, 200);
        assert!(rep.shed_by_policy.rejected > 0);
        assert_eq!(rep.shed_by_policy.evicted, 0);
        assert_eq!(rep.shed_by_policy.rejected + rep.shed_by_policy.evicted, rep.shed);

        let evict = ServeConfig {
            queue_capacity: 2,
            shed: ShedPolicy::DropOldest,
            ..ServeConfig::default()
        };
        let (outcome, rep) = run("cpu", &evict, 5_000.0, 200);
        assert!(rep.shed_by_policy.evicted > 0);
        assert_eq!(rep.shed_by_policy.rejected, 0);
        assert!(rep.shed_by_policy.evicted_wait_max_ms > 0.0, "evictions burn queue time");
        assert!(outcome.shed.iter().all(|s| s.cause == ShedCause::Evicted));
    }

    /// A policy that never acts: an autoscaled run driven by it must be
    /// indistinguishable from a plain static run.
    struct HoldAll;
    impl ScalingPolicy for HoldAll {
        fn name(&self) -> &'static str {
            "hold-all"
        }
        fn decide(&mut self, _s: &ScaleSignals) -> ScaleDecision {
            ScaleDecision::Hold
        }
    }

    fn autoscale_run(
        fleet: &str,
        rate: f64,
        n: usize,
        policy: &mut dyn ScalingPolicy,
    ) -> ServeOutcome {
        let spec = FleetSpec::parse(fleet).unwrap();
        let mut workers = spec.build(model());
        let cfg = ServeConfig::default();
        let scaling = ScalingConfig { elastic: spec.elastic_workers(), ..Default::default() };
        let load = ArrivalProcess::Poisson { rate_per_sec: rate };
        server::serve_autoscaled(&mut workers, &cfg, &load, n, &scaling, policy)
    }

    #[test]
    fn a_hold_policy_is_passive_and_controller_off_paths_are_unchanged() {
        let (plain, _) = run("4*vpu", &ServeConfig::default(), 100.0, 200);
        let held = autoscale_run("4*vpu", 100.0, 200, &mut HoldAll);
        assert_eq!(plain.completed, held.completed, "holding controller changed the run");
        assert_eq!(plain.shed, held.shed);
        assert_eq!(plain.faults, held.faults);
        assert!(plain.scaling.is_none(), "static run must not carry a scaling block");
        let stats = held.scaling.as_ref().expect("autoscaled run carries scaling stats");
        assert_eq!(stats.policy, "hold-all");
        assert_eq!((stats.scale_ups, stats.scale_downs), (0, 0));
        assert!(stats.ticks > 0, "controller never ticked");
        // With nothing ever gated, the ledger reclaims nothing.
        let horizon = held.energy_horizon();
        assert_eq!(held.energy.reclaimed_pj(horizon), 0);
    }

    #[test]
    fn autoscaled_runs_are_deterministic_per_policy() {
        for name in ncsw_ctrl::POLICY_NAMES {
            let mut p1 = ncsw_ctrl::policy(name).unwrap();
            let mut p2 = ncsw_ctrl::policy(name).unwrap();
            let a = autoscale_run("8*vpu", 15.0, 150, p1.as_mut());
            let b = autoscale_run("8*vpu", 15.0, 150, p2.as_mut());
            assert_eq!(a.completed, b.completed, "{name} run not deterministic");
            assert_eq!(a.shed, b.shed, "{name}");
            assert_eq!(a.scaling, b.scaling, "{name} scaling stats not deterministic");
        }
    }

    #[test]
    fn reactive_autoscaling_reclaims_idle_energy_at_low_load() {
        let mut p = ncsw_ctrl::policy("reactive").unwrap();
        let outcome = autoscale_run("8*vpu", 15.0, 200, p.as_mut());
        let stats = outcome.scaling.as_ref().unwrap();
        assert!(stats.scale_downs > 0, "low load must drain sticks: {stats:?}");
        let horizon = outcome.energy_horizon();
        assert!(outcome.energy.reclaimed_pj(horizon) > 0, "gating must reclaim idle energy");
        // Every request still gets served or shed, and the report's
        // scaling block mirrors the ledger.
        assert_eq!(outcome.completed.len() + outcome.shed.len(), 200);
        let report = ServeReport::of(&outcome, &ServeConfig::default());
        let block = report.scaling.expect("scaling block");
        assert_eq!(block.reclaimed_pj, outcome.energy.reclaimed_pj(horizon));
        assert!(block.stick_seconds < block.static_stick_seconds, "{block:?}");
    }

    #[test]
    fn cost_aware_beats_round_robin_on_heterogeneous_fleet() {
        let mk = |policy| ServeConfig { policy, ..ServeConfig::default() };
        // The 1-stick VPU is far slower than the hosts; round-robin gives
        // it an equal share and pays for it in the tail.
        let (_, rr) = run("cpu+gpu+1xvpu", &mk(DispatchPolicy::RoundRobin), 1_500.0, 400);
        let (_, ca) = run("cpu+gpu+1xvpu", &mk(DispatchPolicy::CostAware), 1_500.0, 400);
        assert!(
            ca.latency.p99_ms <= rr.latency.p99_ms,
            "cost-aware p99 {} > round-robin p99 {}",
            ca.latency.p99_ms,
            rr.latency.p99_ms
        );
    }
}
