//! Property tests of the serving loop: conservation, causal ordering,
//! per-worker virtual-clock monotonicity — over random fleets, loads,
//! queue bounds, batcher limits, shed policies, and seeds.

use desim::Duration;
use ncsw::ModelBundle;
use ncsw_serve::{serve, ArrivalProcess, FleetSpec, ServeConfig, ShedPolicy};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::OnceLock;
use vpu_nn::googlenet::Variant;

/// Structural properties hold for any model; the tiny variant keeps the
/// suite fast in debug builds.
fn model() -> &'static ModelBundle {
    static MODEL: OnceLock<ModelBundle> = OnceLock::new();
    MODEL.get_or_init(|| ModelBundle::googlenet_untrained(Variant::Tiny, 1))
}

const FLEETS: [&str; 5] = ["cpu", "gpu", "cpu+gpu", "2xvpu", "cpu+gpu+2xvpu"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation — every generated request is accounted for exactly
    /// once (the loop drains fully, so nothing is in flight at exit) —
    /// plus causal ordering of each request's lifecycle and monotone
    /// completions per worker.
    #[test]
    fn serving_invariants(
        fleet_idx in 0usize..FLEETS.len(),
        rate in 20.0f64..5_000.0,
        n in 50usize..250,
        cap in 1usize..64,
        max_batch in 1usize..16,
        seed in 0u64..1_000,
    ) {
        let cfg = ServeConfig {
            queue_capacity: cap,
            shed: if seed % 2 == 0 { ShedPolicy::Reject } else { ShedPolicy::DropOldest },
            max_batch,
            max_wait: Duration::from_millis(1.0 + (seed % 80) as f64),
            seed,
            ..ServeConfig::default()
        };
        let spec = FleetSpec::parse(FLEETS[fleet_idx]).unwrap();
        let mut workers = spec.build(model());
        let load = ArrivalProcess::Poisson { rate_per_sec: rate };
        let outcome = serve(&mut workers, &cfg, &load, n);

        // Conservation: admitted = completed + shed, no request lost or
        // duplicated, no request invented.
        prop_assert_eq!(outcome.generated, n);
        prop_assert_eq!(outcome.completed.len() + outcome.shed.len(), n);
        let mut ids = HashSet::new();
        for id in outcome
            .completed
            .iter()
            .map(|r| r.id)
            .chain(outcome.shed.iter().map(|s| s.id))
        {
            prop_assert!(ids.insert(id), "request {} accounted twice", id);
            prop_assert!((id as usize) < n, "unknown request id {}", id);
        }

        // Causality: arrival -> batch close -> service start -> result.
        for r in &outcome.completed {
            prop_assert!(r.arrival >= outcome.epoch);
            prop_assert!(r.arrival <= r.dispatched, "dispatched before arrival: {:?}", r);
            prop_assert!(r.dispatched <= r.service_start, "started before dispatch: {:?}", r);
            prop_assert!(r.service_start < r.completed, "completed before start: {:?}", r);
            prop_assert!(r.batch >= 1 && r.batch <= max_batch);
            prop_assert!(r.worker < outcome.workers.len());
        }
        for s in &outcome.shed {
            prop_assert!(s.shed_at >= s.arrival, "shed before arrival: {:?}", s);
        }

        // Virtual-clock monotonicity: each worker's completions never
        // move backwards (devices self-serialize).
        for w in 0..outcome.workers.len() {
            let mut last = None;
            for r in outcome.completed.iter().filter(|r| r.worker == w) {
                if let Some(prev) = last {
                    prop_assert!(r.completed >= prev, "worker {} clock went backwards", w);
                }
                last = Some(r.completed);
            }
        }
    }
}
