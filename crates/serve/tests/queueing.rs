//! Queueing-theory sanity: with batching disabled the serving loop is an
//! M/D/1 queue (Poisson arrivals, near-deterministic service, one
//! server), so the mean wait must match the Pollaczek–Khinchine closed
//! form Wq = rho / (2 (1 - rho)) * S at low utilization.

use ncsw::ModelBundle;
use ncsw_serve::{serve, ArrivalProcess, FleetSpec, ServeConfig};
use vpu_nn::googlenet::Variant;

fn mean_wait_ratio(rho: f64, n: usize) -> f64 {
    let model = ModelBundle::googlenet_untrained(Variant::Tiny, 1);
    let mut workers = FleetSpec::parse("cpu").unwrap().build(&model);
    let service_s = workers[0].estimate(1).as_secs();
    let cfg = ServeConfig {
        queue_capacity: usize::MAX >> 1,
        max_batch: 1, // no batching: every request is its own batch
        seed: 42,
        ..ServeConfig::default()
    };
    let load = ArrivalProcess::Poisson { rate_per_sec: rho / service_s };
    let outcome = serve(&mut workers, &cfg, &load, n);
    assert!(outcome.shed.is_empty(), "unbounded queue must not shed");
    assert_eq!(outcome.completed.len(), n);
    let mean_wait =
        outcome.completed.iter().map(|r| (r.service_start - r.arrival).as_secs()).sum::<f64>()
            / n as f64;
    let expected = rho / (2.0 * (1.0 - rho)) * service_s;
    mean_wait / expected
}

#[test]
fn md1_wait_matches_closed_form_at_low_utilization() {
    // The simulated CPU carries 0.8% service-time jitter, so this is
    // M/G/1 with a tiny coefficient of variation — within a few percent
    // of M/D/1. The band absorbs that plus finite-sample error.
    let ratio = mean_wait_ratio(0.3, 4_000);
    assert!((0.85..1.20).contains(&ratio), "M/D/1 mean wait off: measured/expected = {ratio:.3}");
}

#[test]
fn md1_wait_grows_with_utilization() {
    // Closed form is normalized out, so equal ratios at different rho
    // mean the simulated wait actually scaled as rho/(1-rho) predicts.
    let lo = mean_wait_ratio(0.15, 4_000);
    let hi = mean_wait_ratio(0.55, 4_000);
    assert!((0.8..1.3).contains(&lo), "rho=0.15 ratio {lo:.3}");
    assert!((0.8..1.3).contains(&hi), "rho=0.55 ratio {hi:.3}");
}
