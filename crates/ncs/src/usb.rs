//! USB 3.0 topology model.
//!
//! The paper's testbed (Fig. 5) connects 8 NCS devices: 2 on motherboard
//! root ports and 6 through two external USB 3.0 hubs (3 each). Bulk
//! transfers to hub-attached devices pass store-and-forward through the
//! hub's uplink before crossing the root controller, so simultaneous
//! loads to sticks on the same hub serialize twice — the "data
//! transferring" penalty the paper observes in multi-VPU scaling.

use desim::resource::Busy;
use desim::{Duration, FifoResource, SimTime};
use serde::{Deserialize, Serialize};

/// Where a device is plugged in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UsbPort {
    /// Directly on a root (motherboard) port.
    Root,
    /// Behind external hub `hub_index`.
    Hub(usize),
}

/// Timing parameters of the bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsbConfig {
    /// Effective bulk throughput of the root controller, bytes/s.
    /// (5 Gb/s signalling lands near 450 MB/s of bulk payload.)
    pub root_bandwidth: f64,
    /// Effective bulk throughput of a hub uplink, bytes/s.
    pub hub_bandwidth: f64,
    /// Per-transfer protocol/command overhead on the root, ns.
    pub command_overhead_ns: u64,
    /// Extra per-transfer latency added by a hub hop, ns.
    pub hub_latency_ns: u64,
    /// Probability a bulk transfer hits a transient error and the driver
    /// retries it (NCS sticks are known for these under hub contention).
    /// 0 disables fault injection (the default).
    pub error_rate: f64,
    /// Driver backoff before a retry, ns.
    pub retry_penalty_ns: u64,
    /// Seed of the fault-injection stream.
    pub fault_seed: u64,
    /// What-if scaling of host→device tensor transfers (`0.5` = a bus
    /// twice as fast on writes). Applies to the wire + command time of
    /// scaled transfers only; boot-time firmware/graph uploads always
    /// run at `1.0`. `1.0` is byte-identical to a config without the
    /// knob — the causal profiler's passivity guarantee.
    pub write_scale: f64,
    /// What-if scaling of device→host result transfers.
    pub read_scale: f64,
}

impl Default for UsbConfig {
    fn default() -> Self {
        UsbConfig {
            root_bandwidth: 450e6,
            hub_bandwidth: 450e6,
            command_overhead_ns: 100_000,
            hub_latency_ns: 50_000,
            error_rate: 0.0,
            retry_penalty_ns: 2_000_000,
            fault_seed: 2012,
            write_scale: 1.0,
            read_scale: 1.0,
        }
    }
}

/// One resource occupancy recorded by the bus tap: which leg of the
/// fabric was held (`hub: None` = the root controller) over
/// `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapSpan {
    pub hub: Option<usize>,
    pub start: SimTime,
    pub end: SimTime,
}

/// The host's USB fabric: one root controller, any number of hubs.
#[derive(Debug, Clone)]
pub struct UsbBus {
    cfg: UsbConfig,
    root: FifoResource,
    hubs: Vec<FifoResource>,
    transfers: u64,
    errors: u64,
    tap: Option<Vec<TapSpan>>,
}

impl UsbBus {
    pub fn new(cfg: UsbConfig, hub_count: usize) -> Self {
        UsbBus {
            cfg,
            root: FifoResource::new("usb-root"),
            hubs: (0..hub_count).map(|i| FifoResource::new(format!("usb-hub{i}"))).collect(),
            transfers: 0,
            errors: 0,
            tap: None,
        }
    }

    /// Enable/disable the occupancy tap. Disabled (the default) costs
    /// nothing; enabled, every hub/root leg of every transfer is
    /// recorded until drained with [`UsbBus::take_tap`].
    pub fn set_tap(&mut self, on: bool) {
        self.tap = if on { Some(Vec::new()) } else { None };
    }

    /// Drain spans recorded since the last call (empty if tap is off).
    pub fn take_tap(&mut self) -> Vec<TapSpan> {
        match &mut self.tap {
            Some(spans) => std::mem::take(spans),
            None => Vec::new(),
        }
    }

    /// Transfers completed (including retried ones, once).
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Transient errors injected so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    pub fn hub_count(&self) -> usize {
        self.hubs.len()
    }

    pub fn config(&self) -> &UsbConfig {
        &self.cfg
    }

    /// Move `bytes` between host and a device on `port`, starting no
    /// earlier than `ready`. Returns the end-to-end busy interval.
    ///
    /// With fault injection enabled, a transfer may hit up to three
    /// transient errors, each costing the retry backoff plus a second
    /// pass over the wire — deterministic per `(fault_seed, transfer#)`.
    pub fn transfer(&mut self, port: UsbPort, ready: SimTime, bytes: u64) -> Busy {
        self.transfer_scaled(port, ready, bytes, 1.0)
    }

    /// [`UsbBus::transfer`] with the wire + command time scaled by the
    /// what-if factor (callers pass [`UsbConfig::write_scale`] /
    /// [`UsbConfig::read_scale`] per direction). Retry backoff is driver
    /// time and stays unscaled; the retried wire pass scales.
    pub fn transfer_scaled(&mut self, port: UsbPort, ready: SimTime, bytes: u64, f: f64) -> Busy {
        use rand::Rng;
        let seq = self.transfers;
        self.transfers += 1;
        let mut busy = self.transfer_once(port, ready, bytes, f);
        if self.cfg.error_rate > 0.0 {
            let mut stream = vpu_num::rng::indexed_stream(self.cfg.fault_seed, "usb-fault", seq);
            for _attempt in 0..3 {
                if stream.gen::<f64>() >= self.cfg.error_rate {
                    break;
                }
                self.errors += 1;
                let retry_at = busy.end + Duration::from_nanos(self.cfg.retry_penalty_ns);
                let retry = self.transfer_once(port, retry_at, bytes, f);
                busy = Busy { start: busy.start, end: retry.end };
            }
        }
        busy
    }

    /// `1.0` bypasses the multiply entirely, so an identity what-if plan
    /// is byte-identical to the unscaled bus.
    fn scaled(service: Duration, f: f64) -> Duration {
        if f == 1.0 {
            service
        } else {
            service * f
        }
    }

    fn transfer_once(&mut self, port: UsbPort, ready: SimTime, bytes: u64, f: f64) -> Busy {
        let mut t = ready;
        let mut start = None;
        if let UsbPort::Hub(h) = port {
            assert!(h < self.hubs.len(), "hub {h} not present (have {})", self.hubs.len());
            let service = Self::scaled(
                Duration::from_nanos(self.cfg.hub_latency_ns)
                    + Duration::for_bytes(bytes, self.cfg.hub_bandwidth),
                f,
            );
            let busy = self.hubs[h].acquire(t, service);
            if let Some(tap) = &mut self.tap {
                tap.push(TapSpan { hub: Some(h), start: busy.start, end: busy.end });
            }
            start = Some(busy.start);
            t = busy.end;
        }
        let service = Self::scaled(
            Duration::from_nanos(self.cfg.command_overhead_ns)
                + Duration::for_bytes(bytes, self.cfg.root_bandwidth),
            f,
        );
        let busy = self.root.acquire(t, service);
        if let Some(tap) = &mut self.tap {
            tap.push(TapSpan { hub: None, start: busy.start, end: busy.end });
        }
        Busy { start: start.unwrap_or(busy.start), end: busy.end }
    }

    /// Total busy time on the root controller (utilization probe).
    pub fn root_busy(&self) -> Duration {
        self.root.busy_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> UsbBus {
        UsbBus::new(UsbConfig::default(), 2)
    }

    #[test]
    fn root_transfer_time() {
        let mut b = bus();
        // 450 KB at 450 MB/s = 1 ms, plus 0.1 ms command overhead.
        let busy = b.transfer(UsbPort::Root, SimTime(0), 450_000);
        assert_eq!(busy.end - busy.start, Duration::from_millis(1.1));
    }

    #[test]
    fn hub_adds_store_and_forward() {
        let mut direct = bus();
        let mut hubbed = bus();
        let d = direct.transfer(UsbPort::Root, SimTime(0), 450_000);
        let h = hubbed.transfer(UsbPort::Hub(0), SimTime(0), 450_000);
        assert!(h.end - h.start > d.end - d.start, "hub path must be slower");
    }

    #[test]
    fn root_serializes_concurrent_loads() {
        let mut b = bus();
        let a = b.transfer(UsbPort::Root, SimTime(0), 450_000);
        let c = b.transfer(UsbPort::Root, SimTime(0), 450_000);
        assert!(c.start >= a.end, "second root transfer must queue");
        let _ = Duration::from_nanos(1);
    }

    #[test]
    fn same_hub_devices_contend_twice() {
        let mut b = bus();
        let a = b.transfer(UsbPort::Hub(0), SimTime(0), 450_000);
        let c = b.transfer(UsbPort::Hub(0), SimTime(0), 450_000);
        // Second transfer waits for the first's hub occupancy.
        assert!(c.start >= a.start + Duration::from_millis(1.0));
    }

    #[test]
    fn different_hubs_overlap_on_uplink() {
        let mut b = bus();
        let a = b.transfer(UsbPort::Hub(0), SimTime(0), 450_000);
        let c = b.transfer(UsbPort::Hub(1), SimTime(0), 450_000);
        // Hub stages overlap; only the root hop serializes.
        assert!(c.end < a.end + Duration::from_millis(1.2));
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn missing_hub_panics() {
        bus().transfer(UsbPort::Hub(7), SimTime(0), 1);
    }

    #[test]
    fn zero_byte_command_costs_only_overhead() {
        let mut b = bus();
        let busy = b.transfer(UsbPort::Root, SimTime(0), 0);
        assert_eq!(busy.end - busy.start, Duration::from_nanos(100_000));
    }

    #[test]
    fn fault_injection_slows_transfers_deterministically() {
        let faulty = UsbConfig { error_rate: 0.5, ..UsbConfig::default() };
        let mut a = UsbBus::new(faulty.clone(), 0);
        let mut b = UsbBus::new(faulty, 0);
        let mut clean = UsbBus::new(UsbConfig::default(), 0);
        let mut slow_total = Duration::ZERO;
        let mut clean_total = Duration::ZERO;
        for i in 0..50u64 {
            let t = SimTime(i * 10_000_000);
            let fa = a.transfer(UsbPort::Root, t, 450_000);
            let fb = b.transfer(UsbPort::Root, t, 450_000);
            assert_eq!(fa, fb, "fault stream must be deterministic");
            slow_total += fa.end - fa.start;
            clean_total += {
                let c = clean.transfer(UsbPort::Root, t, 450_000);
                c.end - c.start
            };
        }
        assert!(a.errors() > 5, "expected injected errors, got {}", a.errors());
        assert!(slow_total > clean_total, "faults must cost time");
        assert_eq!(clean.errors(), 0);
    }

    #[test]
    fn tap_records_hub_and_root_legs() {
        let mut b = bus();
        b.transfer(UsbPort::Root, SimTime(0), 450_000);
        assert!(b.take_tap().is_empty(), "tap off by default");
        b.set_tap(true);
        let busy = b.transfer(UsbPort::Hub(1), SimTime(0), 450_000);
        let spans = b.take_tap();
        assert_eq!(spans.len(), 2, "hub leg + root leg");
        assert_eq!(spans[0].hub, Some(1));
        assert_eq!(spans[1].hub, None);
        assert_eq!(spans[0].start, busy.start);
        assert_eq!(spans[1].end, busy.end);
        assert!(spans[1].start >= spans[0].end, "store-and-forward order");
        assert!(b.take_tap().is_empty(), "drained");
    }

    #[test]
    fn tap_does_not_change_timing() {
        let mut plain = bus();
        let mut tapped = bus();
        tapped.set_tap(true);
        for i in 0..10u64 {
            let t = SimTime(i * 500_000);
            assert_eq!(
                plain.transfer(UsbPort::Hub(0), t, 200_000),
                tapped.transfer(UsbPort::Hub(0), t, 200_000)
            );
        }
    }

    #[test]
    fn fault_free_default() {
        let mut b = bus();
        for i in 0..100u64 {
            b.transfer(UsbPort::Root, SimTime(i * 2_000_000), 450_000);
        }
        assert_eq!(b.errors(), 0);
        assert_eq!(b.transfers(), 100);
    }
}
