//! One Neural Compute Stick: firmware, RISC run queue, embedded Myriad 2.

use crate::usb::UsbPort;
use desim::{Duration, FifoResource, SimTime};
use myriad2::exec::NetworkRun;
use myriad2::{Myriad2, Myriad2Config};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use vpu_nn::cost::NetworkCost;
use vpu_num::f16;
use vpu_tensor::Tensor;

/// Stick-level parameters (on top of the chip's own config).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NcsConfig {
    pub chip: Myriad2Config,
    /// Firmware upload + RTOS boot after `mvncOpenDevice` (~0.9 s).
    pub firmware_boot: Duration,
    /// LEON command processing per queue operation, ns. **Calibrated**
    /// with the USB constants so one GoogLeNet inference totals 100.7 ms.
    pub risc_cmd_overhead_ns: u64,
    /// Maximum inferences in flight (NCSDK v1 allows 2).
    pub fifo_depth: usize,
    /// Stick peak power (USB interface + DDR + chip), Watts. The paper
    /// quotes 2.5 W peak for the NCS versus 0.9 W chip TDP.
    pub peak_power_w: f64,
    /// What-if scaling of on-chip execution time (`0.5` = a chip twice
    /// as fast), applied by constructing the Myriad with
    /// [`Myriad2Config::time_scaled`] so every internal unit clock
    /// agrees. Chip energy follows the shorter busy spans. `1.0` is
    /// byte-identical to a config without the knob — the causal
    /// profiler's passivity guarantee.
    pub exec_scale: f64,
}

impl Default for NcsConfig {
    fn default() -> Self {
        NcsConfig {
            chip: Myriad2Config::default(),
            firmware_boot: Duration::from_millis(900.0),
            risc_cmd_overhead_ns: 550_000,
            fifo_depth: 2,
            peak_power_w: 2.5,
            exec_scale: 1.0,
        }
    }
}

/// Device lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceState {
    Closed,
    Booting,
    Ready,
}

/// An inference accepted by the stick but not yet collected by the host.
#[derive(Debug, Clone)]
pub struct Pending {
    /// Instant the result is ready for USB readback.
    pub completion: SimTime,
    pub run: NetworkRun,
    /// Real FP16 output when the caller executes numerics.
    pub output: Option<Tensor<f16>>,
}

/// Errors surfaced by the device (mirrors `mvncStatus` codes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Operation on a closed/unbooted device.
    NotOpen,
    /// `load_tensor`/`get_result` without an allocated graph.
    NoGraph,
    /// `get_result` with nothing in flight.
    NothingQueued,
    /// Graph file exceeds device DDR.
    GraphTooLarge,
}

/// One simulated stick.
#[derive(Debug, Clone)]
pub struct NcsDevice {
    cfg: NcsConfig,
    chip: Myriad2,
    port: UsbPort,
    state: DeviceState,
    ready_at: SimTime,
    graph: Option<Arc<NetworkCost>>,
    risc: FifoResource,
    pending: VecDeque<Pending>,
    inferences: u64,
}

impl NcsDevice {
    pub fn new(index: usize, port: UsbPort, cfg: NcsConfig) -> Self {
        NcsDevice {
            chip: Myriad2::with_lane(cfg.chip.time_scaled(cfg.exec_scale), format!("vpu{index}")),
            risc: FifoResource::new(format!("risc{index}")),
            cfg,
            port,
            state: DeviceState::Closed,
            ready_at: SimTime::ZERO,
            graph: None,
            pending: VecDeque::new(),
            inferences: 0,
        }
    }

    pub fn port(&self) -> UsbPort {
        self.port
    }

    pub fn state(&self) -> DeviceState {
        self.state
    }

    pub fn config(&self) -> &NcsConfig {
        &self.cfg
    }

    pub fn chip(&self) -> &Myriad2 {
        &self.chip
    }

    pub fn chip_mut(&mut self) -> &mut Myriad2 {
        &mut self.chip
    }

    pub fn inferences_completed(&self) -> u64 {
        self.inferences
    }

    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Begin firmware boot (the USB transfer of the firmware image is
    /// charged by the API layer); device is usable from the returned time.
    pub fn boot(&mut self, at: SimTime) -> SimTime {
        self.state = DeviceState::Ready;
        self.ready_at = at + self.cfg.firmware_boot;
        self.ready_at
    }

    /// Store the compiled graph (weights already transferred over USB by
    /// the API layer). Graph swaps are allowed; the old one is dropped.
    pub fn alloc_graph(
        &mut self,
        at: SimTime,
        cost: Arc<NetworkCost>,
    ) -> Result<SimTime, DeviceError> {
        if self.state != DeviceState::Ready {
            return Err(DeviceError::NotOpen);
        }
        if !self.chip.load_graph(cost.total_weight_bytes()) {
            return Err(DeviceError::GraphTooLarge);
        }
        let done = SimTime::max_of(at, self.ready_at)
            + Duration::from_nanos(self.cfg.risc_cmd_overhead_ns);
        self.graph = Some(cost);
        Ok(done)
    }

    /// Earliest time a new `load_tensor` may be accepted given the FIFO
    /// depth: with the queue full, the host blocks until a slot frees.
    pub fn accept_ready(&self, at: SimTime) -> SimTime {
        let mut t = SimTime::max_of(at, self.ready_at);
        if self.pending.len() >= self.cfg.fifo_depth {
            let idx = self.pending.len() - self.cfg.fifo_depth;
            t = SimTime::max_of(t, self.pending[idx].completion);
        }
        t
    }

    /// Input tensor arrived on-device at `arrival` (USB transfer done):
    /// queue the inference through the RISC scheduler and the chip.
    /// Returns the completion instant. `output` carries real numerics
    /// when the caller executes them.
    pub fn submit(
        &mut self,
        arrival: SimTime,
        output: Option<Tensor<f16>>,
    ) -> Result<SimTime, DeviceError> {
        if self.state != DeviceState::Ready {
            return Err(DeviceError::NotOpen);
        }
        let cost = self.graph.clone().ok_or(DeviceError::NoGraph)?;
        let cmd = Duration::from_nanos(self.cfg.risc_cmd_overhead_ns);
        let sched = self.risc.acquire(SimTime::max_of(arrival, self.ready_at), cmd);
        let run = self.chip.run_cost(&cost, sched.end);
        // Completion notification also crosses the RISC processors.
        let notify = self.risc.acquire(run.end, cmd);
        let completion = notify.end;
        self.pending.push_back(Pending { completion, run, output });
        self.inferences += 1;
        Ok(completion)
    }

    /// Collect the oldest in-flight inference (FIFO order, as the NCSDK
    /// returns results). The caller blocks until its completion.
    pub fn collect(&mut self) -> Result<Pending, DeviceError> {
        if self.state != DeviceState::Ready {
            return Err(DeviceError::NotOpen);
        }
        self.pending.pop_front().ok_or(DeviceError::NothingQueued)
    }

    /// Per-layer profile of the most recent completed run, like
    /// `mvncGetGraphOption(..., TIME_TAKEN)`.
    pub fn last_run(&self) -> Option<&NetworkRun> {
        self.pending.back().map(|p| &p.run)
    }

    /// Resize the inference FIFO (NCSDK v2 allows configurable depths;
    /// v1 fixed it at 2). Applies to subsequent loads.
    pub fn set_fifo_depth(&mut self, depth: usize) {
        assert!(depth >= 1, "FIFO depth must be positive");
        self.cfg.fifo_depth = depth;
    }

    /// Steady-state junction temperature at the chip's lifetime-average
    /// power — the `NC_DEVICE_THERMAL_STATS` analogue. Ambient when the
    /// device has not run yet.
    pub fn thermal_c(&self) -> f64 {
        let thermal = myriad2::thermal::ThermalModel::default();
        let activity = self.chip.lifetime_activity();
        if activity.span == Duration::ZERO {
            return thermal.t_ambient;
        }
        thermal.steady_state_of(&activity, self.chip.power_model())
    }

    /// True if the stick is at or past the vendor throttle threshold.
    pub fn thermal_throttled(&self) -> bool {
        self.thermal_c() >= myriad2::thermal::ThermalModel::default().t_throttle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpu_nn::googlenet;

    fn cost() -> Arc<NetworkCost> {
        Arc::new(NetworkCost::of::<f16>(&googlenet::full()))
    }

    fn ready_device() -> NcsDevice {
        let mut d = NcsDevice::new(0, UsbPort::Root, NcsConfig::default());
        d.boot(SimTime::ZERO);
        d.alloc_graph(SimTime::ZERO, cost()).unwrap();
        d
    }

    #[test]
    fn lifecycle_enforced() {
        let mut d = NcsDevice::new(0, UsbPort::Root, NcsConfig::default());
        assert_eq!(d.state(), DeviceState::Closed);
        assert_eq!(d.alloc_graph(SimTime::ZERO, cost()), Err(DeviceError::NotOpen));
        assert_eq!(d.submit(SimTime::ZERO, None), Err(DeviceError::NotOpen));
        let up = d.boot(SimTime::ZERO);
        assert_eq!(up, SimTime::ZERO + Duration::from_millis(900.0));
        assert_eq!(d.state(), DeviceState::Ready);
        // No graph yet.
        assert_eq!(d.submit(up, None), Err(DeviceError::NoGraph));
    }

    #[test]
    fn boot_delay_gates_first_inference() {
        let mut d = NcsDevice::new(0, UsbPort::Root, NcsConfig::default());
        d.boot(SimTime::ZERO);
        d.alloc_graph(SimTime::ZERO, cost()).unwrap();
        let done = d.submit(SimTime::ZERO, None).unwrap();
        assert!(done > SimTime::ZERO + Duration::from_millis(900.0));
    }

    #[test]
    fn single_inference_latency() {
        let mut d = ready_device();
        let t0 = SimTime::ZERO + Duration::from_secs(2.0);
        let done = d.submit(t0, None).unwrap();
        let ms = (done - t0).as_millis();
        // Chip ~98.2 ms plus two RISC command hops.
        assert!((98.0..101.5).contains(&ms), "device latency {ms} ms");
    }

    #[test]
    fn fifo_order_and_collection() {
        let mut d = ready_device();
        let t0 = SimTime::ZERO + Duration::from_secs(2.0);
        let c1 = d.submit(t0, None).unwrap();
        let c2 = d.submit(t0, None).unwrap();
        assert!(c2 > c1, "second inference completes later");
        assert_eq!(d.in_flight(), 2);
        let p1 = d.collect().unwrap();
        assert_eq!(p1.completion, c1);
        let p2 = d.collect().unwrap();
        assert_eq!(p2.completion, c2);
        assert_eq!(d.collect().unwrap_err(), DeviceError::NothingQueued);
        assert_eq!(d.inferences_completed(), 2);
    }

    #[test]
    fn fifo_depth_blocks_third_load() {
        let d0 = ready_device();
        let mut d = d0;
        let t0 = SimTime::ZERO + Duration::from_secs(2.0);
        assert_eq!(d.accept_ready(t0), t0);
        let c1 = d.submit(t0, None).unwrap();
        d.submit(t0, None).unwrap();
        // Queue is full (depth 2): next load gated on the first completion.
        assert_eq!(d.accept_ready(t0), c1);
        d.collect().unwrap();
        assert_eq!(d.accept_ready(t0), t0);
    }

    #[test]
    fn graph_too_large_rejected() {
        let mut d = NcsDevice::new(0, UsbPort::Root, NcsConfig::default());
        d.boot(SimTime::ZERO);
        let mut big = NetworkCost::of::<f16>(&googlenet::tiny());
        big.total_params = 3 << 30; // 6 GB of fp16 weights
        assert_eq!(d.alloc_graph(SimTime::ZERO, Arc::new(big)), Err(DeviceError::GraphTooLarge));
    }

    #[test]
    fn thermal_stats_track_load() {
        let mut d = ready_device();
        let ambient = d.thermal_c();
        assert_eq!(ambient, 25.0, "idle device reads ambient");
        // Run back-to-back inferences: the chip is ~100% duty-cycled.
        let t0 = SimTime::ZERO + Duration::from_secs(2.0);
        let mut t = t0;
        for _ in 0..4 {
            t = d.submit(t, None).unwrap();
            d.collect().unwrap();
        }
        let hot = d.thermal_c();
        assert!(hot > ambient + 5.0, "busy stick must warm up: {hot}");
        assert!(!d.thermal_throttled(), "inference load must not throttle ({hot} °C)");
    }

    #[test]
    fn output_round_trips_through_pending() {
        let mut d = ready_device();
        let out = Tensor::<f16>::zeros(vpu_tensor::Shape::vector(1, 4));
        d.submit(SimTime::ZERO + Duration::from_secs(2.0), Some(out.clone())).unwrap();
        let p = d.collect().unwrap();
        assert_eq!(p.output, Some(out));
    }
}
