//! Multi-stick testbeds: enumeration and USB topology construction.

use crate::device::{NcsConfig, NcsDevice};
use crate::usb::{UsbBus, UsbConfig, UsbPort};
use serde::{Deserialize, Serialize};

/// How sticks are attached to the host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// Every stick on its own root port (idealized).
    AllRoot,
    /// The paper's Fig. 5 testbed: the first two sticks on motherboard
    /// root ports, the remainder packed three-per-hub on external hubs.
    PaperTestbed,
    /// Explicit port assignment.
    Custom(Vec<UsbPort>),
}

impl Topology {
    /// Port of device `i` out of `n`, and the number of hubs needed.
    pub fn ports(&self, n: usize) -> (Vec<UsbPort>, usize) {
        match self {
            Topology::AllRoot => (vec![UsbPort::Root; n], 0),
            Topology::PaperTestbed => {
                let mut ports = Vec::with_capacity(n);
                let mut hubs = 0usize;
                for i in 0..n {
                    if i < 2 {
                        ports.push(UsbPort::Root);
                    } else {
                        let hub = (i - 2) / 3;
                        hubs = hubs.max(hub + 1);
                        ports.push(UsbPort::Hub(hub));
                    }
                }
                (ports, hubs)
            }
            Topology::Custom(ports) => {
                assert_eq!(ports.len(), n, "custom topology must list every device");
                let hubs = ports
                    .iter()
                    .filter_map(|p| match p {
                        UsbPort::Hub(h) => Some(h + 1),
                        UsbPort::Root => None,
                    })
                    .max()
                    .unwrap_or(0);
                (ports.clone(), hubs)
            }
        }
    }
}

/// A set of sticks sharing one USB fabric.
#[derive(Debug, Clone)]
pub struct Fleet {
    pub bus: UsbBus,
    pub devices: Vec<NcsDevice>,
}

impl Fleet {
    pub fn new(n: usize, topology: Topology, cfg: NcsConfig) -> Self {
        Fleet::with_usb(n, topology, cfg, UsbConfig::default())
    }

    pub fn with_usb(n: usize, topology: Topology, cfg: NcsConfig, usb: UsbConfig) -> Self {
        assert!(n > 0, "fleet needs at least one stick");
        let (ports, hubs) = topology.ports(n);
        let devices =
            ports.iter().enumerate().map(|(i, &p)| NcsDevice::new(i, p, cfg.clone())).collect();
        Fleet { bus: UsbBus::new(usb, hubs), devices }
    }

    pub fn len(&self) -> usize {
        self.devices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// ASCII rendition of the USB topology — the textual Fig. 5.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("host root controller\n");
        for (i, d) in self.devices.iter().enumerate() {
            if d.port() == UsbPort::Root {
                let _ = writeln!(out, "├── ncs{i} (root port)");
            }
        }
        for h in 0..self.bus.hub_count() {
            let _ = writeln!(out, "├── hub{h}");
            for (i, d) in self.devices.iter().enumerate() {
                if d.port() == UsbPort::Hub(h) {
                    let _ = writeln!(out, "│   ├── ncs{i}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_layout() {
        let (ports, hubs) = Topology::PaperTestbed.ports(8);
        assert_eq!(hubs, 2);
        assert_eq!(ports[0], UsbPort::Root);
        assert_eq!(ports[1], UsbPort::Root);
        assert_eq!(ports[2], UsbPort::Hub(0));
        assert_eq!(ports[3], UsbPort::Hub(0));
        assert_eq!(ports[4], UsbPort::Hub(0));
        assert_eq!(ports[5], UsbPort::Hub(1));
        assert_eq!(ports[7], UsbPort::Hub(1));
    }

    #[test]
    fn paper_testbed_small_counts() {
        let (ports, hubs) = Topology::PaperTestbed.ports(2);
        assert_eq!(hubs, 0);
        assert!(ports.iter().all(|&p| p == UsbPort::Root));
        let (_, hubs4) = Topology::PaperTestbed.ports(4);
        assert_eq!(hubs4, 1);
    }

    #[test]
    fn all_root() {
        let (ports, hubs) = Topology::AllRoot.ports(5);
        assert_eq!(hubs, 0);
        assert!(ports.iter().all(|&p| p == UsbPort::Root));
    }

    #[test]
    fn custom_topology() {
        let t = Topology::Custom(vec![UsbPort::Root, UsbPort::Hub(3)]);
        let (ports, hubs) = t.ports(2);
        assert_eq!(hubs, 4);
        assert_eq!(ports[1], UsbPort::Hub(3));
    }

    #[test]
    #[should_panic(expected = "every device")]
    fn custom_topology_length_checked() {
        Topology::Custom(vec![UsbPort::Root]).ports(3);
    }

    #[test]
    fn describe_renders_the_testbed() {
        let f = Fleet::new(8, Topology::PaperTestbed, NcsConfig::default());
        let d = f.describe();
        assert!(d.contains("ncs0 (root port)"));
        assert!(d.contains("ncs1 (root port)"));
        assert!(d.contains("hub0"));
        assert!(d.contains("hub1"));
        assert!(d.contains("ncs7"));
    }

    #[test]
    fn fleet_construction() {
        let f = Fleet::new(8, Topology::PaperTestbed, NcsConfig::default());
        assert_eq!(f.len(), 8);
        assert_eq!(f.bus.hub_count(), 2);
        assert_eq!(f.devices[7].port(), UsbPort::Hub(1));
    }
}
