//! The Neural Compute API (NCAPI) facade.
//!
//! Mirrors the `mvnc` C API the paper builds NCSw on (Listing 1):
//!
//! | NCSDK                | here                       |
//! |----------------------|----------------------------|
//! | `mvncGetDeviceName`  | [`Ncapi::enumerate`]       |
//! | `mvncOpenDevice`     | [`Ncapi::open_device`]     |
//! | `mvncAllocateGraph`  | [`Ncapi::alloc_graph`]     |
//! | `mvncLoadTensor`     | [`Ncapi::load_tensor`]     |
//! | `mvncGetResult`      | [`Ncapi::get_result`]      |
//!
//! Calls take and return **virtual host time**: `load_tensor` returns at
//! the instant the input has crossed USB and the execution is queued
//! (non-blocking with respect to the inference itself); `get_result`
//! returns at the instant the oldest in-flight result has been read back
//! (blocking). This reproduces the MPI-like decoupling the paper exploits
//! for multi-stick overlap.

use crate::device::{DeviceError, Pending};
use crate::fleet::Fleet;
use desim::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vpu_nn::cost::NetworkCost;
use vpu_num::f16;
use vpu_tensor::Tensor;

/// Host-side API timing parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NcapiConfig {
    /// User-space + kernel driver overhead per API call, ns.
    pub call_overhead_ns: u64,
    /// Firmware image size uploaded by `open_device`, bytes.
    pub firmware_bytes: u64,
}

impl Default for NcapiConfig {
    fn default() -> Self {
        NcapiConfig { call_overhead_ns: 250_000, firmware_bytes: 1_800_000 }
    }
}

/// Errors surfaced to the application (mirrors `mvncStatus`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NcsError {
    /// Device index out of range.
    BadDevice,
    /// Operation before `open_device` completed.
    NotOpen,
    /// No graph allocated on the device.
    NoGraph,
    /// `get_result` with nothing queued.
    NothingQueued,
    /// Graph exceeds device memory.
    GraphTooLarge,
}

impl From<DeviceError> for NcsError {
    fn from(e: DeviceError) -> Self {
        match e {
            DeviceError::NotOpen => NcsError::NotOpen,
            DeviceError::NoGraph => NcsError::NoGraph,
            DeviceError::NothingQueued => NcsError::NothingQueued,
            DeviceError::GraphTooLarge => NcsError::GraphTooLarge,
        }
    }
}

/// Handle to a graph allocated on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphHandle {
    pub device: usize,
}

/// A collected inference result.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Real FP16 output when numerics were executed.
    pub output: Option<Tensor<f16>>,
    /// Device-side timing/energy record (per-layer profile included).
    pub run: myriad2::exec::NetworkRun,
    /// Instant the inference completed on the stick.
    pub completion: SimTime,
    /// Instant the host call returned with the data.
    pub returned_at: SimTime,
}

/// The API object owning the fleet.
#[derive(Debug, Clone)]
pub struct Ncapi {
    fleet: Fleet,
    cfg: NcapiConfig,
    io_bytes: Vec<Option<(u64, u64)>>,
}

impl Ncapi {
    pub fn new(fleet: Fleet) -> Self {
        Ncapi::with_config(fleet, NcapiConfig::default())
    }

    pub fn with_config(fleet: Fleet, cfg: NcapiConfig) -> Self {
        let n = fleet.len();
        Ncapi { fleet, cfg, io_bytes: vec![None; n] }
    }

    /// Device count (the NCSDK exposes names; indices suffice here).
    pub fn enumerate(&self) -> usize {
        self.fleet.len()
    }

    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    pub fn fleet_mut(&mut self) -> &mut Fleet {
        &mut self.fleet
    }

    fn call(&self, at: SimTime) -> SimTime {
        at + Duration::from_nanos(self.cfg.call_overhead_ns)
    }

    /// Open a device: upload firmware over USB, boot the RTOS. Returns
    /// the time the device becomes usable.
    pub fn open_device(&mut self, device: usize, at: SimTime) -> Result<SimTime, NcsError> {
        let port = self.device(device)?.port();
        let t = self.call(at);
        let xfer = self.fleet.bus.transfer(port, t, self.cfg.firmware_bytes);
        Ok(self.fleet.devices[device].boot(xfer.end))
    }

    /// Allocate (upload) a compiled graph. The transfer ships the FP16
    /// weight payload; returns the handle and the completion time.
    pub fn alloc_graph(
        &mut self,
        device: usize,
        cost: Arc<NetworkCost>,
        at: SimTime,
    ) -> Result<(GraphHandle, SimTime), NcsError> {
        let port = self.device(device)?.port();
        let t = self.call(at);
        let bytes = cost.total_weight_bytes();
        let io = (cost.input_bytes(), cost.output_bytes());
        let xfer = self.fleet.bus.transfer(port, t, bytes);
        let done = self.fleet.devices[device].alloc_graph(xfer.end, cost)?;
        self.io_bytes[device] = Some(io);
        Ok((GraphHandle { device }, done))
    }

    /// Allocate from a compiled graph-file blob (the `mvNCCompile`
    /// output): validates the blob, checks its input geometry against
    /// `spec`, and charges the *actual* blob size to the USB transfer.
    pub fn alloc_compiled(
        &mut self,
        device: usize,
        spec: &vpu_nn::graph::NetworkSpec,
        blob: &[u8],
        at: SimTime,
    ) -> Result<(GraphHandle, SimTime), NcsError> {
        let parsed = crate::graphfile::parse(blob).map_err(|_| NcsError::NoGraph)?;
        let s = spec.input_shape;
        if parsed.input != (s.n as u32, s.c as u32, s.h as u32, s.w as u32) {
            return Err(NcsError::NoGraph);
        }
        let port = self.device(device)?.port();
        let t = self.call(at);
        let cost = Arc::new(NetworkCost::of::<vpu_num::f16>(spec));
        let io = (cost.input_bytes(), cost.output_bytes());
        let xfer = self.fleet.bus.transfer(port, t, blob.len() as u64);
        let done = self.fleet.devices[device].alloc_graph(xfer.end, cost)?;
        self.io_bytes[device] = Some(io);
        Ok((GraphHandle { device }, done))
    }

    /// `mvncLoadTensor`: ship one input, queue the inference. Returns the
    /// host-return instant (transfer complete, execution scheduled).
    /// `output` optionally carries the real FP16 result computed by the
    /// caller's numerics path; it is held on-device until `get_result`.
    pub fn load_tensor(
        &mut self,
        graph: GraphHandle,
        at: SimTime,
        output: Option<Tensor<f16>>,
    ) -> Result<SimTime, NcsError> {
        let dev = graph.device;
        let port = self.device(dev)?.port();
        let (in_bytes, _) = self.io_bytes[dev].ok_or(NcsError::NoGraph)?;
        let t = self.call(at);
        // Block while the device FIFO is full (depth 2 in NCSDK v1).
        let accept = self.fleet.devices[dev].accept_ready(t);
        let scale = self.fleet.bus.config().write_scale;
        let xfer = self.fleet.bus.transfer_scaled(port, accept, in_bytes, scale);
        self.fleet.devices[dev].submit(xfer.end, output)?;
        Ok(xfer.end)
    }

    /// `mvncGetResult`: block until the oldest in-flight inference on the
    /// graph's device finishes, read the output back, return it.
    pub fn get_result(
        &mut self,
        graph: GraphHandle,
        at: SimTime,
    ) -> Result<InferenceResult, NcsError> {
        let dev = graph.device;
        let port = self.device(dev)?.port();
        let (_, out_bytes) = self.io_bytes[dev].ok_or(NcsError::NoGraph)?;
        let t = self.call(at);
        let Pending { completion, run, output } = self.fleet.devices[dev].collect()?;
        let avail = SimTime::max_of(t, completion);
        let scale = self.fleet.bus.config().read_scale;
        let xfer = self.fleet.bus.transfer_scaled(port, avail, out_bytes, scale);
        let returned_at = self.call(xfer.end);
        Ok(InferenceResult { output, run, completion, returned_at })
    }

    fn device(&self, idx: usize) -> Result<&crate::device::NcsDevice, NcsError> {
        self.fleet.devices.get(idx).ok_or(NcsError::BadDevice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::NcsConfig;
    use crate::fleet::Topology;
    use vpu_nn::googlenet;

    fn cost() -> Arc<NetworkCost> {
        Arc::new(NetworkCost::of::<f16>(&googlenet::full()))
    }

    fn api(n: usize) -> Ncapi {
        Ncapi::new(Fleet::new(n, Topology::PaperTestbed, NcsConfig::default()))
    }

    /// Open + alloc on every device; returns the latest ready time.
    fn setup(api: &mut Ncapi) -> (Vec<GraphHandle>, SimTime) {
        let mut handles = Vec::new();
        let mut ready = SimTime::ZERO;
        for d in 0..api.enumerate() {
            api.open_device(d, SimTime::ZERO).unwrap();
            let (h, t) = api.alloc_graph(d, cost(), SimTime::ZERO).unwrap();
            handles.push(h);
            ready = SimTime::max_of(ready, t);
        }
        (handles, ready)
    }

    #[test]
    fn single_inference_matches_paper_anchor() {
        let mut api = api(1);
        let (handles, ready) = setup(&mut api);
        let t0 = ready;
        let loaded = api.load_tensor(handles[0], t0, None).unwrap();
        assert!(loaded > t0, "load takes time");
        let res = api.get_result(handles[0], loaded).unwrap();
        let ms = (res.returned_at - t0).as_millis();
        // Paper: 100.7 ms per inference on one NCS (single input).
        assert!((99.0..102.5).contains(&ms), "single-NCS latency {ms} ms");
    }

    #[test]
    fn load_returns_long_before_result() {
        let mut api = api(1);
        let (handles, ready) = setup(&mut api);
        let loaded = api.load_tensor(handles[0], ready, None).unwrap();
        let res = api.get_result(handles[0], loaded).unwrap();
        let gap = (res.returned_at - loaded).as_millis();
        assert!(gap > 90.0, "inference must overlap host time: gap {gap} ms");
    }

    #[test]
    fn eight_sticks_overlap() {
        let mut api = api(8);
        let (handles, ready) = setup(&mut api);
        let t0 = ready;
        // Round-robin load then round-robin collect (paper Fig. 4).
        let mut t = t0;
        for &h in &handles {
            t = api.load_tensor(h, t, None).unwrap();
        }
        let mut done = t;
        for &h in &handles {
            let r = api.get_result(h, done).unwrap();
            done = r.returned_at;
        }
        let per_img = (done - t0).as_millis() / 8.0;
        // One batch of 8 with cold pipeline: load stagger + one inference.
        // Paper steady-state is 12.9 ms/img; a single cold batch is a bit
        // worse but must stay well under the 100.7 ms serial cost.
        assert!(per_img < 16.0, "multi-VPU per-image {per_img} ms");
        assert!(per_img > 11.0, "implausibly fast {per_img} ms");
    }

    #[test]
    fn errors_mirror_mvnc_status() {
        let mut api = api(2);
        assert_eq!(api.open_device(9, SimTime::ZERO), Err(NcsError::BadDevice));
        // Graph before open.
        assert_eq!(api.alloc_graph(0, cost(), SimTime::ZERO).unwrap_err(), NcsError::NotOpen);
        api.open_device(0, SimTime::ZERO).unwrap();
        let (h, t) = api.alloc_graph(0, cost(), SimTime::ZERO).unwrap();
        // get_result with empty queue.
        assert_eq!(api.get_result(h, t).unwrap_err(), NcsError::NothingQueued);
        // load on a device with no graph.
        api.open_device(1, SimTime::ZERO).unwrap();
        assert_eq!(
            api.load_tensor(GraphHandle { device: 1 }, t, None).unwrap_err(),
            NcsError::NoGraph
        );
    }

    #[test]
    fn open_includes_firmware_boot() {
        let mut api = api(1);
        let up = api.open_device(0, SimTime::ZERO).unwrap();
        // Firmware transfer (~4 ms) + 900 ms boot.
        assert!(up.as_millis() > 900.0);
        assert!(up.as_millis() < 1000.0);
    }

    #[test]
    fn results_come_back_in_fifo_order() {
        let mut api = api(1);
        let (handles, ready) = setup(&mut api);
        let h = handles[0];
        let t1 = api.load_tensor(h, ready, None).unwrap();
        let t2 = api.load_tensor(h, t1, None).unwrap();
        let r1 = api.get_result(h, t2).unwrap();
        let r2 = api.get_result(h, r1.returned_at).unwrap();
        assert!(r1.completion < r2.completion);
    }

    #[test]
    fn fifo_depth_gates_burst_loads() {
        let mut api = api(1);
        let (handles, ready) = setup(&mut api);
        let h = handles[0];
        let t1 = api.load_tensor(h, ready, None).unwrap();
        let t2 = api.load_tensor(h, t1, None).unwrap();
        // Third load must wait for the first completion (depth 2).
        let t3 = api.load_tensor(h, t2, None).unwrap();
        assert!((t3 - ready).as_millis() > 90.0, "third load returned too early");
    }

    #[test]
    fn alloc_compiled_validates_and_runs() {
        use crate::graphfile;
        let spec = vpu_nn::googlenet::tiny();
        let w = vpu_nn::init::xavier(&spec, 4);
        let blob = graphfile::compile(&spec, &w);
        let mut api = api(1);
        api.open_device(0, SimTime::ZERO).unwrap();
        let (h, ready) = api.alloc_compiled(0, &spec, &blob, SimTime::ZERO).unwrap();
        let loaded = api.load_tensor(h, ready, None).unwrap();
        let res = api.get_result(h, loaded).unwrap();
        assert!(res.returned_at > loaded);
        // Corrupt blob is rejected.
        let mut bad = blob.to_vec();
        bad[8] ^= 1;
        assert_eq!(api.alloc_compiled(0, &spec, &bad, ready).unwrap_err(), NcsError::NoGraph);
        // Mismatched geometry is rejected.
        let other = vpu_nn::googlenet::mini();
        assert_eq!(api.alloc_compiled(0, &other, &blob, ready).unwrap_err(), NcsError::NoGraph);
    }

    #[test]
    fn per_layer_profile_available() {
        let mut api = api(1);
        let (handles, ready) = setup(&mut api);
        let loaded = api.load_tensor(handles[0], ready, None).unwrap();
        let res = api.get_result(handles[0], loaded).unwrap();
        assert!(!res.run.layers.is_empty());
        assert!(res.run.energy_j > 0.0);
    }
}
