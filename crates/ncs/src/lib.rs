//! Intel Neural Compute Stick (NCS) platform simulation.
//!
//! The NCS is a USB SoC around the Myriad 2 (paper Fig. 2): two LEON RISC
//! processors run an RTOS that manages the USB link, the firmware, and a
//! run queue feeding the SHAVE cluster. The host talks to it through the
//! Neural Compute API (NCAPI), whose defining feature the paper leans on
//! is the **split non-blocking interface**: `mvncLoadTensor` returns as
//! soon as the input is transferred and the execution queued, and
//! `mvncGetResult` blocks until the inference completes — the MPI-style
//! decoupling that makes multi-stick overlap possible (paper Listing 1).
//!
//! Modules:
//! * [`usb`] — USB 3.0 topology: root controller plus optional hubs
//!   (the paper's testbed hangs 6 of 8 sticks off two hubs, Fig. 5).
//! * [`device`] — one stick: firmware boot, graph storage in LPDDR3,
//!   the RISC run queue, and the embedded [`myriad2::Myriad2`] chip.
//! * [`api`] — the NCAPI facade (`open`, `alloc_graph`, `load_tensor`,
//!   `get_result`) in both timing-only and real-numerics flavours.
//! * [`fleet`] — enumeration and construction of multi-stick testbeds.

pub mod api;
pub mod api2;
pub mod device;
pub mod fleet;
pub mod graphfile;
pub mod usb;

pub use api::{GraphHandle, Ncapi, NcsError};
pub use device::{NcsConfig, NcsDevice};
pub use fleet::{Fleet, Topology};
pub use usb::{TapSpan, UsbBus, UsbPort};
