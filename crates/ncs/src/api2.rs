//! The NCSDK **v2** ("nc") API facade.
//!
//! Shortly after the paper, Intel replaced the `mvnc` interface the paper
//! codes against with an explicit-FIFO API: graphs are allocated together
//! with input/output FIFOs of configurable depth, inputs go in with
//! `ncFifoWriteElem`, inference is queued with `ncGraphQueueInference`,
//! and results come out with `ncFifoReadElem`. Semantically it is the
//! same decoupled pipeline — the FIFO depth generalizes v1's fixed
//! 2-deep queue — so this facade maps onto the same simulated device and
//! lets the repo demonstrate that the paper's overlap argument is
//! API-version independent.
//!
//! | NCSDK v2                  | here                                |
//! |---------------------------|-------------------------------------|
//! | `ncDeviceOpen`            | [`Ncapi2::device_open`]             |
//! | `ncGraphAllocateWithFifos`| [`Ncapi2::graph_allocate_with_fifos`] |
//! | `ncFifoWriteElem`         | [`Ncapi2::fifo_write_elem`]         |
//! | `ncGraphQueueInference`   | implicit in the write (as in v2's convenience wrappers) |
//! | `ncFifoReadElem`          | [`Ncapi2::fifo_read_elem`]          |

use crate::api::{GraphHandle, InferenceResult, Ncapi, NcsError};
use crate::fleet::Fleet;
use desim::SimTime;
use std::sync::Arc;
use vpu_nn::cost::NetworkCost;
use vpu_num::f16;
use vpu_tensor::Tensor;

/// A graph allocated with its FIFO pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Graph2Handle {
    inner: GraphHandle,
    /// Input FIFO depth (in-flight bound).
    pub in_depth: usize,
    /// Output FIFO depth (results parked on-device before readback).
    pub out_depth: usize,
}

/// The v2 facade over the same simulated platform.
#[derive(Debug, Clone)]
pub struct Ncapi2 {
    inner: Ncapi,
}

impl Ncapi2 {
    pub fn new(fleet: Fleet) -> Self {
        Ncapi2 { inner: Ncapi::new(fleet) }
    }

    pub fn device_count(&self) -> usize {
        self.inner.enumerate()
    }

    pub fn inner(&self) -> &Ncapi {
        &self.inner
    }

    /// `ncDeviceOpen`: firmware upload + boot.
    pub fn device_open(&mut self, device: usize, at: SimTime) -> Result<SimTime, NcsError> {
        self.inner.open_device(device, at)
    }

    /// `ncGraphAllocateWithFifos`: upload the graph and size its FIFOs.
    /// Depths must be ≥ 1; the input depth sets the in-flight bound the
    /// v1 API fixed at 2.
    pub fn graph_allocate_with_fifos(
        &mut self,
        device: usize,
        cost: Arc<NetworkCost>,
        at: SimTime,
        in_depth: usize,
        out_depth: usize,
    ) -> Result<(Graph2Handle, SimTime), NcsError> {
        assert!(in_depth >= 1 && out_depth >= 1, "FIFO depths must be positive");
        let (inner, done) = self.inner.alloc_graph(device, cost, at)?;
        self.inner.fleet_mut().devices[device].set_fifo_depth(in_depth);
        Ok((Graph2Handle { inner, in_depth, out_depth }, done))
    }

    /// `ncFifoWriteElem` (+ implicit `ncGraphQueueInference`): ship one
    /// input; blocks while the input FIFO is full.
    pub fn fifo_write_elem(
        &mut self,
        graph: Graph2Handle,
        at: SimTime,
        output: Option<Tensor<f16>>,
    ) -> Result<SimTime, NcsError> {
        self.inner.load_tensor(graph.inner, at, output)
    }

    /// `ncFifoReadElem`: blocking read of the oldest result.
    pub fn fifo_read_elem(
        &mut self,
        graph: Graph2Handle,
        at: SimTime,
    ) -> Result<InferenceResult, NcsError> {
        self.inner.get_result(graph.inner, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::NcsConfig;
    use crate::fleet::Topology;
    use vpu_nn::googlenet;

    fn cost() -> Arc<NetworkCost> {
        Arc::new(NetworkCost::of::<f16>(&googlenet::full()))
    }

    fn api2() -> Ncapi2 {
        Ncapi2::new(Fleet::new(1, Topology::AllRoot, NcsConfig::default()))
    }

    #[test]
    fn v2_round_trip_matches_v1_latency() {
        let mut v2 = api2();
        v2.device_open(0, SimTime::ZERO).unwrap();
        let (g, ready) = v2.graph_allocate_with_fifos(0, cost(), SimTime::ZERO, 2, 2).unwrap();
        let loaded = v2.fifo_write_elem(g, ready, None).unwrap();
        let res = v2.fifo_read_elem(g, loaded).unwrap();
        let ms = (res.returned_at - ready).as_millis();
        // Same device, same pipeline: the paper's 100.7 ms anchor holds
        // through the v2 interface too.
        assert!((99.0..102.5).contains(&ms), "v2 latency {ms} ms");
    }

    #[test]
    fn deeper_input_fifo_admits_more_in_flight() {
        let mut v2 = api2();
        v2.device_open(0, SimTime::ZERO).unwrap();
        let (g, ready) = v2.graph_allocate_with_fifos(0, cost(), SimTime::ZERO, 4, 4).unwrap();
        // Four writes go through without blocking on a completion …
        let mut t = ready;
        for _ in 0..4 {
            t = v2.fifo_write_elem(g, t, None).unwrap();
        }
        assert!((t - ready).as_millis() < 20.0, "4-deep FIFO accepted the burst");
        // … the fifth blocks until the first inference finishes.
        let t5 = v2.fifo_write_elem(g, t, None).unwrap();
        assert!((t5 - ready).as_millis() > 90.0, "fifth write must block");
    }

    #[test]
    fn depth_one_serializes_fully() {
        let mut v2 = api2();
        v2.device_open(0, SimTime::ZERO).unwrap();
        let (g, ready) = v2.graph_allocate_with_fifos(0, cost(), SimTime::ZERO, 1, 1).unwrap();
        let t1 = v2.fifo_write_elem(g, ready, None).unwrap();
        // Second write waits for the first completion: no overlap at all.
        let t2 = v2.fifo_write_elem(g, t1, None).unwrap();
        assert!((t2 - t1).as_millis() > 90.0, "depth-1 FIFO must serialize");
    }

    #[test]
    fn errors_surface_like_v1() {
        let mut v2 = api2();
        assert_eq!(
            v2.graph_allocate_with_fifos(0, cost(), SimTime::ZERO, 2, 2).unwrap_err(),
            NcsError::NotOpen
        );
    }
}
