//! The device graph file: the NCSDK `.graph` analogue.
//!
//! `mvncAllocateGraph` takes an opaque blob produced by the SDK compiler
//! from a Caffe model: topology metadata plus every weight quantized to
//! binary16. This module defines that wire format:
//!
//! ```text
//! magic  "NCSG"                      4 B
//! version u16 LE                     2 B
//! flags   u16 LE (bit0: fp16)        2 B
//! name    u32 len + UTF-8
//! input   4 × u32 LE (n,c,h,w)
//! layers  u32 count, then per layer:
//!         name (u32 len + UTF-8), w_len u32, b_len u32,
//!         w_len × u16 LE fp16 bits, b_len × u16 LE fp16 bits
//! crc     u64 LE (FNV-1a over everything before it)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vpu_nn::graph::NetworkSpec;
use vpu_nn::weights::Weights;
use vpu_num::{f16, rng::fnv1a};

const MAGIC: &[u8; 4] = b"NCSG";
const VERSION: u16 = 1;
const FLAG_FP16: u16 = 1;

/// Parse/validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphFileError {
    BadMagic,
    UnsupportedVersion(u16),
    Truncated,
    ChecksumMismatch,
    MalformedString,
}

impl std::fmt::Display for GraphFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphFileError::BadMagic => write!(f, "not a graph file (bad magic)"),
            GraphFileError::UnsupportedVersion(v) => write!(f, "unsupported graph version {v}"),
            GraphFileError::Truncated => write!(f, "graph file truncated"),
            GraphFileError::ChecksumMismatch => write!(f, "graph file checksum mismatch"),
            GraphFileError::MalformedString => write!(f, "malformed string in graph file"),
        }
    }
}

impl std::error::Error for GraphFileError {}

/// A parsed graph file.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphFile {
    pub name: String,
    /// Input item shape (n always 1).
    pub input: (u32, u32, u32, u32),
    /// Per-layer FP16 parameters, in spec order.
    pub layers: Vec<GraphLayer>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct GraphLayer {
    pub name: String,
    pub w: Vec<f16>,
    pub b: Vec<f16>,
}

impl GraphFile {
    /// Total payload bytes of FP16 parameters.
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(|l| 2 * (l.w.len() + l.b.len())).sum()
    }

    /// Rebuild an FP32 [`Weights`] set (values exactly as the device sees
    /// them: already rounded to binary16).
    pub fn to_weights(&self) -> Weights {
        let mut w = Weights::new();
        for l in &self.layers {
            w.insert(
                &l.name,
                l.w.iter().map(|h| h.to_f32()).collect(),
                l.b.iter().map(|h| h.to_f32()).collect(),
            );
        }
        w
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Compile a model into the device wire format (FP32 master weights are
/// quantized to binary16, exactly what the NCSDK compiler does).
pub fn compile(spec: &NetworkSpec, weights: &Weights) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(FLAG_FP16);
    put_string(&mut buf, &spec.name);
    let s = spec.input_shape;
    for d in [s.n, s.c, s.h, s.w] {
        buf.put_u32_le(d as u32);
    }
    let weighted: Vec<&vpu_nn::layer::Node> =
        spec.nodes.iter().filter(|n| n.kind.has_weights()).collect();
    buf.put_u32_le(weighted.len() as u32);
    for node in weighted {
        let lp =
            weights.get(&node.name).unwrap_or_else(|| panic!("missing weights for {}", node.name));
        put_string(&mut buf, &node.name);
        buf.put_u32_le(lp.w.len() as u32);
        buf.put_u32_le(lp.b.len() as u32);
        for &v in &lp.w {
            buf.put_u16_le(f16::from_f32(v).to_bits());
        }
        for &v in &lp.b {
            buf.put_u16_le(f16::from_f32(v).to_bits());
        }
    }
    let crc = fnv1a(&buf);
    buf.put_u64_le(crc);
    buf.freeze()
}

fn get_string(buf: &mut Bytes) -> Result<String, GraphFileError> {
    if buf.remaining() < 4 {
        return Err(GraphFileError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(GraphFileError::Truncated);
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| GraphFileError::MalformedString)
}

/// Parse and validate a graph file blob.
pub fn parse(blob: &[u8]) -> Result<GraphFile, GraphFileError> {
    if blob.len() < 8 + 8 {
        return Err(GraphFileError::Truncated);
    }
    let (body, crc_bytes) = blob.split_at(blob.len() - 8);
    let stored = u64::from_le_bytes(crc_bytes.try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err(GraphFileError::ChecksumMismatch);
    }
    let mut buf = Bytes::copy_from_slice(body);
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphFileError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(GraphFileError::UnsupportedVersion(version));
    }
    let _flags = buf.get_u16_le();
    let name = get_string(&mut buf)?;
    if buf.remaining() < 16 {
        return Err(GraphFileError::Truncated);
    }
    let input = (buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le());
    if buf.remaining() < 4 {
        return Err(GraphFileError::Truncated);
    }
    let count = buf.get_u32_le() as usize;
    let mut layers = Vec::with_capacity(count);
    for _ in 0..count {
        let lname = get_string(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(GraphFileError::Truncated);
        }
        let wl = buf.get_u32_le() as usize;
        let bl = buf.get_u32_le() as usize;
        if buf.remaining() < 2 * (wl + bl) {
            return Err(GraphFileError::Truncated);
        }
        let mut w = Vec::with_capacity(wl);
        for _ in 0..wl {
            w.push(f16::from_bits(buf.get_u16_le()));
        }
        let mut b = Vec::with_capacity(bl);
        for _ in 0..bl {
            b.push(f16::from_bits(buf.get_u16_le()));
        }
        layers.push(GraphLayer { name: lname, w, b });
    }
    Ok(GraphFile { name, input, layers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vpu_nn::googlenet;
    use vpu_nn::graph::CompiledNetwork;
    use vpu_nn::init;
    use vpu_tensor::kernels::gemm::AccumMode;
    use vpu_tensor::{Shape, Tensor};

    fn tiny() -> (NetworkSpec, Weights) {
        let spec = googlenet::tiny();
        let w = init::xavier(&spec, 7);
        (spec, w)
    }

    #[test]
    fn round_trip() {
        let (spec, w) = tiny();
        let blob = compile(&spec, &w);
        let parsed = parse(&blob).unwrap();
        assert_eq!(parsed.name, "tiny_googlenet");
        assert_eq!(parsed.input, (1, 3, 32, 32));
        assert_eq!(parsed.layers.len(), spec.weighted_layers());
        // FP16 payload matches the cost model's graph-file estimate.
        let expected = vpu_nn::cost::NetworkCost::of::<f16>(&spec).total_weight_bytes();
        assert_eq!(parsed.weight_bytes() as u64, expected);
    }

    #[test]
    fn device_numerics_match_graph_file_weights() {
        // Compiling to the graph file and reloading its (fp16-rounded)
        // weights gives the same inference as direct fp16 compilation.
        let (spec, w) = tiny();
        let spec = Arc::new(spec);
        let blob = compile(&spec, &w);
        let reloaded = parse(&blob).unwrap().to_weights();
        let direct = CompiledNetwork::<f16>::compile(spec.clone(), &w, AccumMode::Native);
        let via_file = CompiledNetwork::<f16>::compile(spec, &reloaded, AccumMode::Native);
        let input = Tensor::<f32>::full(Shape::chw(3, 32, 32), 0.2).quantize_fp16();
        assert_eq!(direct.forward(&input), via_file.forward(&input));
    }

    #[test]
    fn corruption_is_detected() {
        let (spec, w) = tiny();
        let blob = compile(&spec, &w);
        let mut bad = blob.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert_eq!(parse(&bad).unwrap_err(), GraphFileError::ChecksumMismatch);
    }

    #[test]
    fn truncation_is_detected() {
        let (spec, w) = tiny();
        let blob = compile(&spec, &w);
        assert_eq!(parse(&blob[..10]).unwrap_err(), GraphFileError::Truncated);
        assert_eq!(parse(&[]).unwrap_err(), GraphFileError::Truncated);
    }

    #[test]
    fn wrong_magic_rejected() {
        let (spec, w) = tiny();
        let mut bad = compile(&spec, &w).to_vec();
        bad[0] = b'X';
        // Fix up the checksum so only the magic is wrong.
        let crc = fnv1a(&bad[..bad.len() - 8]);
        let n = bad.len();
        bad[n - 8..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(parse(&bad).unwrap_err(), GraphFileError::BadMagic);
    }

    #[test]
    fn googlenet_graph_file_is_13mb() {
        let spec = googlenet::full();
        let w = init::xavier(&spec, 1);
        let blob = compile(&spec, &w);
        // The real BVLC GoogLeNet .graph is ~13.5 MB.
        assert!((13_000_000..15_000_000).contains(&blob.len()), "graph file {} bytes", blob.len());
    }
}
