//! Virtual time: nanosecond-resolution instants and durations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn nanos(self) -> u64 {
        self.0
    }

    pub fn as_micros(self) -> f64 {
        self.0 as f64 / 1e3
    }

    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn max_of(a: SimTime, b: SimTime) -> SimTime {
        if a >= b {
            a
        } else {
            b
        }
    }

    /// Duration since an earlier instant (panics if `earlier` is later).
    pub fn since(self, earlier: SimTime) -> Duration {
        assert!(self >= earlier, "time went backwards: {self} < {earlier}");
        Duration(self.0 - earlier.0)
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    pub fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    pub fn from_micros(us: f64) -> Duration {
        assert!(us >= 0.0, "negative duration");
        Duration((us * 1e3).round() as u64)
    }

    pub fn from_millis(ms: f64) -> Duration {
        assert!(ms >= 0.0, "negative duration");
        Duration((ms * 1e6).round() as u64)
    }

    pub fn from_secs(s: f64) -> Duration {
        assert!(s >= 0.0, "negative duration");
        Duration((s * 1e9).round() as u64)
    }

    /// Time to move `bytes` at `bytes_per_sec` (rounded up to 1 ns).
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Duration {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        let ns = bytes as f64 / bytes_per_sec * 1e9;
        Duration((ns.ceil() as u64).max(if bytes > 0 { 1 } else { 0 }))
    }

    /// Time to run `cycles` at `hz` (rounded up to 1 ns for nonzero work).
    pub fn for_cycles(cycles: u64, hz: f64) -> Duration {
        assert!(hz > 0.0, "frequency must be positive");
        let ns = cycles as f64 / hz * 1e9;
        Duration((ns.ceil() as u64).max(if cycles > 0 { 1 } else { 0 }))
    }

    pub fn nanos(self) -> u64 {
        self.0
    }

    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, other: SimTime) -> Duration {
        self.since(other)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, other: Duration) {
        self.0 += other.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, other: Duration) -> Duration {
        assert!(self.0 >= other.0, "negative duration");
        Duration(self.0 - other.0)
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, k: f64) -> Duration {
        assert!(k >= 0.0, "negative scale");
        Duration((self.0 as f64 * k).round() as u64)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, k: u64) -> Duration {
        Duration(self.0 / k)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis())
        } else {
            write!(f, "{:.3}s", self.as_secs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_millis(1.5).nanos(), 1_500_000);
        assert_eq!(Duration::from_micros(2.0).nanos(), 2_000);
        assert_eq!(Duration::from_secs(0.001).nanos(), 1_000_000);
        assert!((Duration(2_500_000).as_millis() - 2.5).abs() < 1e-12);
        assert!((SimTime(1_000_000_000).as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_millis(5.0);
        assert_eq!(t, SimTime(5_000_000));
        let d = t - SimTime(2_000_000);
        assert_eq!(d, Duration(3_000_000));
        assert_eq!(Duration(10) * 3u64, Duration(30));
        assert_eq!(Duration(10) * 2.5, Duration(25));
        assert_eq!(Duration(10) / 4, Duration(2));
        let total: Duration = [Duration(1), Duration(2), Duration(3)].into_iter().sum();
        assert_eq!(total, Duration(6));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_span_panics() {
        let _ = SimTime(5).since(SimTime(10));
    }

    #[test]
    fn bandwidth_and_cycles() {
        // 300 MB/s over 300 KB = 1 ms.
        let d = Duration::for_bytes(300_000, 300e6);
        assert_eq!(d, Duration::from_millis(1.0));
        // 600 cycles at 600 MHz = 1 us.
        let c = Duration::for_cycles(600, 600e6);
        assert_eq!(c, Duration::from_micros(1.0));
        // Nonzero work never rounds to zero time.
        assert!(Duration::for_bytes(1, 1e12).nanos() >= 1);
        assert_eq!(Duration::for_bytes(0, 1e9), Duration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Duration(500).to_string(), "500ns");
        assert_eq!(Duration(1_500).to_string(), "1.50us");
        assert_eq!(Duration(12_900_000).to_string(), "12.90ms");
        assert_eq!(Duration(2_000_000_000).to_string(), "2.000s");
        assert_eq!(SimTime(1_000_000).to_string(), "1.000ms");
    }

    #[test]
    fn ordering_and_max() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime::max_of(SimTime(3), SimTime(9)), SimTime(9));
    }
}
