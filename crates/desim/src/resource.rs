//! Timeline resources: serial FIFO devices and k-parallel server pools.

use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Closed interval of busy time returned by an acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Busy {
    pub start: SimTime,
    pub end: SimTime,
}

impl Busy {
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// A serial resource that services requests in arrival order: a USB bulk
/// endpoint, a DDR channel, the RISC command processor.
///
/// ```
/// use desim::{FifoResource, SimTime, Duration};
/// let mut bus = FifoResource::new("usb");
/// let a = bus.acquire(SimTime(0), Duration(100));
/// let b = bus.acquire(SimTime(10), Duration(50));
/// assert_eq!(b.start, a.end); // second request queues
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FifoResource {
    name: String,
    available_at: SimTime,
    busy_total: Duration,
    requests: u64,
}

impl FifoResource {
    pub fn new(name: impl Into<String>) -> Self {
        FifoResource {
            name: name.into(),
            available_at: SimTime::ZERO,
            busy_total: Duration::ZERO,
            requests: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Occupy the resource for `service`, starting no earlier than `ready`.
    pub fn acquire(&mut self, ready: SimTime, service: Duration) -> Busy {
        let start = SimTime::max_of(ready, self.available_at);
        let end = start + service;
        self.available_at = end;
        self.busy_total += service;
        self.requests += 1;
        Busy { start, end }
    }

    /// Earliest instant a new request could start.
    pub fn available_at(&self) -> SimTime {
        self.available_at
    }

    /// Total busy time accumulated.
    pub fn busy_total(&self) -> Duration {
        self.busy_total
    }

    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            self.busy_total.nanos() as f64 / horizon.nanos() as f64
        }
    }
}

/// `k` identical parallel servers with a shared FIFO queue — the SHAVE
/// processor pool, or a multi-lane DMA engine. Each request occupies one
/// server; the earliest-free server wins (ties broken by index, so the
/// simulation is deterministic).
///
/// ```
/// use desim::{ServerPool, SimTime, Duration};
/// let mut shaves = ServerPool::new("shaves", 12);
/// // 1200 ns of work forked 12 ways finishes in 100 ns.
/// let busy = shaves.acquire_parallel(SimTime::ZERO, Duration(1200), 12);
/// assert_eq!(busy.end, SimTime(100));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerPool {
    name: String,
    free_at: Vec<SimTime>,
    busy_total: Duration,
    requests: u64,
}

impl ServerPool {
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        assert!(servers > 0, "pool needs at least one server");
        ServerPool {
            name: name.into(),
            free_at: vec![SimTime::ZERO; servers],
            busy_total: Duration::ZERO,
            requests: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Acquire one server; returns `(server_index, busy_interval)`.
    pub fn acquire(&mut self, ready: SimTime, service: Duration) -> (usize, Busy) {
        let (idx, &free) =
            self.free_at.iter().enumerate().min_by_key(|&(i, &t)| (t, i)).expect("non-empty pool");
        let start = SimTime::max_of(ready, free);
        let end = start + service;
        self.free_at[idx] = end;
        self.busy_total += service;
        self.requests += 1;
        (idx, Busy { start, end })
    }

    /// Run a job split into `parts` equal chunks across the pool,
    /// returning when the last chunk finishes (fork-join).
    pub fn acquire_parallel(&mut self, ready: SimTime, total_work: Duration, parts: usize) -> Busy {
        assert!(parts > 0, "parts must be positive");
        let per_part = Duration::from_nanos(total_work.nanos().div_ceil(parts as u64));
        let mut start = SimTime(u64::MAX);
        let mut end = SimTime::ZERO;
        for _ in 0..parts {
            let (_, b) = self.acquire(ready, per_part);
            start = start.min(b.start);
            end = SimTime::max_of(end, b.end);
        }
        Busy { start, end }
    }

    /// Earliest instant any server is free.
    pub fn next_free(&self) -> SimTime {
        *self.free_at.iter().min().expect("non-empty pool")
    }

    /// Instant all servers are idle.
    pub fn all_free(&self) -> SimTime {
        *self.free_at.iter().max().expect("non-empty pool")
    }

    pub fn busy_total(&self) -> Duration {
        self.busy_total
    }

    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Aggregate utilization over `[0, horizon]` (1.0 = all servers busy
    /// the whole time).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            self.busy_total.nanos() as f64 / (horizon.nanos() as f64 * self.servers() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serializes_requests() {
        let mut r = FifoResource::new("usb");
        let a = r.acquire(SimTime(0), Duration(100));
        assert_eq!((a.start, a.end), (SimTime(0), SimTime(100)));
        // Second request ready at 50 must wait until 100.
        let b = r.acquire(SimTime(50), Duration(30));
        assert_eq!((b.start, b.end), (SimTime(100), SimTime(130)));
        // A request ready after the backlog starts immediately.
        let c = r.acquire(SimTime(500), Duration(10));
        assert_eq!(c.start, SimTime(500));
        assert_eq!(r.requests(), 3);
        assert_eq!(r.busy_total(), Duration(140));
    }

    #[test]
    fn fifo_utilization() {
        let mut r = FifoResource::new("bus");
        r.acquire(SimTime(0), Duration(250));
        assert!((r.utilization(SimTime(1000)) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn pool_runs_k_jobs_concurrently() {
        let mut p = ServerPool::new("shaves", 3);
        let b1 = p.acquire(SimTime(0), Duration(100)).1;
        let b2 = p.acquire(SimTime(0), Duration(100)).1;
        let b3 = p.acquire(SimTime(0), Duration(100)).1;
        assert_eq!(b1.start, SimTime(0));
        assert_eq!(b2.start, SimTime(0));
        assert_eq!(b3.start, SimTime(0));
        // Fourth job queues behind the earliest finisher.
        let b4 = p.acquire(SimTime(0), Duration(50)).1;
        assert_eq!(b4.start, SimTime(100));
        assert_eq!(p.all_free(), SimTime(150));
    }

    #[test]
    fn pool_is_deterministic_on_ties() {
        let mut p = ServerPool::new("x", 2);
        let (i1, _) = p.acquire(SimTime(0), Duration(10));
        let (i2, _) = p.acquire(SimTime(0), Duration(10));
        assert_eq!((i1, i2), (0, 1));
    }

    #[test]
    fn fork_join_scales_with_parts() {
        let mut p = ServerPool::new("shaves", 4);
        // 400 ns of work over 4 servers -> 100 ns wall.
        let b = p.acquire_parallel(SimTime(0), Duration(400), 4);
        assert_eq!(b.start, SimTime(0));
        assert_eq!(b.end, SimTime(100));
        // Over 2 parts on now-busy servers: starts at 100.
        let b2 = p.acquire_parallel(SimTime(0), Duration(400), 2);
        assert_eq!(b2.end, SimTime(300));
    }

    #[test]
    fn fork_join_more_parts_than_servers() {
        let mut p = ServerPool::new("s", 2);
        // 6 parts of 100 ns on 2 servers: 3 rounds -> 300 ns.
        let b = p.acquire_parallel(SimTime(0), Duration(600), 6);
        assert_eq!(b.end, SimTime(300));
    }

    #[test]
    fn pool_utilization() {
        let mut p = ServerPool::new("s", 2);
        p.acquire(SimTime(0), Duration(100));
        // One of two servers busy for 100 of 200 ns -> 25%.
        assert!((p.utilization(SimTime(200)) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        ServerPool::new("none", 0);
    }
}
