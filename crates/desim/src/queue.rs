//! Deterministic time-ordered event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, breaking
        // ties by insertion order so same-time events pop FIFO.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// Min-heap of timed events with FIFO tie-breaking — the core dispatch
/// structure of an event-driven simulation.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

/// Lifetime traffic counters of an [`EventQueue`] — deterministic
/// functions of the schedule/pop sequence, so they feed sim-throughput
/// meters without perturbing anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled (`seq` high-water mark).
    pub scheduled: u64,
    /// Events popped and handled.
    pub popped: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO, popped: 0 }
    }

    /// Lifetime traffic counters (events scheduled / popped so far).
    pub fn stats(&self) -> QueueStats {
        QueueStats { scheduled: self.seq, popped: self.popped }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`. Scheduling in the past
    /// (before the last popped event) panics — it would violate causality.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        assert!(at >= self.now, "cannot schedule at {at} before now {}", self.now);
        self.heap.push(Entry { time: at, seq: self.seq, payload });
        self.seq += 1;
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            self.popped += 1;
            (e.time, e.payload)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Drain every event in time order.
    pub fn drain_ordered(&mut self) -> Vec<(SimTime, T)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = q.drain_ordered().into_iter().map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<i32> = q.drain_ordered().into_iter().map(|(_, p)| p).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.schedule(SimTime(200), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
        q.pop();
        assert_eq!(q.now(), SimTime(200));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime(200));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule(SimTime(50), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(7), 1);
        q.schedule(SimTime(3), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
    }

    #[test]
    fn stats_count_traffic_deterministically() {
        let mut q = EventQueue::new();
        assert_eq!(q.stats(), QueueStats::default());
        q.schedule(SimTime(10), ());
        q.schedule(SimTime(20), ());
        assert_eq!(q.stats(), QueueStats { scheduled: 2, popped: 0 });
        q.pop();
        assert_eq!(q.stats(), QueueStats { scheduled: 2, popped: 1 });
        q.drain_ordered();
        assert_eq!(q.stats(), QueueStats { scheduled: 2, popped: 2 });
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // An event handler scheduling follow-up events — the standard DES
        // pattern — must stay causal and ordered.
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 0u32);
        let mut fired = Vec::new();
        while let Some((t, ev)) = q.pop() {
            fired.push((t, ev));
            if ev < 3 {
                q.schedule(t + crate::time::Duration(10), ev + 1);
            }
        }
        assert_eq!(
            fired,
            vec![(SimTime(10), 0), (SimTime(20), 1), (SimTime(30), 2), (SimTime(40), 3),]
        );
    }
}
