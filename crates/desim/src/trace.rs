//! Execution traces: busy spans per lane, with an ASCII Gantt renderer
//! that reproduces the paper's Fig. 4 multi-VPU timeline.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One busy interval on a named lane (device, bus, or thread).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Lane the span belongs to, e.g. `"vpu0"` or `"usb"`.
    pub lane: String,
    /// What happened, e.g. `"load"`, `"exec"`, `"read"`.
    pub label: String,
    pub start: SimTime,
    pub end: SimTime,
}

impl Span {
    pub fn new(
        lane: impl Into<String>,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        let (start_v, end_v) = (start, end);
        assert!(end_v >= start_v, "span ends before it starts");
        Span { lane: lane.into(), label: label.into(), start: start_v, end: end_v }
    }
}

/// An append-only collection of spans.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    spans: Vec<Span>,
}

impl TraceLog {
    pub fn new() -> Self {
        TraceLog::default()
    }

    pub fn record(&mut self, span: Span) {
        self.spans.push(span);
    }

    pub fn push(
        &mut self,
        lane: impl Into<String>,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        self.record(Span::new(lane, label, start, end));
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Merge another log (e.g. from a different device thread).
    pub fn merge(&mut self, other: TraceLog) {
        self.spans.extend(other.spans);
    }

    /// Latest end time across all spans.
    pub fn horizon(&self) -> SimTime {
        self.spans.iter().map(|s| s.end).max().unwrap_or(SimTime::ZERO)
    }

    /// Earliest start time across all spans.
    pub fn origin(&self) -> SimTime {
        self.spans.iter().map(|s| s.start).min().unwrap_or(SimTime::ZERO)
    }

    /// A copy with all spans shifted so `origin` becomes t=0 (spans
    /// starting before `origin` are clipped to it). Used to render a
    /// pipeline window without the setup dead time in front.
    pub fn shifted(&self, origin: SimTime) -> TraceLog {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                let start = SimTime(s.start.nanos().saturating_sub(origin.nanos()));
                let end = SimTime(s.end.nanos().saturating_sub(origin.nanos()));
                Span { lane: s.lane.clone(), label: s.label.clone(), start, end }
            })
            .collect();
        TraceLog { spans }
    }

    /// Distinct lane names in first-appearance order.
    pub fn lanes(&self) -> Vec<String> {
        let mut lanes = Vec::new();
        for s in &self.spans {
            if !lanes.contains(&s.lane) {
                lanes.push(s.lane.clone());
            }
        }
        lanes
    }

    /// Spans on one lane, sorted by start.
    pub fn lane_spans(&self, lane: &str) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().filter(|s| s.lane == lane).collect();
        v.sort_by_key(|s| (s.start, s.end));
        v
    }

    /// Render an ASCII Gantt chart, `width` characters across the full
    /// horizon. Each span paints the first letter of its label; overlaps
    /// within one lane paint `#`.
    pub fn render_gantt(&self, width: usize) -> String {
        assert!(width >= 10, "gantt width too small");
        let horizon = self.horizon();
        if horizon == SimTime::ZERO {
            return String::from("(empty trace)\n");
        }
        let lanes = self.lanes();
        let name_w = lanes.iter().map(|l| l.len()).max().unwrap_or(4).max(4);
        let scale = width as f64 / horizon.nanos() as f64;
        let mut out = String::new();
        for lane in &lanes {
            let mut row = vec![b'.'; width];
            for s in self.lane_spans(lane) {
                let a = (s.start.nanos() as f64 * scale).floor() as usize;
                let b = ((s.end.nanos() as f64 * scale).ceil() as usize).min(width).max(a + 1);
                let ch = s.label.bytes().next().unwrap_or(b'?');
                for cell in &mut row[a..b.min(width)] {
                    *cell = if *cell == b'.' { ch } else { b'#' };
                }
            }
            out.push_str(&format!("{lane:>name_w$} |{}|\n", String::from_utf8_lossy(&row)));
        }
        out.push_str(&format!("{:>name_w$} 0{:>w$}\n", "t", format!("{horizon}"), w = width));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut log = TraceLog::new();
        log.push("vpu0", "load", SimTime(0), SimTime(10));
        log.push("vpu1", "load", SimTime(5), SimTime(15));
        log.push("vpu0", "exec", SimTime(10), SimTime(100));
        assert_eq!(log.len(), 3);
        assert_eq!(log.horizon(), SimTime(100));
        assert_eq!(log.lanes(), vec!["vpu0".to_string(), "vpu1".to_string()]);
        assert_eq!(log.lane_spans("vpu0").len(), 2);
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn rejects_inverted_span() {
        Span::new("x", "y", SimTime(10), SimTime(5));
    }

    #[test]
    fn merge_combines_lanes() {
        let mut a = TraceLog::new();
        a.push("usb", "xfer", SimTime(0), SimTime(5));
        let mut b = TraceLog::new();
        b.push("vpu0", "exec", SimTime(5), SimTime(50));
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.lanes().len(), 2);
    }

    #[test]
    fn gantt_renders_labels_in_position() {
        let mut log = TraceLog::new();
        log.push("vpu0", "load", SimTime(0), SimTime(50));
        log.push("vpu0", "exec", SimTime(50), SimTime(100));
        let g = log.render_gantt(20);
        // First half 'l's, second half 'e's.
        let row = g.lines().next().unwrap();
        assert!(row.contains("vpu0"));
        let cells: String = row.chars().skip_while(|&c| c != '|').collect();
        assert!(cells.starts_with("|lllllllll"), "{g}");
        assert!(cells.contains("eeeeeeee"), "{g}");
    }

    #[test]
    fn gantt_empty_trace() {
        assert_eq!(TraceLog::new().render_gantt(40), "(empty trace)\n");
    }

    #[test]
    fn gantt_marks_lane_overlap() {
        let mut log = TraceLog::new();
        log.push("x", "a", SimTime(0), SimTime(100));
        log.push("x", "b", SimTime(0), SimTime(100));
        let g = log.render_gantt(10);
        assert!(g.contains('#'), "{g}");
    }

    #[test]
    fn serde_round_trip() {
        let mut log = TraceLog::new();
        log.push("vpu0", "exec", SimTime(1), SimTime(2));
        let json = serde_json::to_string(&log).unwrap();
        let back: TraceLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }
}
