//! A small discrete-event simulation kernel.
//!
//! Every device in the reproduction (NCS sticks, the CPU, the GPU) runs
//! against **virtual time**: reported latencies and throughputs come from
//! this kernel, never from wall-clock measurement, so experiments are
//! deterministic and machine-independent while the *numeric* outputs come
//! from real computation.
//!
//! The kernel is timeline-algebraic rather than coroutine-based: model
//! elements are serial FIFO resources ([`FifoResource`]: a USB bus, a RISC
//! command queue) and `k`-parallel server pools ([`ServerPool`]: the 12
//! SHAVE processors), which jobs acquire at a ready time for a service
//! duration. Acquisition returns the busy [`Span`]; spans are collected in
//! a [`TraceLog`] that renders the paper's Fig.-4-style execution timeline.

pub mod queue;
pub mod resource;
pub mod time;
pub mod trace;

pub use queue::{EventQueue, QueueStats};
pub use resource::{FifoResource, ServerPool};
pub use time::{Duration, SimTime};
pub use trace::{Span, TraceLog};
