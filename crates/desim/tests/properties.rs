//! Property-based tests of the simulation kernel's invariants.

use desim::{Duration, EventQueue, FifoResource, ServerPool, SimTime};
use proptest::prelude::*;

proptest! {
    /// A FIFO resource never overlaps two busy intervals and never runs
    /// a request before it is ready.
    #[test]
    fn fifo_never_overlaps(reqs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..60)) {
        let mut r = FifoResource::new("p");
        let mut prev_end = SimTime::ZERO;
        for &(ready, service) in &reqs {
            let busy = r.acquire(SimTime(ready), Duration(service));
            prop_assert!(busy.start >= SimTime(ready), "started before ready");
            prop_assert!(busy.start >= prev_end, "overlapped previous request");
            prop_assert_eq!(busy.end - busy.start, Duration(service));
            prev_end = busy.end;
        }
        // Busy total equals the sum of services.
        let total: u64 = reqs.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(r.busy_total(), Duration(total));
    }

    /// A server pool never runs more than `k` jobs at once.
    #[test]
    fn pool_respects_capacity(
        servers in 1usize..6,
        reqs in proptest::collection::vec((0u64..2_000, 1u64..300), 1..50),
    ) {
        let mut p = ServerPool::new("pool", servers);
        let mut intervals = Vec::new();
        for &(ready, service) in &reqs {
            let (_, busy) = p.acquire(SimTime(ready), Duration(service));
            intervals.push((busy.start.nanos(), busy.end.nanos()));
        }
        // Sample concurrency at every interval start.
        for &(t, _) in &intervals {
            let busy_at = intervals.iter().filter(|&&(a, b)| a <= t && t < b).count();
            prop_assert!(busy_at <= servers, "{busy_at} > {servers} at t={t}");
        }
        // Utilization over the horizon never exceeds 1.
        let horizon = intervals.iter().map(|&(_, b)| b).max().unwrap();
        prop_assert!(p.utilization(SimTime(horizon)) <= 1.0 + 1e-12);
    }

    /// Fork-join wall time is bounded below by work/k and above by the
    /// serial time.
    #[test]
    fn fork_join_bounds(
        servers in 1usize..8,
        work in 1u64..100_000,
        parts in 1usize..32,
    ) {
        let mut p = ServerPool::new("pool", servers);
        let busy = p.acquire_parallel(SimTime::ZERO, Duration(work), parts);
        let wall = (busy.end - busy.start).nanos();
        let per_part = work.div_ceil(parts as u64);
        let rounds = (parts as u64).div_ceil(servers as u64);
        prop_assert_eq!(wall, per_part * rounds, "wall {} per_part {} rounds {}", wall, per_part, rounds);
        prop_assert!(wall >= work / servers as u64, "beat the ideal bound");
    }

    /// The event queue pops every scheduled event exactly once, in
    /// nondecreasing time order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let popped = q.drain_ordered();
        prop_assert_eq!(popped.len(), times.len());
        // Time order.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            // FIFO among equals.
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        // Every payload exactly once.
        let mut seen: Vec<usize> = popped.iter().map(|&(_, p)| p).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
    }
}
